//! A shard-mergeable three-pass variant of the Section 3 triangle counter.
//!
//! [`super::TwoPassTriangle`] is the paper-faithful two-pass algorithm, but
//! its state does not compose across graph shards: the pair reservoir is
//! order-dependent, discovery is split between the passes by an
//! arrival-time test, and `H` activation is keyed on locally counted list
//! positions. [`ShardedTriangle`] trades the second pass for per-pass
//! write-state that is a commutative monoid, which is exactly what
//! [`adjstream_stream::shard::run_sharded`] needs to produce estimates
//! **bit-identical** to a sequential run at any shard count:
//!
//! * **Pass 0 (sample).** Offer every edge key to the sampler and count
//!   items. Bottom-k membership is a pure function of the offered key set,
//!   so per-shard samples merge by re-offering; threshold membership is a
//!   pure per-key function, so samples merge by union.
//! * **Pass 1 (discover).** With `S` frozen, a completion of a watched
//!   pair `{u, v} ∈ S` in the list of `w` is the discovery of the pair
//!   `(e = {u,v}, τ = uvw)` — each `(e, τ)` completes in exactly one list,
//!   so exactly one shard discovers it. Discovered pairs go into a
//!   *bounded bottom-k map* `Q` keyed by a seeded rank (k-smallest of a
//!   union is order-independent, unlike a reservoir). The pass also
//!   records the global list position of every `S`-endpoint, which pass 2
//!   needs as the `H` activation point; each vertex's list lives on
//!   exactly one shard, so these merge by disjoint union.
//! * **Pass 2 (weigh).** `Q` frozen, every slot edge of every retained
//!   pair is watched; a completion of slot edge `f` in a list at global
//!   position `p` bumps `H_{f,τ}` iff `p` is *after* the position of
//!   `apex(τ, f)`'s list — the same later-apex count as the two-pass
//!   algorithm, but phrased against global positions so per-shard `H`
//!   vectors merge by index-wise sum.
//!
//! The estimate, lightest-edge rule, and tiebreaks are unchanged:
//! `k · (T′/|Q|) · |{(e,τ) ∈ Q : ρ(τ) = e}|`, with `ρ` the argmin of
//! `(H, edge key)`. With exhaustive sampling the output is exact. The cost
//! of mergeability is one extra pass (discovery can no longer piggyback on
//! the sampling pass) and a bottom-k subsample of the discovered pairs in
//! place of a reservoir.

use std::collections::{BTreeMap, BTreeSet};
use std::io::{self, Read, Write};

use adjstream_graph::VertexId;
use adjstream_stream::checkpoint::{
    corrupt, read_f64, read_u32, read_u64, read_u8, read_usize, write_f64, write_u32, write_u64,
    write_u8, write_usize, Checkpoint,
};
use adjstream_stream::hashing::{FastMap, FastSet, HashFn};
use adjstream_stream::item::StreamItem;
use adjstream_stream::meter::{hashmap_bytes, hashset_bytes, vec_bytes, SpaceUsage};
use adjstream_stream::obs::ObsCounters;
use adjstream_stream::runner::MultiPassAlgorithm;
use adjstream_stream::sampling::{BottomKEvent, BottomKSampler, ThresholdSampler};
use adjstream_stream::shard::ShardAlgorithm;

use crate::common::{pack_pair, unpack_pair, EdgeSampling, PairWatcher};

use super::two_pass::TriangleEstimate;

/// Stream id for the rank hash ordering the pair subsample `Q`.
const PAIR_RANK_STREAM: u64 = 0x5AA2_D011;

/// Sentinel "list never arrived" position; compares after every real one.
const NO_LIST: u64 = u64::MAX;

/// Configuration for [`ShardedTriangle`].
#[derive(Debug, Clone, Copy)]
pub struct ShardedTriangleConfig {
    /// Seed for all sampling decisions.
    pub seed: u64,
    /// How the edge sample `S` is drawn.
    pub edge_sampling: EdgeSampling,
    /// Capacity of the pair subsample `Q` (bottom-k by seeded pair rank).
    pub pair_capacity: usize,
}

/// One retained `(e, τ)` pair, frozen for pass 2. Slot `s` covers the
/// triangle edge `[{u,v}, {u,w}, {v,w}][s]`; `opp_pos[s]` is the global
/// list position of the vertex opposite that edge — the slot's `H`
/// activation point.
#[derive(Debug, Clone, PartialEq, Eq)]
struct QSlot {
    verts: [VertexId; 3],
    opp_pos: [u64; 3],
}

impl QSlot {
    fn slot_edge(&self, slot: usize) -> u64 {
        let [u, v, w] = self.verts;
        match slot {
            0 => pack_pair(u, v),
            1 => pack_pair(u, w),
            _ => pack_pair(v, w),
        }
    }
}

enum Sampler {
    Threshold(ThresholdSampler),
    BottomK(BottomKSampler),
}

/// The shard-mergeable three-pass triangle counter. See module docs.
pub struct ShardedTriangle {
    cfg: ShardedTriangleConfig,
    pass: usize,
    /// Global position of the current list; `begin_list` counts locally,
    /// `begin_list_at` injects the planner's position.
    cur_pos: u64,
    next_pos: u64,
    // --- pass 0 write state ---
    items_seen: u64,
    /// The sampled edge set, totally ordered for deterministic iteration.
    s_set: BTreeSet<u64>,
    // --- pass 1 base (derived from s_set at begin_pass(1)) ---
    s_endpoints: FastSet<u32>,
    // --- pass 1 write state ---
    discovered: u64,
    /// `(rank, e_key, apex)` → global position of the apex's list; bounded
    /// at `pair_capacity` keeping the smallest keys.
    q: BTreeMap<(u64, u64, u32), u64>,
    /// `S`-endpoint vertex → global position of its list.
    endpoint_pos: FastMap<u32, u64>,
    // --- pass 2 base (derived from q + endpoint_pos at begin_pass(2)) ---
    q_frozen: Vec<QSlot>,
    /// Slot edge key → `(q_frozen index, slot)` monitors.
    monitors: FastMap<u64, Vec<(u32, u8)>>,
    monitors_vec_bytes: usize,
    // --- pass 2 write state ---
    h: Vec<[u64; 3]>,
    // --- rebuilt machinery (never merged) ---
    sampler: Sampler,
    watcher: PairWatcher,
    rank_fn: HashFn,
    completed_buf: Vec<u64>,
    counters: ObsCounters,
}

impl ShardedTriangle {
    /// Build the algorithm from its configuration.
    pub fn new(cfg: ShardedTriangleConfig) -> Self {
        ShardedTriangle {
            cfg,
            pass: 0,
            cur_pos: 0,
            next_pos: 0,
            items_seen: 0,
            s_set: BTreeSet::new(),
            s_endpoints: FastSet::default(),
            discovered: 0,
            q: BTreeMap::new(),
            endpoint_pos: FastMap::default(),
            q_frozen: Vec::new(),
            monitors: FastMap::default(),
            monitors_vec_bytes: 0,
            h: Vec::new(),
            sampler: Self::fresh_sampler(&cfg),
            watcher: PairWatcher::new(),
            rank_fn: HashFn::from_seed(cfg.seed, PAIR_RANK_STREAM),
            completed_buf: Vec::new(),
            counters: ObsCounters::default(),
        }
    }

    fn fresh_sampler(cfg: &ShardedTriangleConfig) -> Sampler {
        match cfg.edge_sampling {
            EdgeSampling::Threshold { p } => Sampler::Threshold(ThresholdSampler::new(cfg.seed, p)),
            EdgeSampling::BottomK { k } => Sampler::BottomK(BottomKSampler::new(cfg.seed, k)),
        }
    }

    /// The seeded, order-independent rank of a discovered pair.
    fn pair_rank(&self, e_key: u64, apex: VertexId) -> u64 {
        self.rank_fn
            .hash(e_key ^ self.rank_fn.hash(u64::from(apex.0)))
    }

    /// Offer one pass-0 edge key to the sampler, mirroring membership into
    /// `s_set`. `count` gates the lifecycle counters: stream-time offers
    /// count, merge-time re-offers do not (the merged totals come from
    /// summing the shards' own counters instead).
    fn offer_edge(&mut self, key: u64, count: bool) {
        match &mut self.sampler {
            Sampler::Threshold(t) => {
                if t.accepts(key) {
                    if self.s_set.insert(key) && count {
                        self.counters.admissions += 1;
                    }
                } else if count {
                    self.counters.rejections += 1;
                }
            }
            Sampler::BottomK(b) => match b.offer(key) {
                BottomKEvent::Inserted => {
                    self.s_set.insert(key);
                    if count {
                        self.counters.admissions += 1;
                    }
                }
                BottomKEvent::InsertedEvicting(old) => {
                    self.s_set.insert(key);
                    self.s_set.remove(&old);
                    if count {
                        self.counters.admissions += 1;
                        self.counters.evictions += 1;
                    }
                }
                BottomKEvent::AlreadyPresent => {}
                BottomKEvent::Rejected => {
                    if count {
                        self.counters.rejections += 1;
                    }
                }
            },
        }
    }

    /// Bounded insert keeping the `pair_capacity` smallest keys — the
    /// k-smallest of a union, whatever the insertion order.
    fn q_insert(&mut self, key: (u64, u64, u32), apex_pos: u64, count: bool) {
        if self.cfg.pair_capacity == 0 {
            if count {
                self.counters.pairs_rejected += 1;
            }
            return;
        }
        if self.q.len() < self.cfg.pair_capacity {
            self.q.insert(key, apex_pos);
            if count {
                self.counters.pairs_stored += 1;
            }
            return;
        }
        let max = *self.q.last_key_value().expect("non-empty at capacity").0;
        if key < max {
            self.q.remove(&max);
            self.q.insert(key, apex_pos);
            if count {
                self.counters.pairs_stored += 1;
                self.counters.pairs_replaced += 1;
            }
        } else if count {
            self.counters.pairs_rejected += 1;
        }
    }

    /// Shared body of `begin_list` / `begin_list_at` once `cur_pos` is set.
    fn start_list(&mut self, owner: VertexId) {
        self.watcher.begin_list();
        if self.pass == 1 && self.s_endpoints.contains(&owner.0) {
            self.endpoint_pos.insert(owner.0, self.cur_pos);
        }
    }

    /// Handle one watched-pair completion in the list of `owner` at the
    /// current global position.
    fn on_completion(&mut self, key: u64, owner: VertexId) {
        match self.pass {
            1 => {
                // Discovery: `key ∈ S`, `owner` the apex.
                self.discovered += 1;
                let rank = self.pair_rank(key, owner);
                self.q_insert((rank, key, owner.0), self.cur_pos, true);
            }
            2 => {
                // Later-apex weighing for every slot monitoring this edge.
                if let Some(entries) = self.monitors.get(&key) {
                    for &(idx, slot) in entries {
                        if self.cur_pos > self.q_frozen[idx as usize].opp_pos[slot as usize] {
                            self.h[idx as usize][slot as usize] += 1;
                        }
                    }
                }
            }
            _ => {}
        }
    }

    fn dispatch(&mut self, src: VertexId, dst: VertexId) {
        if self.pass == 0 {
            self.items_seen += 1;
            self.offer_edge(pack_pair(src, dst), true);
            return; // nothing is watched in pass 0
        }
        let mut buf = std::mem::take(&mut self.completed_buf);
        buf.clear();
        self.watcher.on_item(dst, |k| buf.push(k));
        for &key in &buf {
            self.on_completion(key, src);
        }
        self.completed_buf = buf;
    }

    /// Rebuild the derived (read-only) structures of `pass` from the frozen
    /// base state. Called by `begin_pass` and by checkpoint restore; both
    /// must produce identical machinery for the run to be deterministic,
    /// which they do because everything derives from totally ordered
    /// containers (`s_set`, `q`).
    fn rebuild_derived(&mut self, pass: usize) {
        self.watcher = PairWatcher::new();
        self.s_endpoints = FastSet::default();
        self.q_frozen = Vec::new();
        self.monitors = FastMap::default();
        self.monitors_vec_bytes = 0;
        match pass {
            1 => {
                for &key in &self.s_set {
                    let (a, b) = unpack_pair(key);
                    self.s_endpoints.insert(a.0);
                    self.s_endpoints.insert(b.0);
                }
                // Borrow dance: watch after collecting (watcher ≠ s_set).
                let keys: Vec<u64> = self.s_set.iter().copied().collect();
                for key in keys {
                    let (a, b) = unpack_pair(key);
                    self.watcher.watch(a, b);
                }
            }
            2 => {
                self.q_frozen = self
                    .q
                    .iter()
                    .map(|(&(_rank, e_key, apex), &apex_pos)| {
                        let (u, v) = unpack_pair(e_key);
                        let w = VertexId(apex);
                        QSlot {
                            verts: [u, v, w],
                            opp_pos: [
                                apex_pos,
                                self.endpoint_pos.get(&v.0).copied().unwrap_or(NO_LIST),
                                self.endpoint_pos.get(&u.0).copied().unwrap_or(NO_LIST),
                            ],
                        }
                    })
                    .collect();
                for (idx, slot_rec) in self.q_frozen.iter().enumerate() {
                    for slot in 0..3u8 {
                        let edge = slot_rec.slot_edge(slot as usize);
                        let (a, b) = unpack_pair(edge);
                        self.watcher.watch(a, b);
                        self.monitors_vec_bytes += crate::common::push_map_vec(
                            &mut self.monitors,
                            edge,
                            (idx as u32, slot),
                            8,
                        );
                    }
                }
            }
            _ => {}
        }
    }
}

impl SpaceUsage for ShardedTriangle {
    fn space_bytes(&self) -> usize {
        // BTree nodes are approximated at entry size + per-entry overhead;
        // the bound tracked here is the retained-key count, which is what
        // the space theorems constrain.
        self.s_set.len() * 24
            + self.q.len() * 48
            + hashset_bytes(&self.s_endpoints)
            + hashmap_bytes(&self.endpoint_pos)
            + self.q_frozen.capacity() * std::mem::size_of::<QSlot>()
            + vec_bytes(&self.h)
            + hashmap_bytes(&self.monitors)
            + self.monitors_vec_bytes
            + self.watcher.space_bytes()
            + match &self.sampler {
                Sampler::Threshold(_) => 32,
                Sampler::BottomK(b) => b.space_bytes(),
            }
    }
}

impl MultiPassAlgorithm for ShardedTriangle {
    type Output = TriangleEstimate;

    fn passes(&self) -> usize {
        3
    }

    fn requires_same_order(&self) -> bool {
        true
    }

    fn begin_pass(&mut self, pass: usize) {
        self.pass = pass;
        self.cur_pos = 0;
        self.next_pos = 0;
        // This pass's write state starts empty — the shard-merge invariant.
        match pass {
            0 => {
                self.items_seen = 0;
                self.s_set.clear();
                self.sampler = Self::fresh_sampler(&self.cfg);
            }
            1 => {
                self.discovered = 0;
                self.q.clear();
                self.endpoint_pos = FastMap::default();
            }
            _ => {
                self.h.clear();
            }
        }
        self.rebuild_derived(pass);
        if pass == 2 {
            self.h = vec![[0u64; 3]; self.q_frozen.len()];
        }
    }

    fn begin_list(&mut self, owner: VertexId) {
        self.cur_pos = self.next_pos;
        self.next_pos += 1;
        self.start_list(owner);
    }

    fn item(&mut self, src: VertexId, dst: VertexId) {
        self.dispatch(src, dst);
    }

    /// Native slice path: one pass-tag branch per run instead of per item,
    /// and the completion buffer swapped in once.
    fn feed_slice(&mut self, items: &[StreamItem]) {
        if self.pass == 0 {
            self.items_seen += items.len() as u64;
            for it in items {
                self.offer_edge(pack_pair(it.src, it.dst), true);
            }
            return;
        }
        let mut buf = std::mem::take(&mut self.completed_buf);
        for it in items {
            buf.clear();
            self.watcher.on_item(it.dst, |k| buf.push(k));
            for &key in &buf {
                self.on_completion(key, it.src);
            }
        }
        self.completed_buf = buf;
    }

    fn obs_counters(&self) -> Option<ObsCounters> {
        let mut c = self.counters;
        c.merge(&self.watcher.obs_counters());
        if let Sampler::BottomK(b) = &self.sampler {
            if b.capacity() > 0 && b.len() == b.capacity() {
                c.freezes += 1;
            }
        }
        if self.cfg.pair_capacity > 0
            && self.cfg.pair_capacity != usize::MAX
            && self.q.len() == self.cfg.pair_capacity
        {
            c.freezes += 1;
        }
        Some(c)
    }

    fn finish(self) -> TriangleEstimate {
        let m = self.items_seen / 2;
        let s_len = self.s_set.len();
        let k = match self.cfg.edge_sampling {
            EdgeSampling::Threshold { p } => {
                if p > 0.0 {
                    1.0 / p
                } else {
                    0.0
                }
            }
            EdgeSampling::BottomK { .. } => {
                if s_len == 0 {
                    0.0
                } else {
                    (m as f64 / s_len as f64).max(1.0)
                }
            }
        };
        let mut counted = 0u64;
        for (idx, rec) in self.q_frozen.iter().enumerate() {
            let rho = (0..3)
                .min_by_key(|&s| (self.h[idx][s], rec.slot_edge(s)))
                .expect("three slots");
            if rho == 0 {
                counted += 1;
            }
        }
        let q_size = self.q.len();
        let subsample_scale = if q_size == 0 {
            0.0
        } else {
            self.discovered as f64 / q_size as f64
        };
        TriangleEstimate {
            estimate: k * subsample_scale * counted as f64,
            edges_sampled: s_len,
            pairs_discovered: self.discovered,
            q_size,
            counted,
            m,
            naive_estimate: k * self.discovered as f64 / 3.0,
        }
    }
}

impl ShardAlgorithm for ShardedTriangle {
    fn begin_list_at(&mut self, owner: VertexId, global_pos: u64) {
        self.cur_pos = global_pos;
        self.next_pos = global_pos + 1;
        self.start_list(owner);
    }

    fn merge_pass(&mut self, other: Self, pass: usize) -> Result<(), String> {
        if self.cfg.seed != other.cfg.seed
            || self.cfg.pair_capacity != other.cfg.pair_capacity
            || self.cfg.edge_sampling != other.cfg.edge_sampling
        {
            return Err("shard partials were configured differently".into());
        }
        match pass {
            0 => {
                self.items_seen += other.items_seen;
                for key in other.s_set {
                    self.offer_edge(key, false);
                }
                self.counters.admissions += other.counters.admissions;
                self.counters.evictions += other.counters.evictions;
                self.counters.rejections += other.counters.rejections;
            }
            1 => {
                self.discovered += other.discovered;
                for (key, apex_pos) in other.q {
                    self.q_insert(key, apex_pos, false);
                }
                for (v, pos) in other.endpoint_pos {
                    if self
                        .endpoint_pos
                        .insert(v, pos)
                        .is_some_and(|old| old != pos)
                    {
                        return Err(format!(
                            "S-endpoint {v} owns a list on two shards — plans disagree"
                        ));
                    }
                }
                self.counters.pairs_stored += other.counters.pairs_stored;
                self.counters.pairs_replaced += other.counters.pairs_replaced;
                self.counters.pairs_rejected += other.counters.pairs_rejected;
            }
            _ => {
                if self.h.len() != other.h.len() || self.q_frozen != other.q_frozen {
                    return Err("pass-2 partials froze different pair subsamples".into());
                }
                for (mine, theirs) in self.h.iter_mut().zip(&other.h) {
                    for s in 0..3 {
                        mine[s] += theirs[s];
                    }
                }
            }
        }
        Ok(())
    }
}

/// Pass-boundary serialization. Only frozen base state and the current
/// pass's write state cross the wire; all derived machinery (watcher,
/// endpoint index, frozen `Q` slots, monitors) is rebuilt — identically,
/// because it derives from totally ordered containers. This is both the
/// checkpoint/resume format and the shard-merge wire format.
impl Checkpoint for ShardedTriangle {
    fn save(&self, w: &mut dyn Write) -> io::Result<()> {
        write_u64(w, self.cfg.seed)?;
        match self.cfg.edge_sampling {
            EdgeSampling::Threshold { p } => {
                write_u8(w, 0)?;
                write_f64(w, p)?;
            }
            EdgeSampling::BottomK { k } => {
                write_u8(w, 1)?;
                write_usize(w, k)?;
            }
        }
        write_usize(w, self.cfg.pair_capacity)?;
        write_usize(w, self.pass)?;
        write_u64(w, self.items_seen)?;
        write_usize(w, self.s_set.len())?;
        for &key in &self.s_set {
            write_u64(w, key)?;
        }
        write_u64(w, self.discovered)?;
        let mut endpoints: Vec<(u32, u64)> =
            self.endpoint_pos.iter().map(|(&v, &p)| (v, p)).collect();
        endpoints.sort_unstable();
        write_usize(w, endpoints.len())?;
        for (v, pos) in endpoints {
            write_u32(w, v)?;
            write_u64(w, pos)?;
        }
        write_usize(w, self.q.len())?;
        for (&(rank, e_key, apex), &apex_pos) in &self.q {
            write_u64(w, rank)?;
            write_u64(w, e_key)?;
            write_u32(w, apex)?;
            write_u64(w, apex_pos)?;
        }
        write_usize(w, self.h.len())?;
        for triple in &self.h {
            for &x in triple {
                write_u64(w, x)?;
            }
        }
        self.counters.save(w)
    }

    fn restore(r: &mut dyn Read) -> io::Result<Self> {
        let seed = read_u64(r)?;
        let edge_sampling = match read_u8(r)? {
            0 => EdgeSampling::Threshold { p: read_f64(r)? },
            1 => EdgeSampling::BottomK { k: read_usize(r)? },
            other => return Err(corrupt(format!("unknown edge-sampling tag {other}"))),
        };
        let pair_capacity = read_usize(r)?;
        let cfg = ShardedTriangleConfig {
            seed,
            edge_sampling,
            pair_capacity,
        };
        let pass = read_usize(r)?;
        let items_seen = read_u64(r)?;
        let n = read_usize(r)?;
        let mut s_set = BTreeSet::new();
        for _ in 0..n {
            s_set.insert(read_u64(r)?);
        }
        let discovered = read_u64(r)?;
        let n = read_usize(r)?;
        let mut endpoint_pos = FastMap::default();
        endpoint_pos.reserve(n.min(1 << 16));
        for _ in 0..n {
            let v = read_u32(r)?;
            let pos = read_u64(r)?;
            endpoint_pos.insert(v, pos);
        }
        let n = read_usize(r)?;
        let mut q = BTreeMap::new();
        for _ in 0..n {
            let rank = read_u64(r)?;
            let e_key = read_u64(r)?;
            let apex = read_u32(r)?;
            let apex_pos = read_u64(r)?;
            q.insert((rank, e_key, apex), apex_pos);
        }
        if q.len() != n {
            return Err(corrupt("duplicate pair keys in subsample"));
        }
        if pair_capacity != usize::MAX && q.len() > pair_capacity {
            return Err(corrupt("more retained pairs than the subsample capacity"));
        }
        let n = read_usize(r)?;
        let mut h = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            let mut triple = [0u64; 3];
            for x in &mut triple {
                *x = read_u64(r)?;
            }
            h.push(triple);
        }
        if !h.is_empty() && h.len() != q.len() {
            return Err(corrupt("H vector does not cover the pair subsample"));
        }
        let counters = ObsCounters::restore(r)?;
        let mut sampler = Self::fresh_sampler(&cfg);
        if let Sampler::BottomK(b) = &mut sampler {
            if s_set.len() > b.capacity() {
                return Err(corrupt("more sampled edges than the bottom-k capacity"));
            }
            for &key in &s_set {
                b.offer(key);
            }
        }
        let mut algo = ShardedTriangle {
            cfg,
            pass,
            cur_pos: 0,
            next_pos: 0,
            items_seen,
            s_set,
            s_endpoints: FastSet::default(),
            discovered,
            q,
            endpoint_pos,
            q_frozen: Vec::new(),
            monitors: FastMap::default(),
            monitors_vec_bytes: 0,
            h: Vec::new(),
            sampler,
            watcher: PairWatcher::new(),
            rank_fn: HashFn::from_seed(cfg.seed, PAIR_RANK_STREAM),
            completed_buf: Vec::new(),
            counters,
        };
        // Re-derive the saved pass's machinery so a restored partial is
        // immediately mergeable and finishable (process-per-shard parents
        // restore, merge, and finish without re-driving a pass).
        algo.rebuild_derived(pass);
        if pass == 2 {
            if h.is_empty() {
                h = vec![[0u64; 3]; algo.q_frozen.len()];
            }
            algo.h = h;
        }
        Ok(algo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adjstream_graph::{exact, gen};
    use adjstream_stream::obs::Metrics;
    use adjstream_stream::runner::run_slice_passes;
    use adjstream_stream::shard::{run_sharded, ShardPlan};
    use adjstream_stream::{AdjListStream, StreamOrder};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn items_of(g: &adjstream_graph::Graph, order: StreamOrder) -> Vec<StreamItem> {
        AdjListStream::new(g, order).collect_items()
    }

    fn full_cfg(seed: u64) -> ShardedTriangleConfig {
        ShardedTriangleConfig {
            seed,
            edge_sampling: EdgeSampling::Threshold { p: 1.0 },
            pair_capacity: usize::MAX,
        }
    }

    fn run_seq(cfg: ShardedTriangleConfig, items: &[StreamItem]) -> TriangleEstimate {
        let (est, _) = run_slice_passes(ShardedTriangle::new(cfg), |_| items).expect("run");
        est
    }

    /// With S = all edges and an unbounded Q the estimate is exact, across
    /// orders and graph shapes — the same exactness two_pass guarantees.
    #[test]
    fn exhaustive_sampling_is_exact() {
        let mut rng = StdRng::seed_from_u64(1);
        for trial in 0..6 {
            let g = gen::gnm(40, 220, &mut rng);
            let truth = exact::count_triangles(&g) as f64;
            for order in [
                StreamOrder::natural(40),
                StreamOrder::reversed(40),
                StreamOrder::shuffled(40, trial),
            ] {
                let est = run_seq(full_cfg(trial), &items_of(&g, order));
                assert_eq!(est.estimate, truth, "trial {trial}");
                assert_eq!(est.pairs_discovered, 3 * truth as u64);
                assert_eq!(est.counted, truth as u64);
            }
        }
        for (g, t) in [
            (gen::complete(8), 56.0),
            (gen::book(12), 12.0),
            (gen::disjoint_triangles(9), 9.0),
            (gen::complete_bipartite(4, 5), 0.0),
        ] {
            let n = g.vertex_count();
            let est = run_seq(full_cfg(3), &items_of(&g, StreamOrder::shuffled(n, 5)));
            assert_eq!(est.estimate, t, "graph {g:?}");
        }
    }

    #[test]
    fn exhaustive_bottomk_is_exact() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = gen::gnm(30, 140, &mut rng);
        let truth = exact::count_triangles(&g) as f64;
        let cfg = ShardedTriangleConfig {
            seed: 7,
            edge_sampling: EdgeSampling::BottomK { k: 140 },
            pair_capacity: usize::MAX,
        };
        let est = run_seq(cfg, &items_of(&g, StreamOrder::shuffled(30, 3)));
        assert_eq!(est.estimate, truth);
        assert_eq!(est.edges_sampled, 140);
    }

    /// The headline invariant: sharded execution is bit-identical to the
    /// sequential driver at every shard count, under subsampling too.
    #[test]
    fn sharded_matches_sequential_bit_for_bit() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = gen::gnm(120, 900, &mut rng);
        let items = items_of(&g, StreamOrder::shuffled(120, 9));
        for cfg in [
            full_cfg(11),
            ShardedTriangleConfig {
                seed: 11,
                edge_sampling: EdgeSampling::BottomK { k: 96 },
                pair_capacity: 64,
            },
            ShardedTriangleConfig {
                seed: 12,
                edge_sampling: EdgeSampling::Threshold { p: 0.35 },
                pair_capacity: 40,
            },
        ] {
            let want = run_seq(cfg, &items);
            for shards in [1usize, 2, 4, 8] {
                let plan = ShardPlan::build(&items, shards);
                let (got, _) = run_sharded(
                    ShardedTriangle::new(cfg),
                    &plan,
                    &items,
                    &Metrics::disabled(),
                )
                .expect("sharded run");
                assert_eq!(got, want, "shards={shards} cfg={cfg:?}");
                assert_eq!(got.estimate.to_bits(), want.estimate.to_bits());
            }
        }
    }

    /// The estimator stays unbiased under subsampling.
    #[test]
    fn subsampled_estimator_is_unbiased() {
        let g = gen::disjoint_cliques(6, 10); // T = 200
        let n = g.vertex_count();
        let reps = 300;
        let mut sum = 0.0;
        for seed in 0..reps {
            let cfg = ShardedTriangleConfig {
                seed,
                edge_sampling: EdgeSampling::Threshold { p: 0.4 },
                pair_capacity: 120,
            };
            sum += run_seq(cfg, &items_of(&g, StreamOrder::shuffled(n, seed))).estimate;
        }
        let mean = sum / reps as f64;
        assert!((mean - 200.0).abs() < 20.0, "mean {mean} vs truth 200");
    }

    /// Checkpoint at each pass boundary, restore, finish the run — the
    /// resumed run must reproduce the estimate exactly.
    #[test]
    fn checkpoint_roundtrip_reproduces_the_run() {
        use adjstream_stream::meter::PeakTracker;
        use adjstream_stream::shard::{drive_shard_pass, ShardPlan};

        let mut rng = StdRng::seed_from_u64(8);
        let g = gen::gnm(60, 500, &mut rng);
        let items = items_of(&g, StreamOrder::shuffled(60, 2));
        let plan = ShardPlan::build(&items, 1);
        let runs = plan.runs_for(0);
        let cfg = ShardedTriangleConfig {
            seed: 9,
            edge_sampling: EdgeSampling::BottomK { k: 64 },
            pair_capacity: 96,
        };
        let want = run_seq(cfg, &items);
        let mut algo = ShardedTriangle::new(cfg);
        for pass in 0..3 {
            let mut blob = Vec::new();
            algo.save(&mut blob).expect("save");
            algo = ShardedTriangle::restore(&mut &blob[..]).expect("restore");
            let mut peak = PeakTracker::new();
            let mut processed = 0;
            drive_shard_pass(&mut algo, pass, &items, runs, &mut peak, &mut processed)
                .expect("pass");
        }
        let got = algo.finish();
        assert_eq!(got, want);
        assert!(got.counted > 0, "test graph should count triangles");
    }

    #[test]
    fn restore_rejects_garbage() {
        let err = ShardedTriangle::restore(&mut &[0xFFu8; 4][..])
            .err()
            .expect("truncated input must fail");
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
        let mut buf = Vec::new();
        write_u64(&mut buf, 1).unwrap();
        write_u8(&mut buf, 7).unwrap();
        let err = ShardedTriangle::restore(&mut &buf[..])
            .err()
            .expect("bad tag must fail");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn merge_rejects_mismatched_configs() {
        let a = ShardedTriangle::new(full_cfg(1));
        let b = ShardedTriangle::new(full_cfg(2));
        let mut a = a;
        assert!(a.merge_pass(b, 0).is_err());
    }
}

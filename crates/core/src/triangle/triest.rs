//! TRIÈST-style arbitrary-order triangle estimation (De Stefani, Epasto,
//! Riondato, Upfal; KDD 2016) — the natural *arbitrary-order* competitor
//! used by the model-comparison experiment.
//!
//! Maintain a uniform reservoir of `M` edges; when edge `{u, v}` arrives at
//! time `t`, every common neighbor of `u` and `v` inside the reservoir
//! witnesses a triangle, weighted by the inverse probability
//! `ξ_t = max(1, (t−1)(t−2) / (M(M−1)))` that both reservoir edges
//! survived. The running weighted total is an unbiased estimate of the
//! triangle count seen so far.
//!
//! In the arbitrary-order model, one-pass triangle counting needs `Ω(m)`
//! space in the worst case \[9\]; this estimator is the practical
//! state-of-the-art there, and comparing it at equal space against
//! [`super::OnePassTriangle`] (which exploits the adjacency-list promise)
//! quantifies what the promise buys — the model gap Section 1.1 discusses.

use adjstream_graph::{EdgeKey, VertexId};
use adjstream_stream::arbitrary::EdgeStreamAlgorithm;
use adjstream_stream::hashing::{FastMap, FastSet, SplitMix64};
use adjstream_stream::meter::{hashmap_bytes, vec_bytes, SpaceUsage};

/// Adjacency of a *sampled* subgraph: vertex → multiset of neighbors.
///
/// Shared by [`TriestBase`] and the fully-dynamic
/// [`super::TriestFd`]. Duplicate edge arrivals are representable (each
/// `add` pushes one more occurrence), removal is multiset-consistent and
/// *tolerant* — removing an edge that is not in the sample is a no-op
/// reported via the return value, which is what TRIÈST-FD needs since
/// deletions routinely target unsampled edges.
#[derive(Default)]
pub(crate) struct SampleAdjacency {
    adj: FastMap<u32, Vec<u32>>,
}

impl SampleAdjacency {
    /// Record one occurrence of `e` in the sample.
    pub(crate) fn add(&mut self, e: EdgeKey) {
        self.adj.entry(e.lo().0).or_default().push(e.hi().0);
        self.adj.entry(e.hi().0).or_default().push(e.lo().0);
    }

    /// Remove one occurrence of `e` from the sample. Returns whether the
    /// edge was present; an absent edge leaves the structure untouched.
    pub(crate) fn remove(&mut self, e: EdgeKey) -> bool {
        // Probe before mutating so a half-present edge (impossible via
        // `add`, but cheap to defend against) is never half-removed.
        let present = [(e.lo().0, e.hi().0), (e.hi().0, e.lo().0)]
            .into_iter()
            .all(|(a, b)| self.adj.get(&a).is_some_and(|list| list.contains(&b)));
        if !present {
            return false;
        }
        for (a, b) in [(e.lo().0, e.hi().0), (e.hi().0, e.lo().0)] {
            let list = self.adj.get_mut(&a).expect("probed above");
            let pos = list.iter().position(|&x| x == b).expect("probed above");
            list.swap_remove(pos);
            if list.is_empty() {
                self.adj.remove(&a);
            }
        }
        true
    }

    /// Number of *distinct* common neighbors of `u` and `v` in the sample.
    ///
    /// Distinctness matters: duplicate edge arrivals leave repeated
    /// entries in the adjacency lists, and the naive
    /// intersection-of-multisets over-counts each triangle once per
    /// duplicate — the inflation audit in issue 7. Set semantics on both
    /// sides pins the count to the number of triangle-closing vertices.
    pub(crate) fn common_count(&self, u: VertexId, v: VertexId) -> u64 {
        let (Some(nu), Some(nv)) = (self.adj.get(&u.0), self.adj.get(&v.0)) else {
            return 0;
        };
        let (small, large) = if nu.len() <= nv.len() {
            (nu, nv)
        } else {
            (nv, nu)
        };
        let mut probe: FastSet<u32> = large.iter().copied().collect();
        let mut count = 0u64;
        for &x in small {
            // remove-on-hit: a vertex counts once even when duplicated in
            // either list.
            if probe.remove(&x) {
                count += 1;
            }
        }
        count
    }

    /// The multiset of edges the adjacency currently encodes, as sorted
    /// packed keys — each occurrence counted once, from the `lo` side.
    /// The invariant checkers compare this against the reservoir.
    pub(crate) fn edge_multiset(&self) -> Vec<u64> {
        let mut edges: Vec<u64> = self
            .adj
            .iter()
            .flat_map(|(&a, list)| {
                list.iter()
                    .filter(move |&&b| a < b)
                    .map(move |&b| EdgeKey::new(VertexId(a), VertexId(b)).pack())
            })
            .collect();
        edges.sort_unstable();
        edges
    }

    /// Heap bytes of the adjacency structure. `hashmap_bytes` already
    /// charges `size_of::<(u32, Vec<u32>)>()` per slot — including each
    /// `Vec` *header* — so the per-list term is the buffer alone
    /// (`capacity * 4`), **without** the 24-byte header that the old
    /// accounting double-counted.
    pub(crate) fn space_bytes(&self) -> usize {
        let buffers: usize = self.adj.values().map(|v| v.capacity() * 4).sum();
        hashmap_bytes(&self.adj) + buffers
    }
}

/// Result of a [`TriestBase`] run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TriestEstimate {
    /// The weighted triangle estimate.
    pub estimate: f64,
    /// Raw (unweighted) triangles witnessed in the reservoir.
    pub witnessed: u64,
    /// Edges processed.
    pub m: u64,
}

/// TRIÈST-base: fixed-size edge reservoir with inverse-probability
/// weighting. See module docs.
pub struct TriestBase {
    capacity: usize,
    t: u64,
    reservoir: Vec<EdgeKey>,
    /// Adjacency of the sampled subgraph.
    adj: SampleAdjacency,
    estimate: f64,
    witnessed: u64,
    rng: SplitMix64,
}

impl TriestBase {
    /// Estimator with reservoir capacity `m_prime`.
    pub fn new(seed: u64, m_prime: usize) -> Self {
        assert!(m_prime >= 2, "TRIÈST needs at least two reservoir slots");
        TriestBase {
            capacity: m_prime,
            t: 0,
            reservoir: Vec::with_capacity(m_prime.min(1 << 20)),
            adj: SampleAdjacency::default(),
            estimate: 0.0,
            witnessed: 0,
            rng: SplitMix64::new(seed),
        }
    }

    fn next_below(&mut self, bound: u64) -> u64 {
        let zone = u64::MAX - u64::MAX % bound;
        loop {
            let x = self.rng.next_u64();
            if x < zone {
                return x % bound;
            }
        }
    }

    /// Check that the sampled adjacency is exactly the multiset of
    /// reservoir edges (the reservoir ↔ adjacency bijection the property
    /// tests drive), panicking with a description of the first violation.
    pub fn assert_invariants(&self) {
        assert!(
            self.reservoir.len() <= self.capacity,
            "reservoir over capacity"
        );
        let mut expected: Vec<u64> = self.reservoir.iter().map(|e| e.pack()).collect();
        expected.sort_unstable();
        assert_eq!(
            self.adj.edge_multiset(),
            expected,
            "adjacency out of sync with reservoir"
        );
    }
}

impl SpaceUsage for TriestBase {
    fn space_bytes(&self) -> usize {
        vec_bytes(&self.reservoir) + self.adj.space_bytes() + 48
    }
}

impl EdgeStreamAlgorithm for TriestBase {
    type Output = TriestEstimate;

    fn edge(&mut self, e: EdgeKey) {
        self.t += 1;
        // Count triangles this edge closes within the current sample.
        let c = self.adj.common_count(e.lo(), e.hi());
        if c > 0 {
            self.witnessed += c;
            let m = self.capacity as f64;
            let t = self.t as f64;
            let xi = (((t - 1.0) * (t - 2.0)) / (m * (m - 1.0))).max(1.0);
            self.estimate += c as f64 * xi;
        }
        // Reservoir-insert.
        if self.reservoir.len() < self.capacity {
            self.reservoir.push(e);
            self.adj.add(e);
        } else {
            let j = self.next_below(self.t);
            if (j as usize) < self.capacity {
                let old = std::mem::replace(&mut self.reservoir[j as usize], e);
                let removed = self.adj.remove(old);
                debug_assert!(removed, "evicted edge was sampled");
                self.adj.add(e);
            }
        }
    }

    fn finish(self) -> TriestEstimate {
        TriestEstimate {
            estimate: self.estimate,
            witnessed: self.witnessed,
            m: self.t,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adjstream_graph::{exact, gen};
    use adjstream_stream::arbitrary::{run_edge_stream, ArbitraryOrderStream};

    fn run(g: &adjstream_graph::Graph, m_prime: usize, seed: u64) -> TriestEstimate {
        let s = ArbitraryOrderStream::new(g, seed ^ 0x0DD);
        let (est, _) = run_edge_stream(&s, TriestBase::new(seed, m_prime));
        est
    }

    /// With M ≥ m the reservoir holds everything: every triangle is
    /// witnessed exactly once (when its last edge arrives) at weight 1.
    #[test]
    fn full_reservoir_is_exact() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(2);
        for trial in 0..6 {
            let g = gen::gnm(30, 140, &mut rng);
            let truth = exact::count_triangles(&g);
            let est = run(&g, 140, trial);
            assert_eq!(est.witnessed, truth, "trial {trial}");
            assert_eq!(est.estimate, truth as f64);
        }
    }

    #[test]
    fn subsampled_is_unbiased() {
        let g = gen::disjoint_cliques(5, 12); // T = 120
        let reps = 300;
        let mean: f64 = (0..reps).map(|s| run(&g, 40, s).estimate).sum::<f64>() / reps as f64;
        assert!((mean - 120.0).abs() < 18.0, "mean {mean}");
    }

    #[test]
    fn triangle_free_estimates_zero() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        let g = gen::bipartite_gnm(20, 20, 150, &mut rng);
        let est = run(&g, 40, 1);
        assert_eq!(est.estimate, 0.0);
        assert_eq!(est.m, 150);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn rejects_tiny_reservoir() {
        TriestBase::new(1, 1);
    }

    fn ek(u: u32, v: u32) -> EdgeKey {
        EdgeKey::new(VertexId(u), VertexId(v))
    }

    /// Regression (issue 7): removing an edge absent from the sample used
    /// to panic via `expect("neighbor present")`; TRIÈST-FD deletions
    /// routinely target unsampled edges, so removal must be tolerant.
    #[test]
    fn remove_is_tolerant_and_multiset_consistent() {
        let mut adj = SampleAdjacency::default();
        assert!(!adj.remove(ek(0, 1)), "empty sample: no-op remove");
        adj.add(ek(0, 1));
        assert!(!adj.remove(ek(0, 2)), "shared endpoint, absent edge");
        assert!(!adj.remove(ek(2, 3)), "absent endpoints");
        // Duplicate arrivals stack: two removes succeed, the third is a no-op.
        adj.add(ek(0, 1));
        assert!(adj.remove(ek(0, 1)));
        assert!(adj.remove(ek(0, 1)));
        assert!(!adj.remove(ek(0, 1)));
        assert!(adj.adj.is_empty(), "all lists pruned after last removal");
    }

    /// Regression (issue 7): duplicate edge arrivals leave repeated
    /// adjacency entries, and the old multiset intersection counted the
    /// same closing vertex once per duplicate.
    #[test]
    fn common_count_is_distinct_under_duplicates() {
        let mut adj = SampleAdjacency::default();
        for e in [ek(0, 2), ek(1, 2), ek(0, 3), ek(1, 3)] {
            adj.add(e);
        }
        assert_eq!(adj.common_count(VertexId(0), VertexId(1)), 2);
        // Duplicate {0,2} and {1,2}: vertex 2 still closes one triangle.
        adj.add(ek(0, 2));
        adj.add(ek(1, 2));
        assert_eq!(adj.common_count(VertexId(0), VertexId(1)), 2);
        // Removing one duplicate keeps the remaining occurrence live.
        assert!(adj.remove(ek(0, 2)));
        assert_eq!(adj.common_count(VertexId(0), VertexId(1)), 2);
        assert!(adj.remove(ek(0, 2)));
        assert_eq!(adj.common_count(VertexId(0), VertexId(1)), 1);
    }

    /// Regression (issue 7): `space_bytes` charged each adjacency `Vec`
    /// header twice — `hashmap_bytes` already includes the 24-byte header
    /// in its per-slot `size_of::<(u32, Vec<u32>)>()`, and the inner term
    /// added another 24 per list. Pin the accounting to: reservoir buffer
    /// + map slots + list *buffers* only + fixed scalar overhead.
    #[test]
    fn space_bytes_counts_each_list_header_once() {
        let mut alg = TriestBase::new(7, 8);
        for e in [ek(0, 1), ek(1, 2), ek(2, 0), ek(3, 4)] {
            alg.edge(e);
        }
        let buffers: usize = alg.adj.adj.values().map(|v| v.capacity() * 4).sum();
        let expected = vec_bytes(&alg.reservoir) + hashmap_bytes(&alg.adj.adj) + buffers + 48;
        assert_eq!(alg.space_bytes(), expected);
        // The old accounting added 24 bytes per vertex on top.
        let vertices = alg.adj.adj.len();
        assert_eq!(vertices, 5);
        assert_ne!(alg.space_bytes(), expected + 24 * vertices);
    }
}

//! TRIÈST-style arbitrary-order triangle estimation (De Stefani, Epasto,
//! Riondato, Upfal; KDD 2016) — the natural *arbitrary-order* competitor
//! used by the model-comparison experiment.
//!
//! Maintain a uniform reservoir of `M` edges; when edge `{u, v}` arrives at
//! time `t`, every common neighbor of `u` and `v` inside the reservoir
//! witnesses a triangle, weighted by the inverse probability
//! `ξ_t = max(1, (t−1)(t−2) / (M(M−1)))` that both reservoir edges
//! survived. The running weighted total is an unbiased estimate of the
//! triangle count seen so far.
//!
//! In the arbitrary-order model, one-pass triangle counting needs `Ω(m)`
//! space in the worst case \[9\]; this estimator is the practical
//! state-of-the-art there, and comparing it at equal space against
//! [`super::OnePassTriangle`] (which exploits the adjacency-list promise)
//! quantifies what the promise buys — the model gap Section 1.1 discusses.

use adjstream_graph::{EdgeKey, VertexId};
use adjstream_stream::arbitrary::EdgeStreamAlgorithm;
use adjstream_stream::hashing::{FastMap, SplitMix64};
use adjstream_stream::meter::{hashmap_bytes, vec_bytes, SpaceUsage};

use crate::common::count_common_neighbors;

/// Result of a [`TriestBase`] run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TriestEstimate {
    /// The weighted triangle estimate.
    pub estimate: f64,
    /// Raw (unweighted) triangles witnessed in the reservoir.
    pub witnessed: u64,
    /// Edges processed.
    pub m: u64,
}

/// TRIÈST-base: fixed-size edge reservoir with inverse-probability
/// weighting. See module docs.
pub struct TriestBase {
    capacity: usize,
    t: u64,
    reservoir: Vec<EdgeKey>,
    /// Adjacency of the sampled subgraph: vertex → neighbors (in sample).
    adj: FastMap<u32, Vec<u32>>,
    estimate: f64,
    witnessed: u64,
    rng: SplitMix64,
}

impl TriestBase {
    /// Estimator with reservoir capacity `m_prime`.
    pub fn new(seed: u64, m_prime: usize) -> Self {
        assert!(m_prime >= 2, "TRIÈST needs at least two reservoir slots");
        TriestBase {
            capacity: m_prime,
            t: 0,
            reservoir: Vec::with_capacity(m_prime.min(1 << 20)),
            adj: FastMap::default(),
            estimate: 0.0,
            witnessed: 0,
            rng: SplitMix64::new(seed),
        }
    }

    fn next_below(&mut self, bound: u64) -> u64 {
        let zone = u64::MAX - u64::MAX % bound;
        loop {
            let x = self.rng.next_u64();
            if x < zone {
                return x % bound;
            }
        }
    }

    fn add_adj(&mut self, e: EdgeKey) {
        self.adj.entry(e.lo().0).or_default().push(e.hi().0);
        self.adj.entry(e.hi().0).or_default().push(e.lo().0);
    }

    fn remove_adj(&mut self, e: EdgeKey) {
        for (a, b) in [(e.lo().0, e.hi().0), (e.hi().0, e.lo().0)] {
            let list = self.adj.get_mut(&a).expect("adjacency present");
            let pos = list.iter().position(|&x| x == b).expect("neighbor present");
            list.swap_remove(pos);
            if list.is_empty() {
                self.adj.remove(&a);
            }
        }
    }

    /// Common neighbors of `u`, `v` in the sampled subgraph.
    fn common_count(&self, u: VertexId, v: VertexId) -> u64 {
        let (Some(nu), Some(nv)) = (self.adj.get(&u.0), self.adj.get(&v.0)) else {
            return 0;
        };
        count_common_neighbors(nu, nv)
    }
}

impl SpaceUsage for TriestBase {
    fn space_bytes(&self) -> usize {
        let adj_inner: usize = self.adj.values().map(|v| v.capacity() * 4 + 24).sum();
        vec_bytes(&self.reservoir) + hashmap_bytes(&self.adj) + adj_inner + 48
    }
}

impl EdgeStreamAlgorithm for TriestBase {
    type Output = TriestEstimate;

    fn edge(&mut self, e: EdgeKey) {
        self.t += 1;
        // Count triangles this edge closes within the current sample.
        let c = self.common_count(e.lo(), e.hi());
        if c > 0 {
            self.witnessed += c;
            let m = self.capacity as f64;
            let t = self.t as f64;
            let xi = (((t - 1.0) * (t - 2.0)) / (m * (m - 1.0))).max(1.0);
            self.estimate += c as f64 * xi;
        }
        // Reservoir-insert.
        if self.reservoir.len() < self.capacity {
            self.reservoir.push(e);
            self.add_adj(e);
        } else {
            let j = self.next_below(self.t);
            if (j as usize) < self.capacity {
                let old = std::mem::replace(&mut self.reservoir[j as usize], e);
                self.remove_adj(old);
                self.add_adj(e);
            }
        }
    }

    fn finish(self) -> TriestEstimate {
        TriestEstimate {
            estimate: self.estimate,
            witnessed: self.witnessed,
            m: self.t,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adjstream_graph::{exact, gen};
    use adjstream_stream::arbitrary::{run_edge_stream, ArbitraryOrderStream};

    fn run(g: &adjstream_graph::Graph, m_prime: usize, seed: u64) -> TriestEstimate {
        let s = ArbitraryOrderStream::new(g, seed ^ 0x0DD);
        let (est, _) = run_edge_stream(&s, TriestBase::new(seed, m_prime));
        est
    }

    /// With M ≥ m the reservoir holds everything: every triangle is
    /// witnessed exactly once (when its last edge arrives) at weight 1.
    #[test]
    fn full_reservoir_is_exact() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(2);
        for trial in 0..6 {
            let g = gen::gnm(30, 140, &mut rng);
            let truth = exact::count_triangles(&g);
            let est = run(&g, 140, trial);
            assert_eq!(est.witnessed, truth, "trial {trial}");
            assert_eq!(est.estimate, truth as f64);
        }
    }

    #[test]
    fn subsampled_is_unbiased() {
        let g = gen::disjoint_cliques(5, 12); // T = 120
        let reps = 300;
        let mean: f64 = (0..reps).map(|s| run(&g, 40, s).estimate).sum::<f64>() / reps as f64;
        assert!((mean - 120.0).abs() < 18.0, "mean {mean}");
    }

    #[test]
    fn triangle_free_estimates_zero() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        let g = gen::bipartite_gnm(20, 20, 150, &mut rng);
        let est = run(&g, 40, 1);
        assert_eq!(est.estimate, 0.0);
        assert_eq!(est.m, 150);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn rejects_tiny_reservoir() {
        TriestBase::new(1, 1);
    }
}

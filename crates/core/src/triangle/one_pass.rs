//! One-pass triangle estimation (the `Õ(m/√T)` Table-1 row, after
//! McGregor–Vorotnikova–Vu \[27\]).
//!
//! Sample each edge when it first appears (hash-based, rate `p`); whenever a
//! later adjacency list contains both endpoints of a sampled edge, a
//! triangle completion is observed. For a triangle whose vertices arrive in
//! order `a, b, c`, the edges `{a,b}` and `{a,c}` are completed by an apex
//! arriving after their first appearance, while `{b,c}`'s apex `a` has
//! already passed — so each triangle is observed `2p` times in expectation
//! and `X/(2p)` is unbiased. Choosing `p = Θ(1/√T)` gives the `Õ(m/√T)`
//! space bound for graphs without very heavy edges; the heavy-edge variance
//! this estimator suffers on e.g. book graphs is exactly the motivation for
//! the Section 3 two-pass algorithm (ablation A1).

use adjstream_graph::VertexId;
use adjstream_stream::hashing::FastMap;
use adjstream_stream::meter::{hashmap_bytes, SpaceUsage};
use adjstream_stream::runner::MultiPassAlgorithm;
use adjstream_stream::sampling::{BottomKEvent, BottomKSampler, ThresholdSampler};

use crate::common::{pack_pair, EdgeSampling, PairWatcher};

/// Result of a [`OnePassTriangle`] run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnePassEstimate {
    /// The estimate `X / (2·rate)`.
    pub estimate: f64,
    /// Raw completions observed `X`.
    pub completions: u64,
    /// Final sampled-edge count.
    pub edges_sampled: usize,
    /// Edges in the stream.
    pub m: u64,
}

enum Sampler {
    Threshold(ThresholdSampler),
    BottomK(BottomKSampler),
}

/// The one-pass sampled-edge triangle estimator. See module docs.
pub struct OnePassTriangle {
    sampler: Sampler,
    sampling: EdgeSampling,
    /// Completions credited per sampled edge (needed to roll back on
    /// bottom-k eviction).
    credits: FastMap<u64, u64>,
    watcher: PairWatcher,
    completions: u64,
    items: u64,
    buf: Vec<u64>,
}

impl OnePassTriangle {
    /// Build with the given seed and sampling mode.
    pub fn new(seed: u64, sampling: EdgeSampling) -> Self {
        let sampler = match sampling {
            EdgeSampling::Threshold { p } => Sampler::Threshold(ThresholdSampler::new(seed, p)),
            EdgeSampling::BottomK { k } => Sampler::BottomK(BottomKSampler::new(seed, k)),
        };
        OnePassTriangle {
            sampler,
            sampling,
            credits: FastMap::default(),
            watcher: PairWatcher::new(),
            completions: 0,
            items: 0,
            buf: Vec::new(),
        }
    }
}

impl SpaceUsage for OnePassTriangle {
    fn space_bytes(&self) -> usize {
        hashmap_bytes(&self.credits)
            + self.watcher.space_bytes()
            + match &self.sampler {
                Sampler::Threshold(_) => 32,
                Sampler::BottomK(b) => b.space_bytes(),
            }
    }
}

impl MultiPassAlgorithm for OnePassTriangle {
    type Output = OnePassEstimate;

    fn passes(&self) -> usize {
        1
    }

    fn begin_pass(&mut self, _pass: usize) {}

    fn begin_list(&mut self, _owner: VertexId) {
        self.watcher.begin_list();
    }

    fn item(&mut self, src: VertexId, dst: VertexId) {
        self.items += 1;
        let key = pack_pair(src, dst);
        match &mut self.sampler {
            Sampler::Threshold(t) => {
                if t.accepts(key) && !self.credits.contains_key(&key) {
                    self.credits.insert(key, 0);
                    self.watcher.watch(src, dst);
                }
            }
            Sampler::BottomK(b) => match b.offer(key) {
                BottomKEvent::Inserted => {
                    self.credits.insert(key, 0);
                    self.watcher.watch(src, dst);
                }
                BottomKEvent::InsertedEvicting(old) => {
                    self.credits.insert(key, 0);
                    self.watcher.watch(src, dst);
                    let lost = self.credits.remove(&old).expect("evictee tracked");
                    self.completions -= lost;
                    let (a, b2) = crate::common::unpack_pair(old);
                    self.watcher.unwatch(a, b2);
                }
                BottomKEvent::AlreadyPresent | BottomKEvent::Rejected => {}
            },
        }
        let mut buf = std::mem::take(&mut self.buf);
        buf.clear();
        self.watcher.on_item(dst, |k| buf.push(k));
        for &k in &buf {
            if let Some(c) = self.credits.get_mut(&k) {
                *c += 1;
                self.completions += 1;
            }
        }
        self.buf = buf;
    }

    fn finish(self) -> OnePassEstimate {
        let m = self.items / 2;
        let rate = match self.sampling {
            EdgeSampling::Threshold { p } => p,
            EdgeSampling::BottomK { .. } => {
                if m == 0 {
                    0.0
                } else {
                    (self.credits.len() as f64 / m as f64).min(1.0)
                }
            }
        };
        let estimate = if rate > 0.0 {
            self.completions as f64 / (2.0 * rate)
        } else {
            0.0
        };
        OnePassEstimate {
            estimate,
            completions: self.completions,
            edges_sampled: self.credits.len(),
            m,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adjstream_graph::{exact, gen};
    use adjstream_stream::{PassOrders, Runner, StreamOrder};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run_once(
        g: &adjstream_graph::Graph,
        seed: u64,
        sampling: EdgeSampling,
        order_seed: u64,
    ) -> OnePassEstimate {
        let n = g.vertex_count();
        let (est, _) = Runner::run(
            g,
            OnePassTriangle::new(seed, sampling),
            &PassOrders::Same(StreamOrder::shuffled(n, order_seed)),
        );
        est
    }

    /// With p = 1, every triangle is completed exactly twice (once per edge
    /// whose first appearance precedes the apex), so X = 2T exactly.
    #[test]
    fn full_rate_counts_each_triangle_twice() {
        let mut rng = StdRng::seed_from_u64(11);
        for trial in 0..6 {
            let g = gen::gnm(35, 180, &mut rng);
            let t = exact::count_triangles(&g);
            let est = run_once(&g, trial, EdgeSampling::Threshold { p: 1.0 }, trial);
            assert_eq!(est.completions, 2 * t, "trial {trial}");
            assert_eq!(est.estimate, t as f64);
        }
    }

    #[test]
    fn unbiased_at_half_rate() {
        let g = gen::disjoint_cliques(5, 12); // T = 120
        let reps = 400;
        let mut sum = 0.0;
        for seed in 0..reps {
            sum += run_once(&g, seed, EdgeSampling::Threshold { p: 0.5 }, seed).estimate;
        }
        let mean = sum / reps as f64;
        assert!((mean - 120.0).abs() < 12.0, "mean {mean}");
    }

    #[test]
    fn bottomk_eviction_rolls_back_credits() {
        // Small k on a triangle-dense graph: credits for evicted edges must
        // be subtracted, so the final X only reflects surviving edges.
        let g = gen::complete(12);
        let est = run_once(&g, 5, EdgeSampling::BottomK { k: 10 }, 9);
        assert_eq!(est.edges_sampled, 10);
        // Sanity: estimate within an order of magnitude of T=220 given the
        // fixed seeds (exactness is not expected at this rate).
        assert!(est.estimate > 0.0 && est.estimate < 2200.0, "{est:?}");
    }

    #[test]
    fn triangle_free_yields_zero() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = gen::bipartite_gnm(15, 15, 100, &mut rng);
        let est = run_once(&g, 3, EdgeSampling::Threshold { p: 1.0 }, 4);
        assert_eq!(est.completions, 0);
        assert_eq!(est.estimate, 0.0);
        assert_eq!(est.m, 100);
    }
}

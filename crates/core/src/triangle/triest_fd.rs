//! TRIÈST-FD: fully-dynamic triangle estimation under edge insertions
//! *and deletions* (De Stefani, Epasto, Riondato, Upfal; KDD 2016, §4.3),
//! built on Gemulla's *random pairing* reservoir.
//!
//! Plain reservoir sampling cannot survive deletions: evicting the deleted
//! edge skews the sample, keeping it breaks the graph. Random pairing
//! instead *remembers* deletions as debt — `d_i` uncompensated deletions
//! of **sampled** edges, `d_o` of unsampled ones — and pays the debt with
//! future insertions: while `d_i + d_o > 0`, an arriving edge enters the
//! sample with probability `d_i / (d_i + d_o)` (taking over a vacated
//! sample slot) and is discarded otherwise; with zero debt the classic
//! reservoir step applies. The invariant is that the sample is always a
//! uniform `ω = min(M, s + d_i + d_o)`-subset of the `s` live edges, where
//! `s` tracks the live-edge count.
//!
//! The estimator keeps `τ` — the **exact** triangle count of the sampled
//! subgraph, updated by ± the distinct common neighbors of an edge's
//! endpoints whenever the edge enters or leaves the sample — and returns
//! `τ / p₃`, where
//!
//! ```text
//! p₃ = [ω (ω−1) (ω−2)] / [(s+d)(s+d−1)(s+d−2)],   d = d_i + d_o
//! ```
//!
//! is the probability that all three edges of a surviving triangle are in
//! a uniform ω-subset of the `s + d` "candidate" population. While
//! `s + d ≤ M` the sample holds everything, `p₃ = 1`, and the estimate is
//! exact — mirroring TRIÈST-base's full-reservoir behavior, now under
//! deletions too.

use std::io::{self, Read, Write};

use adjstream_graph::EdgeKey;
use adjstream_stream::checkpoint::{
    corrupt, read_u64, read_usize, write_u64, write_usize, Checkpoint,
};
use adjstream_stream::hashing::{FastMap, SplitMix64};
use adjstream_stream::meter::{hashmap_bytes, vec_bytes, SpaceUsage};
use adjstream_stream::update::UpdateAlgorithm;

use super::triest::SampleAdjacency;

/// TRIÈST-FD: random-pairing edge reservoir with inverse-probability
/// triangle weighting. See module docs.
pub struct TriestFd {
    capacity: usize,
    /// Live edges in the evolving graph (insertions minus deletions).
    s: u64,
    /// Uncompensated deletions of edges that *were in* the sample.
    d_in: u64,
    /// Uncompensated deletions of edges that were *not* in the sample.
    d_out: u64,
    /// The sampled edges; eviction is uniform via `swap_remove`.
    reservoir: Vec<EdgeKey>,
    /// Packed edge → index in `reservoir`, for O(1) membership tests on
    /// deletions and the swap-fixup after an eviction.
    index: FastMap<u64, usize>,
    /// Adjacency of the sampled subgraph (shared with TRIÈST-base).
    adj: SampleAdjacency,
    /// Exact triangle count of the sampled subgraph.
    tau: u64,
    rng: SplitMix64,
}

impl TriestFd {
    /// Estimator with reservoir capacity `m_prime`.
    pub fn new(seed: u64, m_prime: usize) -> Self {
        assert!(
            m_prime >= 3,
            "TRIÈST-FD needs at least three reservoir slots"
        );
        TriestFd {
            capacity: m_prime,
            s: 0,
            d_in: 0,
            d_out: 0,
            reservoir: Vec::with_capacity(m_prime.min(1 << 20)),
            index: FastMap::default(),
            adj: SampleAdjacency::default(),
            tau: 0,
            rng: SplitMix64::new(seed),
        }
    }

    /// Exact triangle count of the *sampled* subgraph (`τ`).
    pub fn sampled_triangles(&self) -> u64 {
        self.tau
    }

    /// Live-edge count `s` implied by the update stream so far.
    pub fn live_edges(&self) -> u64 {
        self.s
    }

    /// Current sample size.
    pub fn sample_size(&self) -> usize {
        self.reservoir.len()
    }

    /// Uncompensated deletion debt `(d_i, d_o)`.
    pub fn deletion_debt(&self) -> (u64, u64) {
        (self.d_in, self.d_out)
    }

    fn next_below(&mut self, bound: u64) -> u64 {
        let zone = u64::MAX - u64::MAX % bound;
        loop {
            let x = self.rng.next_u64();
            if x < zone {
                return x % bound;
            }
        }
    }

    /// Put `e` into the sample, keeping `τ`, the adjacency, and the index
    /// map consistent. `e` must not already be sampled.
    fn sample_insert(&mut self, e: EdgeKey) {
        self.tau += self.adj.common_count(e.lo(), e.hi());
        let prev = self.index.insert(e.pack(), self.reservoir.len());
        debug_assert!(prev.is_none(), "edge already sampled");
        self.reservoir.push(e);
        self.adj.add(e);
    }

    /// Remove the sampled edge at `pos`, fixing up the swapped index.
    fn sample_remove_at(&mut self, pos: usize) -> EdgeKey {
        let e = self.reservoir.swap_remove(pos);
        self.index.remove(&e.pack());
        if let Some(moved) = self.reservoir.get(pos) {
            self.index.insert(moved.pack(), pos);
        }
        let removed = self.adj.remove(e);
        debug_assert!(removed, "sampled edge had adjacency");
        self.tau -= self.adj.common_count(e.lo(), e.hi());
        e
    }

    /// Check every structural invariant, panicking with a description of
    /// the first violation. Used by the property tests; cost is
    /// `O(M² · deg)` (it recounts `τ` from scratch), so call it on small
    /// instances only.
    pub fn assert_invariants(&self) {
        assert!(
            self.reservoir.len() <= self.capacity,
            "sample over capacity"
        );
        assert!(
            self.reservoir.len() as u64 <= self.s,
            "more sampled edges than live edges"
        );
        assert_eq!(
            self.index.len(),
            self.reservoir.len(),
            "index/reservoir size mismatch"
        );
        for (i, e) in self.reservoir.iter().enumerate() {
            assert_eq!(
                self.index.get(&e.pack()),
                Some(&i),
                "index does not point at reservoir slot"
            );
        }
        let mut expected: Vec<u64> = self.reservoir.iter().map(|e| e.pack()).collect();
        expected.sort_unstable();
        assert_eq!(
            self.adj.edge_multiset(),
            expected,
            "adjacency out of sync with reservoir"
        );
        // τ must equal the exact triangle count of the sampled subgraph:
        // count each triangle at its lexicographically-last edge.
        let mut probe = SampleAdjacency::default();
        let mut tau = 0u64;
        for &e in &self.reservoir {
            tau += probe.common_count(e.lo(), e.hi());
            probe.add(e);
        }
        assert_eq!(self.tau, tau, "τ out of sync with sampled subgraph");
    }

    /// `p₃`: probability that three fixed candidate edges are all sampled.
    fn p3(&self) -> f64 {
        let d = self.d_in + self.d_out;
        let pop = self.s + d;
        if pop < 3 {
            return 1.0;
        }
        let omega = (self.capacity as u64).min(pop) as f64;
        let pop = pop as f64;
        (omega * (omega - 1.0) * (omega - 2.0)) / (pop * (pop - 1.0) * (pop - 2.0))
    }
}

/// Batch-boundary persistence. The reservoir `Vec` is saved *in order* —
/// eviction uses `swap_remove`, so slot order feeds back into which edge a
/// future eviction removes, and bit-identical resume therefore needs the
/// exact layout, not just the edge set. The `index` map and the sampled
/// adjacency are reconstructed from the reservoir; `τ` is stored *and*
/// recounted during the rebuild, so a payload whose stored `τ` disagrees
/// with its own reservoir is rejected as corrupt instead of silently
/// skewing every later estimate.
impl Checkpoint for TriestFd {
    fn save(&self, w: &mut dyn Write) -> io::Result<()> {
        write_usize(w, self.capacity)?;
        write_u64(w, self.s)?;
        write_u64(w, self.d_in)?;
        write_u64(w, self.d_out)?;
        write_u64(w, self.tau)?;
        write_u64(w, self.rng.state())?;
        write_usize(w, self.reservoir.len())?;
        for e in &self.reservoir {
            write_u64(w, e.pack())?;
        }
        Ok(())
    }

    fn restore(r: &mut dyn Read) -> io::Result<Self> {
        let capacity = read_usize(r)?;
        if capacity < 3 {
            return Err(corrupt(format!("reservoir capacity {capacity} below 3")));
        }
        let s = read_u64(r)?;
        let d_in = read_u64(r)?;
        let d_out = read_u64(r)?;
        let tau = read_u64(r)?;
        let rng = SplitMix64::from_state(read_u64(r)?);
        let len = read_usize(r)?;
        if len > capacity {
            return Err(corrupt(format!(
                "sample size {len} over capacity {capacity}"
            )));
        }
        if len as u64 > s {
            return Err(corrupt(format!("sample size {len} exceeds live edges {s}")));
        }
        let mut restored = TriestFd {
            capacity,
            s,
            d_in,
            d_out,
            reservoir: Vec::with_capacity(len.min(1 << 20)),
            index: FastMap::default(),
            adj: SampleAdjacency::default(),
            tau: 0,
            rng,
        };
        for _ in 0..len {
            let packed = read_u64(r)?;
            // Validate before unpacking: EdgeKey::unpack debug-asserts
            // lo < hi, and checkpoint bytes cross a trust boundary.
            if (packed >> 32) as u32 >= packed as u32 {
                return Err(corrupt(format!("malformed packed edge {packed:#018x}")));
            }
            let e = EdgeKey::unpack(packed);
            if restored.index.contains_key(&packed) {
                return Err(corrupt(format!("duplicate reservoir edge {e}")));
            }
            restored.sample_insert(e);
        }
        if restored.tau != tau {
            return Err(corrupt(format!(
                "stored τ = {tau} disagrees with reservoir recount {}",
                restored.tau
            )));
        }
        Ok(restored)
    }
}

impl SpaceUsage for TriestFd {
    fn space_bytes(&self) -> usize {
        vec_bytes(&self.reservoir)
            + hashmap_bytes(&self.index)
            + self.adj.space_bytes()
            + 5 * 8
            + 16
    }
}

impl UpdateAlgorithm for TriestFd {
    fn insert(&mut self, e: EdgeKey, _ts: u64) {
        self.s += 1;
        let debt = self.d_in + self.d_out;
        if debt > 0 {
            // Random pairing: this insertion compensates one earlier
            // deletion; it takes a vacated *sample* slot with probability
            // d_i / (d_i + d_o).
            if self.next_below(debt) < self.d_in {
                self.d_in -= 1;
                self.sample_insert(e);
            } else {
                self.d_out -= 1;
            }
        } else if self.reservoir.len() < self.capacity {
            self.sample_insert(e);
        } else if self.next_below(self.s) < self.capacity as u64 {
            // Classic reservoir step over the s live edges.
            let evict = self.next_below(self.reservoir.len() as u64) as usize;
            self.sample_remove_at(evict);
            self.sample_insert(e);
        }
    }

    fn delete(&mut self, e: EdgeKey, _ts: u64) {
        // Tolerant by construction: a deletion of an unsampled edge —
        // the common case, and the one that used to panic TRIÈST-base's
        // shared machinery — just grows the d_o debt. Callers are trusted
        // to delete only live edges (`s` is their bookkeeping).
        self.s = self.s.saturating_sub(1);
        if let Some(&pos) = self.index.get(&e.pack()) {
            self.sample_remove_at(pos);
            self.d_in += 1;
        } else {
            self.d_out += 1;
        }
    }

    fn estimate(&self) -> f64 {
        self.tau as f64 / self.p3()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adjstream_graph::{exact, gen, Graph, GraphBuilder};
    use adjstream_stream::update::{
        churn, run_update_batches, ChurnConfig, UpdateOp, UpdateStream,
    };
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn final_graph(stream: &UpdateStream) -> Graph {
        let edges = stream.final_edges();
        let n = edges
            .iter()
            .map(|e| e.hi().0 as usize + 1)
            .max()
            .unwrap_or(0);
        GraphBuilder::from_edges(n, edges.iter().map(|e| (e.lo().0, e.hi().0)))
            .expect("valid final edge set")
    }

    fn drive(stream: &UpdateStream, m_prime: usize, seed: u64) -> TriestFd {
        let mut alg = TriestFd::new(seed, m_prime);
        run_update_batches(stream, 64, &mut alg);
        alg
    }

    /// With capacity ≥ inserts the sample tracks the live graph exactly:
    /// every deletion hits the sample (`d_o` stays 0), every insertion
    /// compensates or extends, `p₃ = 1`, and the estimate equals the exact
    /// triangle count of the final graph — TRIÈST-base's
    /// full-reservoir-is-exact guarantee, extended to deletion streams.
    #[test]
    fn full_reservoir_is_exact_under_deletions() {
        let mut rng = StdRng::seed_from_u64(11);
        for trial in 0..6 {
            let g = gen::gnm(30, 140, &mut rng);
            let stream = churn(
                &g,
                &ChurnConfig {
                    churn_events: 300,
                    delete_fraction: 0.55,
                    seed: trial,
                },
            );
            let alg = drive(&stream, g.edge_count() + 300, trial);
            alg.assert_invariants();
            assert_eq!(alg.deletion_debt().1, 0, "no unsampled deletions");
            let truth = exact::count_triangles(&final_graph(&stream));
            assert_eq!(alg.estimate(), truth as f64, "trial {trial}");
            assert_eq!(alg.sampled_triangles(), truth);
        }
    }

    /// Sub-sampled estimates average to the truth across seeds.
    #[test]
    fn subsampled_is_unbiased_under_deletions() {
        let g = gen::disjoint_cliques(5, 12); // 120 triangles before churn
        let stream = churn(
            &g,
            &ChurnConfig {
                churn_events: 200,
                delete_fraction: 0.5,
                seed: 77,
            },
        );
        let truth = exact::count_triangles(&final_graph(&stream)) as f64;
        let reps = 300;
        let mean: f64 = (0..reps)
            .map(|s| drive(&stream, 60, s).estimate())
            .sum::<f64>()
            / reps as f64;
        assert!(
            (mean - truth).abs() < 0.15 * truth,
            "mean {mean} vs truth {truth}"
        );
    }

    /// Deletions of unsampled edges must be absorbed as `d_o` debt, not
    /// panics — the regression the tolerant `SampleAdjacency::remove`
    /// exists for.
    #[test]
    fn unsampled_deletions_grow_debt_without_panicking() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = gen::gnm(100, 400, &mut rng);
        let stream = churn(
            &g,
            &ChurnConfig {
                churn_events: 600,
                delete_fraction: 0.7,
                seed: 9,
            },
        );
        // Tiny reservoir: most deletions target unsampled edges.
        let mut alg = TriestFd::new(3, 8);
        for ev in stream.events() {
            match ev.op {
                UpdateOp::Insert => alg.insert(ev.edge, ev.ts),
                UpdateOp::Delete => alg.delete(ev.edge, ev.ts),
            }
            assert!(alg.sample_size() <= 8);
        }
        alg.assert_invariants();
        let (_, d_out) = alg.deletion_debt();
        assert!(d_out > 0, "small sample must have missed some deletions");
        assert_eq!(alg.live_edges(), stream.final_edges().len() as u64);
    }

    #[test]
    #[should_panic(expected = "at least three")]
    fn rejects_tiny_reservoir() {
        TriestFd::new(1, 2);
    }

    /// Resume contract: a run checkpointed at an event boundary and
    /// restored must produce *bit-identical* estimates for the remainder
    /// of the stream — the reservoir layout, RNG state, debt counters, and
    /// τ all survive the round trip.
    #[test]
    fn checkpoint_resume_is_bit_identical() {
        let mut rng = StdRng::seed_from_u64(23);
        let g = gen::gnm(40, 200, &mut rng);
        let stream = churn(
            &g,
            &ChurnConfig {
                churn_events: 400,
                delete_fraction: 0.6,
                seed: 17,
            },
        );
        for cut_frac in [1, 2, 3] {
            let cut = stream.len() * cut_frac / 4;
            // Uninterrupted run, recording post-cut estimates.
            let mut whole = TriestFd::new(7, 48);
            let mut expected = Vec::new();
            for (i, ev) in stream.events().iter().enumerate() {
                whole.apply(ev);
                if i >= cut {
                    expected.push(whole.estimate().to_bits());
                }
            }
            // Interrupted run: checkpoint at `cut`, restore, finish.
            let mut first = TriestFd::new(7, 48);
            for ev in &stream.events()[..cut] {
                first.apply(ev);
            }
            let mut buf = Vec::new();
            first.save(&mut buf).unwrap();
            let mut resumed = TriestFd::restore(&mut &buf[..]).unwrap();
            resumed.assert_invariants();
            let mut actual = Vec::new();
            for ev in &stream.events()[cut..] {
                resumed.apply(ev);
                actual.push(resumed.estimate().to_bits());
            }
            assert_eq!(expected, actual, "cut at {cut}");
            resumed.assert_invariants();
            assert_eq!(resumed.deletion_debt(), whole.deletion_debt());
            assert_eq!(resumed.live_edges(), whole.live_edges());
        }
    }

    #[test]
    fn restore_rejects_structural_garbage() {
        let mut alg = TriestFd::new(3, 8);
        for (i, (u, v)) in [(0, 1), (1, 2), (0, 2), (2, 3)].iter().enumerate() {
            alg.insert(
                adjstream_graph::EdgeKey::new((*u).into(), (*v).into()),
                i as u64,
            );
        }
        let mut good = Vec::new();
        alg.save(&mut good).unwrap();

        // Truncation.
        assert!(TriestFd::restore(&mut &good[..good.len() - 4]).is_err());
        // Undersized capacity.
        let mut bad = good.clone();
        bad[0] = 1;
        assert!(TriestFd::restore(&mut &bad[..]).is_err());
        // τ inconsistent with the reservoir (alg has one triangle).
        let mut bad = good.clone();
        let tau_at = 8 + 3 * 8; // capacity, s, d_in, d_out
        bad[tau_at] = bad[tau_at].wrapping_add(1);
        assert!(TriestFd::restore(&mut &bad[..]).is_err());
        // Self-loop packed edge (lo == hi).
        let mut bad = good.clone();
        let first_edge_at = 8 * 7;
        bad[first_edge_at..first_edge_at + 8]
            .copy_from_slice(&(((5u64) << 32) | 5u64).to_le_bytes());
        assert!(TriestFd::restore(&mut &bad[..]).is_err());
        // The untouched payload still restores and passes invariants.
        let restored = TriestFd::restore(&mut &good[..]).unwrap();
        restored.assert_invariants();
        assert_eq!(restored.sampled_triangles(), 1);
    }
}

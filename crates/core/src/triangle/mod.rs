//! Triangle counting algorithms (Sections 2.1, 3, and the Table 1 baseline
//! rows).

mod distinguish;
mod multi_level;
mod one_pass;
mod random_order;
mod sharded;
mod three_pass;
mod triest;
mod triest_fd;
mod two_pass;

pub(crate) use triest::SampleAdjacency;
mod wedge_sampler;

pub use distinguish::{DistinguishVerdict, TriangleDistinguisher};
pub use multi_level::{MultiLevelEstimate, MultiLevelTriangle};
pub use one_pass::{OnePassEstimate, OnePassTriangle};
pub use random_order::{RandomOrderEstimate, RandomOrderTriangle};
pub use sharded::{ShardedTriangle, ShardedTriangleConfig};
pub use three_pass::{ThreePassEstimate, ThreePassTriangle};
pub use triest::{TriestBase, TriestEstimate};
pub use triest_fd::TriestFd;
pub use two_pass::{TriangleEstimate, TwoPassTriangle, TwoPassTriangleConfig};
pub use wedge_sampler::{WedgeSamplerEstimate, WedgeSamplerTriangle};

//! One-pass wedge-sampling triangle estimation (the `Õ(P₂/T)` Table-1 row,
//! Buriol et al. \[12\] adapted to adjacency-list order; the downstream
//! closure check follows Jha–Seshadhri–Pinar \[17\]).
//!
//! Adjacency-list order makes wedges easy: scanning vertex `c`'s list
//! reveals all `C(deg c, 2)` wedges centered at `c`. Each estimator slot
//! maintains a uniformly random wedge over everything seen so far:
//!
//! * within the current list, a capacity-2 reservoir over the neighbors is a
//!   uniform 2-subset — i.e. a uniform wedge centered here;
//! * at the end of a list of degree `d`, the slot adopts that wedge with
//!   probability `C(d,2) / W` where `W` is the running total wedge count —
//!   the standard grouped-reservoir rule, keeping the slot uniform over all
//!   `W` wedges.
//!
//! A stored wedge `a–c–b` is *observed closed* if an item `ab` or `ba`
//! arrives while it is stored. For a triangle whose vertices arrive in order
//! `v₁, v₂, v₃`, the wedges centered at `v₁` and `v₂` see a closing item
//! after their selection point, the wedge at `v₃` does not; hence each slot
//! detects with probability exactly `2T/W` and `closed · W / (2 · slots)`
//! is unbiased.

use adjstream_graph::VertexId;
use adjstream_stream::hashing::{FastMap, SplitMix64};
use adjstream_stream::meter::{hashmap_bytes, vec_bytes, SpaceUsage};
use adjstream_stream::runner::MultiPassAlgorithm;

use crate::common::pack_pair;

/// Result of a [`WedgeSamplerTriangle`] run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WedgeSamplerEstimate {
    /// The estimate `closed · W / (2 · slots)`.
    pub estimate: f64,
    /// Total wedges in the stream `W = P₂`.
    pub wedges_total: u64,
    /// Slots whose final wedge was observed closed.
    pub closed: u64,
    /// Number of estimator slots.
    pub slots: usize,
}

/// Per-slot state.
#[derive(Debug, Clone, Copy)]
struct Slot {
    /// Stored wedge `(a, center, b)`, if any.
    wedge: Option<(VertexId, VertexId, VertexId)>,
    /// Whether a closing item has been seen since the wedge was stored.
    closed: bool,
    /// Capacity-2 reservoir over the current list's neighbors.
    cand: [VertexId; 2],
    cand_len: u8,
}

impl Default for Slot {
    fn default() -> Self {
        Slot {
            wedge: None,
            closed: false,
            cand: [VertexId(0); 2],
            cand_len: 0,
        }
    }
}

/// One-pass wedge-sampling estimator. See module docs.
pub struct WedgeSamplerTriangle {
    slots: Vec<Slot>,
    /// Packed leaf pair → slots watching it for closure.
    watched: FastMap<u64, Vec<u32>>,
    /// Total wedges seen (running `W`).
    wedges_total: u64,
    /// Neighbors seen in the current list.
    list_len: u64,
    current: Option<VertexId>,
    rng: SplitMix64,
}

impl WedgeSamplerTriangle {
    /// Estimator with `slots` parallel wedge samples.
    pub fn new(seed: u64, slots: usize) -> Self {
        WedgeSamplerTriangle {
            slots: vec![Slot::default(); slots],
            watched: FastMap::default(),
            wedges_total: 0,
            list_len: 0,
            current: None,
            rng: SplitMix64::new(seed),
        }
    }

    fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let zone = u64::MAX - u64::MAX % bound;
        loop {
            let x = self.rng.next_u64();
            if x < zone {
                return x % bound;
            }
        }
    }

    /// Visit a Bernoulli(`num/den`) subset of `0..n` via geometric skips —
    /// distributionally identical to `n` independent coin flips but
    /// `O(1 + hits)` expected work, which keeps the per-item cost constant
    /// even with hundreds of thousands of slots.
    fn for_each_selected<F: FnMut(&mut Self, usize)>(
        &mut self,
        n: usize,
        num: u64,
        den: u64,
        mut f: F,
    ) {
        if n == 0 || num == 0 {
            return;
        }
        if num >= den {
            for i in 0..n {
                f(self, i);
            }
            return;
        }
        let p = num as f64 / den as f64;
        let log_q = (1.0 - p).ln();
        let mut i: i64 = -1;
        loop {
            let r = (self.next_u64_f64() - 1.0).abs().max(f64::MIN_POSITIVE);
            let skip = ((r.ln() / log_q).floor() as i64 + 1).max(1);
            i += skip;
            if i as usize >= n {
                return;
            }
            f(self, i as usize);
        }
    }

    /// Uniform f64 in (0, 1].
    fn next_u64_f64(&mut self) -> f64 {
        ((self.rng.next_u64() >> 11) as f64 + 1.0) * (1.0 / (1u64 << 53) as f64)
    }

    fn unwatch_slot(watched: &mut FastMap<u64, Vec<u32>>, slot_idx: u32, pair: u64) {
        if let Some(v) = watched.get_mut(&pair) {
            if let Some(pos) = v.iter().position(|&s| s == slot_idx) {
                v.swap_remove(pos);
            }
            if v.is_empty() {
                watched.remove(&pair);
            }
        }
    }
}

impl SpaceUsage for WedgeSamplerTriangle {
    fn space_bytes(&self) -> usize {
        let inner: usize = self.watched.values().map(|v| v.capacity() * 4 + 24).sum();
        vec_bytes(&self.slots) + hashmap_bytes(&self.watched) + inner + 64
    }
}

impl MultiPassAlgorithm for WedgeSamplerTriangle {
    type Output = WedgeSamplerEstimate;

    fn passes(&self) -> usize {
        1
    }

    fn begin_pass(&mut self, _pass: usize) {}

    fn begin_list(&mut self, owner: VertexId) {
        self.current = Some(owner);
        self.list_len = 0;
        for s in &mut self.slots {
            s.cand_len = 0;
        }
    }

    fn item(&mut self, src: VertexId, dst: VertexId) {
        // Closure check first: a closing item observed while its wedge is
        // stored marks the slot closed.
        let key = pack_pair(src, dst);
        if let Some(slots) = self.watched.get(&key) {
            // Split borrow: mark after collecting (tiny vectors).
            let to_mark: Vec<u32> = slots.clone();
            for si in to_mark {
                self.slots[si as usize].closed = true;
            }
        }
        // Candidate 2-subset reservoirs.
        self.list_len += 1;
        let j = self.list_len;
        if j <= 2 {
            // All slots append their first two neighbors.
            for s in &mut self.slots {
                s.cand[(j - 1) as usize] = dst;
                s.cand_len = j as u8;
            }
        } else {
            // Uniform 2-subset of a stream: each slot replaces a random
            // held element with probability 2/j. Skip-sample the updating
            // slots instead of flipping a coin per slot.
            let mut slots = std::mem::take(&mut self.slots);
            self.for_each_selected(slots.len(), 2, j, |this, i| {
                let which = this.next_below(2) as usize;
                slots[i].cand[which] = dst;
            });
            self.slots = slots;
        }
    }

    fn end_list(&mut self, owner: VertexId) {
        let d = self.list_len;
        let new_wedges = d * d.saturating_sub(1) / 2;
        if new_wedges == 0 {
            self.current = None;
            return;
        }
        self.wedges_total += new_wedges;
        let total = self.wedges_total;
        // Each slot adopts this list's candidate wedge with probability
        // new_wedges/total; skip-sample the adopting subset.
        let mut slots = std::mem::take(&mut self.slots);
        let mut watched = std::mem::take(&mut self.watched);
        self.for_each_selected(slots.len(), new_wedges, total, |_this, i| {
            let (a, b) = (slots[i].cand[0], slots[i].cand[1]);
            if let Some((oa, _, ob)) = slots[i].wedge.take() {
                Self::unwatch_slot(&mut watched, i as u32, pack_pair(oa, ob));
            }
            slots[i].wedge = Some((a, owner, b));
            slots[i].closed = false;
            watched.entry(pack_pair(a, b)).or_default().push(i as u32);
        });
        self.slots = slots;
        self.watched = watched;
        self.current = None;
    }

    fn finish(self) -> WedgeSamplerEstimate {
        let closed = self.slots.iter().filter(|s| s.closed).count() as u64;
        let slots = self.slots.len();
        let estimate = if slots == 0 {
            0.0
        } else {
            closed as f64 * self.wedges_total as f64 / (2.0 * slots as f64)
        };
        WedgeSamplerEstimate {
            estimate,
            wedges_total: self.wedges_total,
            closed,
            slots,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adjstream_graph::{exact, gen};
    use adjstream_stream::{PassOrders, Runner, StreamOrder};

    fn run_once(
        g: &adjstream_graph::Graph,
        seed: u64,
        slots: usize,
        order_seed: u64,
    ) -> WedgeSamplerEstimate {
        let n = g.vertex_count();
        let (est, _) = Runner::run(
            g,
            WedgeSamplerTriangle::new(seed, slots),
            &PassOrders::Same(StreamOrder::shuffled(n, order_seed)),
        );
        est
    }

    #[test]
    fn wedge_total_is_exact() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        let g = gen::gnm(40, 200, &mut rng);
        let est = run_once(&g, 1, 10, 2);
        assert_eq!(est.wedges_total, g.wedge_count());
    }

    /// Unbiasedness: with many slots and seeds, the mean estimate converges
    /// to T on a clique workload.
    #[test]
    fn unbiased_on_cliques() {
        let g = gen::disjoint_cliques(7, 6); // T = 6*35 = 210
        let reps = 120;
        let mut sum = 0.0;
        for seed in 0..reps {
            sum += run_once(&g, seed, 60, seed).estimate;
        }
        let mean = sum / reps as f64;
        assert!((mean - 210.0).abs() < 30.0, "mean {mean}");
        let _ = exact::count_triangles(&g);
    }

    #[test]
    fn triangle_free_never_closes() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(4);
        let g = gen::bipartite_gnm(20, 20, 200, &mut rng);
        for seed in 0..10 {
            let est = run_once(&g, seed, 40, seed);
            assert_eq!(est.closed, 0, "seed {seed}");
            assert_eq!(est.estimate, 0.0);
        }
    }

    #[test]
    fn zero_slots_estimates_zero() {
        let g = gen::complete(6);
        let est = run_once(&g, 1, 0, 1);
        assert_eq!(est.estimate, 0.0);
        assert_eq!(est.slots, 0);
    }
}

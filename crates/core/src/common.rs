//! Shared machinery: the pair-completion watcher and sampling configuration.

use std::collections::HashMap;
use std::io::{self, Read, Write};

use adjstream_graph::VertexId;
use adjstream_stream::checkpoint::{
    corrupt, read_u32, read_u64, read_usize, write_u32, write_u64, write_usize, Checkpoint,
};
use adjstream_stream::hashing::{FastMap, FastSet};
use adjstream_stream::item::StreamItem;
use adjstream_stream::meter::{hashmap_bytes, SpaceUsage};
use adjstream_stream::obs::ObsCounters;

/// How the first-pass edge sample `S` is drawn (DESIGN.md §2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EdgeSampling {
    /// Hash-threshold (Bernoulli) sampling: every edge independently with
    /// probability `p`. `|S| ~ Binomial(m, p)`; no evictions, so downstream
    /// reservoirs are exactly uniform.
    Threshold {
        /// Inclusion probability.
        p: f64,
    },
    /// Bottom-k hashing: `S` is exactly the `k` smallest-hashed edges — the
    /// paper's fixed-size uniform subset. Evictions mid-pass purge dependent
    /// state.
    BottomK {
        /// Sample size `m′`.
        k: usize,
    },
}

/// Push `val` onto `map[key]`, returning the byte-accounting delta of the
/// map's inner vectors: a 24-byte `Vec` header when the entry is new plus
/// `elem_bytes` per unit of capacity growth. Callers accumulate the deltas
/// (and subtract `capacity · elem_bytes + 24` on entry removal) so
/// [`SpaceUsage::space_bytes`] stays O(1) instead of rescanning every value
/// — the rescan was the dominant cost of peak metering on large budgets.
/// The vacant arm reproduces `entry(k).or_default().push(v)` exactly, so
/// capacities (and hence reported bytes) are identical to the old scan.
pub(crate) fn push_map_vec<K, T, S>(
    map: &mut HashMap<K, Vec<T>, S>,
    key: K,
    val: T,
    elem_bytes: usize,
) -> usize
where
    K: Eq + std::hash::Hash,
    S: std::hash::BuildHasher,
{
    use std::collections::hash_map::Entry;
    match map.entry(key) {
        Entry::Occupied(mut e) => {
            let v = e.get_mut();
            let before = v.capacity();
            v.push(val);
            (v.capacity() - before) * elem_bytes
        }
        Entry::Vacant(e) => {
            let v = e.insert(Vec::new());
            v.push(val);
            24 + v.capacity() * elem_bytes
        }
    }
}

/// Watches vertex pairs for *completion*: a watched pair `{a, b}` completes
/// in the adjacency list of `z` when both `a` and `b` occur in that list
/// (equivalently, `z` is adjacent to both — so `z` closes a triangle over an
/// edge `{a,b}`, or a 4-cycle over a wedge with leaves `{a,b}`).
///
/// This is the "two extra bits per edge" flagging technique of Section 3.3.1
/// generalized to arbitrary vertex pairs (Section 4 watches wedge leaf pairs
/// that need not be edges). Pairs are refcounted so several consumers can
/// watch the same pair; completion is reported once per (pair, list).
#[derive(Debug, Default)]
pub struct PairWatcher {
    /// vertex → packed pairs containing it.
    incident: FastMap<u32, Vec<u64>>,
    /// Bytes held by `incident`'s inner vectors, maintained incrementally.
    incident_vec_bytes: usize,
    /// packed pair → number of watchers.
    refcount: FastMap<u64, u32>,
    /// packed pair → epoch of its last single hit.
    hit_epoch: FastMap<u64, u32>,
    epoch: u32,
    /// Lifetime watch registrations (refcount acquisitions).
    watches_started: u64,
    /// Lifetime watch releases (refcount drops).
    watches_retired: u64,
}

/// Pack an unordered vertex pair (canonical ascending).
#[inline]
pub fn pack_pair(a: VertexId, b: VertexId) -> u64 {
    let (lo, hi) = if a.0 <= b.0 { (a, b) } else { (b, a) };
    ((lo.0 as u64) << 32) | hi.0 as u64
}

/// Unpack a canonical vertex pair.
#[inline]
pub fn unpack_pair(p: u64) -> (VertexId, VertexId) {
    (VertexId((p >> 32) as u32), VertexId(p as u32))
}

impl PairWatcher {
    /// An empty watcher.
    pub fn new() -> Self {
        Self::default()
    }

    /// Begin watching the pair `{a, b}` (increments its refcount).
    pub fn watch(&mut self, a: VertexId, b: VertexId) {
        self.watches_started += 1;
        let key = pack_pair(a, b);
        let rc = self.refcount.entry(key).or_insert(0);
        *rc += 1;
        if *rc == 1 {
            let (lo, hi) = unpack_pair(key);
            self.incident_vec_bytes += push_map_vec(&mut self.incident, lo.0, key, 8);
            self.incident_vec_bytes += push_map_vec(&mut self.incident, hi.0, key, 8);
        }
    }

    /// Stop one watch of `{a, b}`; fully unregisters at refcount zero.
    pub fn unwatch(&mut self, a: VertexId, b: VertexId) {
        self.watches_retired += 1;
        let key = pack_pair(a, b);
        let rc = self
            .refcount
            .get_mut(&key)
            .expect("unwatch of unwatched pair");
        *rc -= 1;
        if *rc == 0 {
            self.refcount.remove(&key);
            self.hit_epoch.remove(&key);
            let (lo, hi) = unpack_pair(key);
            for v in [lo.0, hi.0] {
                let list = self.incident.get_mut(&v).expect("incident list exists");
                let pos = list.iter().position(|&p| p == key).expect("pair in list");
                list.swap_remove(pos);
                if list.is_empty() {
                    let dead = self.incident.remove(&v).expect("just seen");
                    self.incident_vec_bytes -= dead.capacity() * 8 + 24;
                }
            }
        }
    }

    /// Whether `{a, b}` is currently watched.
    pub fn is_watched(&self, a: VertexId, b: VertexId) -> bool {
        self.refcount.contains_key(&pack_pair(a, b))
    }

    /// Number of distinct watched pairs.
    pub fn watched_pairs(&self) -> usize {
        self.refcount.len()
    }

    /// Lifetime watch/unwatch counters, in [`ObsCounters`] shape (only the
    /// watcher fields are populated; callers merge in their own).
    pub fn obs_counters(&self) -> ObsCounters {
        ObsCounters {
            watches_started: self.watches_started,
            watches_retired: self.watches_retired,
            ..ObsCounters::default()
        }
    }

    /// A new adjacency list is starting: reset per-list hit state.
    pub fn begin_list(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
    }

    /// Process one item `src → x` of the current list; invoke `completed`
    /// for every watched pair whose second endpoint this is (i.e. both
    /// endpoints now seen in the current list).
    pub fn on_item<F: FnMut(u64)>(&mut self, x: VertexId, mut completed: F) {
        let Some(pairs) = self.incident.get(&x.0) else {
            return;
        };
        for &key in pairs {
            match self.hit_epoch.get_mut(&key) {
                Some(e) if *e == self.epoch => {
                    // Second endpoint within the same list: completion.
                    // Bump past the epoch so a (malformed) triple hit
                    // wouldn't re-report; valid streams never do this.
                    *e = self.epoch.wrapping_add(u32::MAX / 2);
                    completed(key);
                }
                other => {
                    let _ = other;
                    self.hit_epoch.insert(key, self.epoch);
                }
            }
        }
    }

    /// Process a whole same-source run at once, invoking `completed`
    /// exactly as the equivalent [`PairWatcher::on_item`] loop would. The
    /// slice skips the per-item `incident` probe for destinations that
    /// watch nothing, which is the common case on sparse watch sets.
    pub fn on_items<F: FnMut(u64)>(&mut self, items: &[StreamItem], mut completed: F) {
        for it in items {
            self.on_item(it.dst, &mut completed);
        }
    }
}

/// Count elements shared by two neighbor sets, probing the smaller list
/// against a hash set of the larger — the common-neighbor step of the
/// local sampling estimators (TRIÈST-style and random-order). Extracted so
/// the callers share one scratch-set idiom instead of rebuilding it ad hoc.
pub(crate) fn count_common_neighbors(a: &[u32], b: &[u32]) -> u64 {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let large: FastSet<u32> = large.iter().copied().collect();
    small.iter().filter(|x| large.contains(x)).count() as u64
}

impl SpaceUsage for PairWatcher {
    fn space_bytes(&self) -> usize {
        hashmap_bytes(&self.incident)
            + self.incident_vec_bytes
            + hashmap_bytes(&self.refcount)
            + hashmap_bytes(&self.hit_epoch)
    }
}

/// Pass-boundary serialization. The per-list hit state (`hit_epoch`,
/// `epoch`) is deliberately *not* saved: at an adjacency-list boundary a
/// stale hit is behaviorally identical to an absent one (the next
/// `begin_list` bumps the epoch, so both paths insert the current epoch on
/// the first sighting), and dropping it keeps the checkpoint free of
/// mid-list state. The `incident` vectors are saved in order — completion
/// callbacks fire in that order, which downstream reservoirs observe.
impl Checkpoint for PairWatcher {
    fn save(&self, w: &mut dyn Write) -> io::Result<()> {
        write_usize(w, self.refcount.len())?;
        for (&key, &rc) in &self.refcount {
            write_u64(w, key)?;
            write_u32(w, rc)?;
        }
        write_usize(w, self.incident.len())?;
        for (&v, keys) in &self.incident {
            write_u32(w, v)?;
            write_usize(w, keys.len())?;
            for &key in keys {
                write_u64(w, key)?;
            }
        }
        write_u64(w, self.watches_started)?;
        write_u64(w, self.watches_retired)?;
        Ok(())
    }

    fn restore(r: &mut dyn Read) -> io::Result<Self> {
        let n = read_usize(r)?;
        let mut refcount = FastMap::default();
        refcount.reserve(n.min(1 << 16));
        for _ in 0..n {
            let key = read_u64(r)?;
            let rc = read_u32(r)?;
            if rc == 0 {
                return Err(corrupt("watched pair with zero refcount"));
            }
            refcount.insert(key, rc);
        }
        let n = read_usize(r)?;
        let mut incident: FastMap<u32, Vec<u64>> = FastMap::default();
        incident.reserve(n.min(1 << 16));
        let mut incident_vec_bytes = 0usize;
        let mut entries = 0usize;
        for _ in 0..n {
            let v = read_u32(r)?;
            let len = read_usize(r)?;
            let mut keys = Vec::with_capacity(len.min(1 << 16));
            for _ in 0..len {
                let key = read_u64(r)?;
                if !refcount.contains_key(&key) {
                    return Err(corrupt("incident pair is not watched"));
                }
                keys.push(key);
            }
            entries += keys.len();
            incident_vec_bytes += keys.capacity() * 8 + 24;
            incident.insert(v, keys);
        }
        if entries != 2 * refcount.len() {
            return Err(corrupt("incident index does not cover the watched pairs"));
        }
        let watches_started = read_u64(r)?;
        let watches_retired = read_u64(r)?;
        Ok(PairWatcher {
            incident,
            incident_vec_bytes,
            refcount,
            hit_epoch: FastMap::default(),
            epoch: 0,
            watches_started,
            watches_retired,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: u32) -> VertexId {
        VertexId(x)
    }

    fn completions(w: &mut PairWatcher, list: &[u32]) -> Vec<u64> {
        let mut out = Vec::new();
        w.begin_list();
        for &x in list {
            w.on_item(v(x), |k| out.push(k));
        }
        out
    }

    #[test]
    fn detects_completion_when_both_endpoints_in_list() {
        let mut w = PairWatcher::new();
        w.watch(v(1), v(2));
        assert_eq!(
            completions(&mut w, &[3, 1, 4, 2, 5]),
            vec![pack_pair(v(1), v(2))]
        );
    }

    #[test]
    fn no_completion_with_single_endpoint() {
        let mut w = PairWatcher::new();
        w.watch(v(1), v(2));
        assert!(completions(&mut w, &[1, 3, 4]).is_empty());
        // State resets between lists: endpoint in a *different* list does
        // not pair with the earlier one.
        assert!(completions(&mut w, &[2, 5]).is_empty());
    }

    #[test]
    fn reports_once_per_list_and_pair() {
        let mut w = PairWatcher::new();
        w.watch(v(1), v(2));
        w.watch(v(1), v(2)); // refcount 2, still one report
        assert_eq!(completions(&mut w, &[1, 2]).len(), 1);
        // And again in a later list.
        assert_eq!(completions(&mut w, &[2, 1]).len(), 1);
    }

    #[test]
    fn multiple_pairs_on_shared_vertex() {
        let mut w = PairWatcher::new();
        w.watch(v(1), v(2));
        w.watch(v(1), v(3));
        let got = completions(&mut w, &[2, 3, 1]);
        assert_eq!(got.len(), 2);
        assert!(got.contains(&pack_pair(v(1), v(2))));
        assert!(got.contains(&pack_pair(v(1), v(3))));
    }

    #[test]
    fn unwatch_respects_refcounts() {
        let mut w = PairWatcher::new();
        w.watch(v(1), v(2));
        w.watch(v(1), v(2));
        w.unwatch(v(1), v(2));
        assert!(w.is_watched(v(1), v(2)));
        assert_eq!(completions(&mut w, &[1, 2]).len(), 1);
        w.unwatch(v(1), v(2));
        assert!(!w.is_watched(v(1), v(2)));
        assert!(completions(&mut w, &[1, 2]).is_empty());
        assert_eq!(w.watched_pairs(), 0);
    }

    #[test]
    #[should_panic(expected = "unwatch of unwatched")]
    fn unwatch_unknown_pair_panics() {
        let mut w = PairWatcher::new();
        w.unwatch(v(8), v(9));
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let k = pack_pair(v(7), v(3));
        assert_eq!(unpack_pair(k), (v(3), v(7)));
        assert_eq!(k, pack_pair(v(3), v(7)));
    }

    #[test]
    fn space_reporting_grows_and_shrinks() {
        let mut w = PairWatcher::new();
        let empty = w.space_bytes();
        for i in 0..100 {
            w.watch(v(i), v(i + 1000));
        }
        assert!(w.space_bytes() > empty);
    }

    /// The incremental inner-vec accounting must equal a full rescan at
    /// every point of a churny watch/unwatch history.
    #[test]
    fn incremental_accounting_matches_rescan() {
        let rescan =
            |w: &PairWatcher| -> usize { w.incident.values().map(|v| v.capacity() * 8 + 24).sum() };
        let mut w = PairWatcher::new();
        // Shared vertices force inner vecs to grow past their first
        // allocation; refcounted duplicates exercise the no-op paths.
        for i in 0..200u32 {
            w.watch(v(i % 7), v(100 + i));
            w.watch(v(i % 7), v(100 + i));
            assert_eq!(w.incident_vec_bytes, rescan(&w), "after watch {i}");
        }
        for i in (0..200u32).rev() {
            w.unwatch(v(i % 7), v(100 + i));
            w.unwatch(v(i % 7), v(100 + i));
            assert_eq!(w.incident_vec_bytes, rescan(&w), "after unwatch {i}");
        }
        assert_eq!(w.incident_vec_bytes, 0);
        assert!(w.incident.is_empty());
    }
}

//! Streaming cycle-counting algorithms from *The Complexity of Counting
//! Cycles in the Adjacency List Streaming Model* (Kallaugher, McGregor,
//! Price, Vorotnikova; PODS 2019).
//!
//! The paper's two new upper bounds:
//!
//! * [`triangle::TwoPassTriangle`] — Section 3's `(1±ε)` triangle counter,
//!   `Õ(m/T^{2/3})` space, two same-order passes (Theorem 3.7),
//! * [`fourcycle::TwoPassFourCycle`] — Section 4's `O(1)`-approximation 4-cycle
//!   counter, `Õ(m/T^{3/8})` space, two passes (Theorem 4.6),
//!
//! and the baselines they are measured against in Table 1:
//!
//! * [`triangle::OnePassTriangle`] — the `Õ(m/√T)` single-pass estimator in
//!   the style of McGregor–Vorotnikova–Vu \[27\],
//! * [`triangle::ThreePassTriangle`] — the pedagogical three-pass
//!   exact-lightest-edge algorithm of Section 2.1,
//! * [`triangle::TriangleDistinguisher`] — \[27\]'s two-pass
//!   `Õ(m/T^{2/3})` 0-vs-`T` distinguisher,
//! * [`triangle::WedgeSamplerTriangle`] — a one-pass wedge-sampling
//!   estimator (the `Õ(P₂/T)` row, Buriol et al. \[12\] adapted to
//!   adjacency-list order),
//! * [`triangle::ShardedTriangle`] — a shard-mergeable three-pass variant
//!   of Theorem 3.7 whose per-pass state composes across graph shards
//!   ([`adjstream_stream::shard::run_sharded`]), bit-identical to its own
//!   sequential run at any shard count,
//! * [`exact_stream`] — trivial `O(m)`-space exact counters (the "store the
//!   graph" row every sublinear bound is measured against).
//!
//! All algorithms implement
//! [`adjstream_stream::runner::MultiPassAlgorithm`]; drive them with
//! [`adjstream_stream::Runner`]. The [`amplify`] helpers run the
//! `Θ(log 1/δ)` median repetitions from Theorems 3.7/4.6.

#![warn(missing_docs)]

pub mod amplify;
pub mod common;
pub mod dynamic;
pub mod estimate;
pub mod exact_stream;
pub mod fourcycle;
pub mod sampled_subgraph;
pub mod transitivity;
pub mod triangle;

pub use common::{EdgeSampling, PairWatcher};

//! High-level estimation drivers: the `(ε, δ)` interface of Theorems 3.7
//! and 4.6, plus a guess-and-verify driver for unknown `T`.
//!
//! The low-level algorithms take a raw sample budget, exactly like the
//! paper's pseudocode ("choose a sample size m′"). These drivers wrap them
//! the way the theorem statements are used: pick `m′ = Θ(m/(ε²T^{2/3}))`
//! from an accuracy target and a `T` lower bound, run `Θ(log 1/δ)`
//! repetitions, and take the median.

use adjstream_graph::Graph;
use adjstream_stream::estimator::repetitions_for_confidence;
use adjstream_stream::{PassOrders, Runner, StreamOrder};

use crate::amplify::{median_of_runs, MedianReport};
use crate::common::EdgeSampling;
use crate::fourcycle::{FourCycleEstimator, TwoPassFourCycle, TwoPassFourCycleConfig};
use crate::triangle::{TwoPassTriangle, TwoPassTriangleConfig};

/// Accuracy contract for the drivers.
#[derive(Debug, Clone, Copy)]
pub struct Accuracy {
    /// Multiplicative error target `ε` (Theorem 3.7) — ignored by the
    /// 4-cycle driver, whose guarantee is a fixed constant factor.
    pub epsilon: f64,
    /// Failure probability `δ`.
    pub delta: f64,
    /// Master seed.
    pub seed: u64,
    /// Worker threads for the repetitions.
    pub threads: usize,
}

impl Default for Accuracy {
    fn default() -> Self {
        Accuracy {
            epsilon: 0.25,
            delta: 0.1,
            seed: 2019,
            threads: 4,
        }
    }
}

/// Result of a high-level estimation.
#[derive(Debug, Clone)]
pub struct CountEstimate {
    /// The amplified estimate.
    pub count: f64,
    /// Edge-sample budget used per run.
    pub budget: usize,
    /// Repetitions run.
    pub repetitions: usize,
    /// Per-run diagnostics.
    pub report: MedianReport,
}

/// Budget `m′ = c·m/(ε²·T^{2/3})` clamped to `[16, m]`.
pub fn triangle_budget(m: usize, t_lower: u64, epsilon: f64) -> usize {
    let t = t_lower.max(1) as f64;
    let raw = 4.0 * m as f64 / (epsilon * epsilon * t.powf(2.0 / 3.0));
    (raw.ceil() as usize).clamp(16, m.max(16))
}

/// Budget `m′ = c·m/T^{3/8}` clamped to `[16, m]`.
pub fn four_cycle_budget(m: usize, t_lower: u64) -> usize {
    let t = t_lower.max(1) as f64;
    let raw = 8.0 * m as f64 / t.powf(3.0 / 8.0);
    (raw.ceil() as usize).clamp(16, m.max(16))
}

/// Estimate the triangle count with the Theorem 3.7 algorithm, given a
/// lower bound `t_lower ≤ T` (the theorem's implicit promise — without any
/// bound, use [`estimate_triangles_auto`]).
pub fn estimate_triangles(
    g: &Graph,
    order: &StreamOrder,
    t_lower: u64,
    acc: Accuracy,
) -> CountEstimate {
    let budget = triangle_budget(g.edge_count(), t_lower, acc.epsilon);
    let reps = repetitions_for_confidence(acc.delta);
    let report = median_of_runs(reps, acc.seed, acc.threads, |seed| {
        let cfg = TwoPassTriangleConfig {
            seed,
            edge_sampling: EdgeSampling::BottomK { k: budget },
            pair_capacity: budget,
        };
        let (est, _) = Runner::run(
            g,
            TwoPassTriangle::new(cfg),
            &PassOrders::Same(order.clone()),
        );
        est.estimate
    });
    CountEstimate {
        count: report.median,
        budget,
        repetitions: reps,
        report,
    }
}

/// Estimate the triangle count with *no* prior bound on `T`: standard
/// guess-and-verify. Guesses descend geometrically from `m^{3/2}` (the
/// maximum possible `T`); each level runs the two-pass algorithm at the
/// budget its guess implies and accepts once the estimate is consistent
/// with (at least half) the guess. Costs `O(log T)` two-pass rounds in the
/// worst case; the accepted level's budget matches what a known-`T` run
/// would have used. (Running all levels inside one two-pass execution would
/// restore pass-optimality at the price of summing the budgets.)
pub fn estimate_triangles_auto(g: &Graph, order: &StreamOrder, acc: Accuracy) -> CountEstimate {
    let m = g.edge_count();
    let t_max = (m as f64).powf(1.5).max(1.0);
    let mut guess = t_max;
    let mut last = None;
    while guess >= 1.0 {
        let est = estimate_triangles(g, order, guess as u64, acc);
        let accept = est.count >= guess / 2.0;
        let done = accept || guess <= 1.0;
        last = Some(est);
        if done {
            break;
        }
        guess /= 4.0;
    }
    last.expect("at least one level runs")
}

/// Estimate the 4-cycle count with the Theorem 4.6 algorithm (constant-
/// factor approximation), given a lower bound `t_lower ≤ T`.
pub fn estimate_four_cycles(
    g: &Graph,
    orders: [&StreamOrder; 2],
    t_lower: u64,
    acc: Accuracy,
) -> CountEstimate {
    let budget = four_cycle_budget(g.edge_count(), t_lower);
    let reps = repetitions_for_confidence(acc.delta);
    let report = median_of_runs(reps, acc.seed, acc.threads, |seed| {
        let cfg = TwoPassFourCycleConfig {
            seed,
            edge_sample_size: budget,
            estimator: FourCycleEstimator::DistinctCycles,
            max_wedges: None,
        };
        let (est, _) = Runner::run(
            g,
            TwoPassFourCycle::new(cfg),
            &PassOrders::PerPass(vec![orders[0].clone(), orders[1].clone()]),
        );
        est.estimate
    });
    CountEstimate {
        count: report.median,
        budget,
        repetitions: reps,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adjstream_graph::{exact, gen};

    fn acc() -> Accuracy {
        Accuracy {
            epsilon: 0.3,
            delta: 0.2,
            seed: 5,
            threads: 2,
        }
    }

    #[test]
    fn budgets_scale_and_clamp() {
        assert_eq!(triangle_budget(1000, 0, 0.5), 1000); // T unknown-small: full
        let b = triangle_budget(100_000, 1_000_000, 1.0);
        assert!((16..100_000).contains(&b));
        assert!(triangle_budget(10, 1_000_000_000, 1.0) >= 16);
        assert!(four_cycle_budget(50_000, 4096) < 50_000);
    }

    #[test]
    fn estimate_triangles_with_bound() {
        let g = gen::disjoint_cliques(6, 12); // T = 240
        let order = StreamOrder::shuffled(g.vertex_count(), 3);
        let est = estimate_triangles(&g, &order, 240, acc());
        let rel = (est.count - 240.0).abs() / 240.0;
        assert!(rel < 0.3, "estimate {}", est.count);
        assert!(est.repetitions >= 3);
        assert!(est.budget <= g.edge_count());
    }

    #[test]
    fn auto_mode_finds_t_without_a_bound() {
        let g = gen::disjoint_cliques(6, 12); // T = 240, m = 180
        let order = StreamOrder::shuffled(g.vertex_count(), 4);
        let est = estimate_triangles_auto(&g, &order, acc());
        let rel = (est.count - 240.0).abs() / 240.0;
        assert!(rel < 0.35, "auto estimate {}", est.count);
    }

    #[test]
    fn auto_mode_handles_triangle_free() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(6);
        let g = gen::bipartite_gnm(30, 30, 250, &mut rng);
        let order = StreamOrder::shuffled(g.vertex_count(), 1);
        let est = estimate_triangles_auto(&g, &order, acc());
        assert_eq!(est.count, 0.0);
    }

    #[test]
    fn estimate_four_cycles_constant_factor() {
        let g = gen::disjoint_four_cycles(200);
        let truth = exact::count_four_cycles(&g) as f64;
        let o1 = StreamOrder::shuffled(g.vertex_count(), 1);
        let o2 = StreamOrder::shuffled(g.vertex_count(), 2);
        let est = estimate_four_cycles(&g, [&o1, &o2], 200, acc());
        let ratio = est.count / truth;
        assert!((0.2..=5.0).contains(&ratio), "ratio {ratio}");
    }
}

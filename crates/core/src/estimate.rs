//! High-level estimation drivers: the `(ε, δ)` interface of Theorems 3.7
//! and 4.6, plus a guess-and-verify driver for unknown `T`.
//!
//! The low-level algorithms take a raw sample budget, exactly like the
//! paper's pseudocode ("choose a sample size m′"). These drivers wrap them
//! the way the theorem statements are used: pick `m′ = Θ(m/(ε²T^{2/3}))`
//! from an accuracy target and a `T` lower bound, run `Θ(log 1/δ)`
//! repetitions, and take the median.
//!
//! Two execution [`Engine`]s produce the repetition vector:
//!
//! * [`Engine::Sequential`] replays the stream once per repetition
//!   (per level, for the auto driver) — the literal reading of "run R
//!   independent copies".
//! * [`Engine::Batched`] (the default) hands all repetitions — and, for
//!   [`estimate_triangles_auto`], all guess levels — to
//!   [`BatchRunner`], which generates each pass once and fans every item
//!   out to the resident instances. The whole estimate then costs exactly
//!   as many stream passes as a *single* run: 2, restoring the
//!   pass-optimality the theorems assume.
//!
//! The engines are bitwise compatible: for the same [`Accuracy`] they
//! produce identical [`MedianReport::runs`] vectors, because instance
//! seeds are derived identically (`seed + i` per repetition, split-mixed
//! per guess level) and every instance observes the identical item
//! sequence either way.
//!
//! # Fault tolerance
//!
//! The drivers are survivor-aware: a repetition that blows its
//! [`Budget::max_bytes_per_instance`] limit is quarantined rather than
//! aborting the estimate, and the median is taken over the survivors as
//! long as at least [`Accuracy::min_survivors`] of them (default: the
//! majority [`quorum`]) remain. Below quorum, the fallible `try_*` drivers
//! return [`EstimateError::Degraded`]. Batch-wide limits —
//! [`Budget::max_total_bytes`] and [`Budget::deadline`] — abort the whole
//! estimate with [`EstimateError::Run`].
//!
//! Enforcement granularity differs by engine. The batched engine checks
//! budgets at adjacency-list and pass boundaries *during* the shared
//! replay (and isolates per-instance panics via the runner's quarantine);
//! the sequential engine has no mid-run hook, so it applies the
//! per-instance limit to each repetition's post-run peak, checks the
//! deadline between repetitions (a repetition never starts after the
//! deadline, but one in flight runs to completion), and does not isolate
//! panics. Both engines quarantine exactly the same instances for byte
//! budgets because both sample state size at the same list boundaries.

use adjstream_graph::Graph;
use adjstream_stream::batch::{BatchConfig, BatchReport, BatchRunner, Budget};
use adjstream_stream::estimator::repetitions_for_confidence;
use adjstream_stream::hashing::SplitMix64;
use adjstream_stream::obs::{Metrics, MetricsSnapshot};
use adjstream_stream::{PassOrders, RunError, Runner, StreamOrder};

use crate::amplify::{collect_runs, median_of_survivors, quorum, DegradedRun, MedianReport};
use crate::common::EdgeSampling;
use crate::fourcycle::{FourCycleEstimator, TwoPassFourCycle, TwoPassFourCycleConfig};
use crate::triangle::{TwoPassTriangle, TwoPassTriangleConfig};

/// How a driver executes its repetitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// One full stream replay per repetition (per guess level for the auto
    /// driver). Simple, allocation-light, pass-wasteful.
    Sequential,
    /// All repetitions share a single stream replay via [`BatchRunner`];
    /// the auto driver additionally folds every guess level into that same
    /// replay, so any estimate costs exactly one algorithm's pass budget.
    #[default]
    Batched,
}

impl Engine {
    /// Parse the CLI spelling produced by [`Display`](std::fmt::Display).
    pub fn parse(s: &str) -> Option<Engine> {
        Some(match s {
            "sequential" => Engine::Sequential,
            "batched" => Engine::Batched,
            _ => return None,
        })
    }
}

impl std::fmt::Display for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Engine::Sequential => "sequential",
            Engine::Batched => "batched",
        })
    }
}

/// Accuracy contract for the drivers.
#[derive(Debug, Clone, Copy)]
pub struct Accuracy {
    /// Multiplicative error target `ε` (Theorem 3.7) — ignored by the
    /// 4-cycle driver, whose guarantee is a fixed constant factor. Must be
    /// positive and finite.
    pub epsilon: f64,
    /// Failure probability `δ`, in `(0, 1)`.
    pub delta: f64,
    /// Master seed.
    pub seed: u64,
    /// Worker threads for the repetitions; `0` is clamped to `1` (run on
    /// the calling thread).
    pub threads: usize,
    /// Execution engine for the repetitions.
    pub engine: Engine,
    /// Resource limits (space, wall clock); default unlimited. Per-instance
    /// limits quarantine individual repetitions, batch-wide limits abort
    /// the whole estimate (see the module docs on fault tolerance).
    pub budget: Budget,
    /// Minimum repetitions that must survive quarantine for the median to
    /// be reported; `None` uses the majority [`quorum`] of the repetition
    /// count. Values above the repetition count are clamped down to it
    /// ("all must survive"), and `Some(0)` still requires one survivor —
    /// a median of nothing does not exist.
    pub min_survivors: Option<usize>,
    /// Collect structured run metrics into [`CountEstimate::metrics`].
    /// Default off; turning it on never changes the estimate, the peak
    /// byte counts, or the survivor set.
    pub collect_metrics: bool,
}

impl Default for Accuracy {
    fn default() -> Self {
        Accuracy {
            epsilon: 0.25,
            delta: 0.1,
            seed: 2019,
            threads: 4,
            engine: Engine::Batched,
            budget: Budget::default(),
            min_survivors: None,
            collect_metrics: false,
        }
    }
}

impl Accuracy {
    /// Check the contract and normalize the knobs, panicking with a clear
    /// message on values that would otherwise fail silently: a non-finite
    /// or non-positive `ε` makes [`triangle_budget`] degenerate to the full
    /// stream (no space savings, no warning), and `δ` outside `(0, 1)` has
    /// no meaning as a failure probability. `threads = 0` is clamped to 1 —
    /// "no parallelism" is a sensible reading, not an error.
    ///
    /// Every driver calls this on entry, so the panics happen at the API
    /// boundary rather than deep inside a budget formula.
    pub fn validated(self) -> Accuracy {
        assert!(
            self.epsilon.is_finite() && self.epsilon > 0.0,
            "Accuracy.epsilon must be positive and finite, got {}",
            self.epsilon
        );
        assert!(
            self.delta > 0.0 && self.delta < 1.0,
            "Accuracy.delta must be in (0, 1), got {}",
            self.delta
        );
        Accuracy {
            threads: self.threads.max(1),
            ..self
        }
    }
}

/// Why a fallible estimation driver gave up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EstimateError {
    /// Too few repetitions survived quarantine to report a median with the
    /// amplified confidence.
    Degraded(DegradedRun),
    /// The underlying stream execution failed as a whole: invalid stream,
    /// batch-wide space budget, deadline, or checkpoint trouble.
    Run(RunError),
}

impl std::fmt::Display for EstimateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EstimateError::Degraded(e) => e.fmt(f),
            EstimateError::Run(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for EstimateError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EstimateError::Degraded(e) => Some(e),
            EstimateError::Run(e) => Some(e),
        }
    }
}

impl From<DegradedRun> for EstimateError {
    fn from(e: DegradedRun) -> Self {
        EstimateError::Degraded(e)
    }
}

impl From<RunError> for EstimateError {
    fn from(e: RunError) -> Self {
        EstimateError::Run(e)
    }
}

/// Result of a high-level estimation.
#[derive(Debug, Clone)]
pub struct CountEstimate {
    /// The amplified estimate.
    pub count: f64,
    /// Edge-sample budget used per run (for the auto driver: at the
    /// accepted guess level).
    pub budget: usize,
    /// Repetitions run (per guess level, for the auto driver).
    pub repetitions: usize,
    /// Per-run diagnostics (for the auto driver: at the accepted level).
    pub report: MedianReport,
    /// Total stream passes the estimate cost. Sequential: `2 × repetitions
    /// × levels`; batched: exactly the algorithm's own pass count (2),
    /// regardless of repetition or level count.
    pub stream_passes: usize,
    /// The batched engine's execution summary ([`None`] under
    /// [`Engine::Sequential`]).
    pub batch: Option<BatchReport>,
    /// Structured run metrics, collected when
    /// [`Accuracy::collect_metrics`] was set (for the auto driver:
    /// aggregated over every level's repetitions).
    pub metrics: Option<MetricsSnapshot>,
}

/// Budget `m′ = c·m/(ε²·T^{2/3})` clamped to `[16, m]`.
pub fn triangle_budget(m: usize, t_lower: u64, epsilon: f64) -> usize {
    assert!(
        epsilon.is_finite() && epsilon > 0.0,
        "epsilon must be positive and finite, got {epsilon}"
    );
    let t = t_lower.max(1) as f64;
    let raw = 4.0 * m as f64 / (epsilon * epsilon * t.powf(2.0 / 3.0));
    (raw.ceil() as usize).clamp(16, m.max(16))
}

/// Budget `m′ = c·m/T^{3/8}` clamped to `[16, m]`.
pub fn four_cycle_budget(m: usize, t_lower: u64) -> usize {
    let t = t_lower.max(1) as f64;
    let raw = 8.0 * m as f64 / t.powf(3.0 / 8.0);
    (raw.ceil() as usize).clamp(16, m.max(16))
}

/// The Theorem 3.7 space bound as a concrete byte budget: the algorithm
/// stores `m′ = c·m/(ε²·T^{2/3})` sampled items ([`triangle_budget`]) of
/// `⌈log₂ n⌉` bits each, i.e. `Õ(m/T^{2/3})` words. Useful as a principled
/// default for [`Budget::max_bytes_per_instance`] — an instance that grows
/// past a constant multiple of this value is violating the theorem's space
/// promise, not just being unlucky. Note it bounds the *asymptotic state*
/// (the samples), not the implementation's constant-factor overheads
/// (hash-map headers, watch lists), so callers should allow slack — the
/// CLI multiplies it by 16.
pub fn theoretical_space_budget(m: usize, n: usize, t_lower: u64, epsilon: f64) -> usize {
    let words = triangle_budget(m, t_lower, epsilon);
    let bits_per_word = (n.max(2) as f64).log2().ceil().max(1.0) as usize;
    (words * bits_per_word).div_ceil(8)
}

/// Survivor threshold for `reps` repetitions under `acc`: the explicit
/// override clamped to `[1, reps]`, or the majority [`quorum`] by default.
fn required_survivors(acc: &Accuracy, reps: usize) -> usize {
    acc.min_survivors
        .unwrap_or_else(|| quorum(reps))
        .clamp(1, reps)
}

/// Sequential-engine budget enforcement for one repetition's outcome:
/// `None` (quarantined) if the post-run peak broke the per-instance limit,
/// mirroring the batched engine's boundary check bit for bit — both sample
/// state at the same adjacency-list boundaries, so they see the same peak.
fn survives_instance_budget(budget: &Budget, peak_bytes: usize) -> bool {
    budget
        .max_bytes_per_instance
        .is_none_or(|limit| peak_bytes <= limit)
}

/// Sequential-engine batch-wide checks over the per-repetition peaks:
/// sequentially only one instance is ever resident, so the aggregate
/// residency the batched engine sums at a boundary is just that
/// repetition's own state.
fn check_total_budget(budget: &Budget, peaks: &[usize]) -> Result<(), RunError> {
    if let Some(limit) = budget.max_total_bytes {
        if let Some(&used) = peaks.iter().find(|&&p| p > limit) {
            return Err(RunError::SpaceBudgetExceeded { used, limit });
        }
    }
    Ok(())
}

/// Wall-clock guard for the sequential engine: the deadline as an
/// [`Instant`](std::time::Instant) plus the configured limit in
/// milliseconds for the error, same encoding the batched engine uses.
fn seq_deadline(budget: &Budget) -> Option<(std::time::Instant, u64)> {
    budget.deadline.and_then(|d| {
        let limit_ms = u64::try_from(d.as_millis()).unwrap_or(u64::MAX);
        std::time::Instant::now()
            .checked_add(d)
            .map(|t| (t, limit_ms))
    })
}

/// Seed for guess level `level`: a split-mix of the master seed, so the
/// per-repetition seed blocks (`level_seed + i`) of different levels are
/// decorrelated. Levels sharing the master seed verbatim would run
/// *identical* repetitions at every guess, making the levels' accept/reject
/// decisions fully correlated and voiding the union bound over levels.
fn level_seed(master: u64, level: usize) -> u64 {
    SplitMix64::new(master).mix(level as u64)
}

/// Summarize a batched run and package it as a [`CountEstimate`].
fn estimate_from_batch(
    report: MedianReport,
    budget: usize,
    reps: usize,
    passes: usize,
    batch: BatchReport,
) -> CountEstimate {
    CountEstimate {
        count: report.median,
        budget,
        repetitions: reps,
        report,
        stream_passes: passes,
        metrics: batch.metrics.clone(),
        batch: Some(batch),
    }
}

/// Batch configuration for an accuracy contract: thread count plus the
/// resource budget and the metrics flag, defaults elsewhere.
fn batch_config(acc: &Accuracy) -> BatchConfig {
    BatchConfig {
        budget: acc.budget,
        metrics: acc.collect_metrics,
        ..BatchConfig::with_threads(acc.threads)
    }
}

/// Run the sequential engine's repetition loop with budget enforcement:
/// per-repetition quarantine on the instance byte limit, a skip of
/// repetitions that would start after the deadline, and post-hoc batch-wide
/// checks. Returns the survivor-aware run vector.
fn sequential_runs<F>(reps: usize, acc: &Accuracy, run: F) -> Result<Vec<Option<f64>>, RunError>
where
    F: Fn(u64) -> (f64, usize) + Sync,
{
    let deadline = seq_deadline(&acc.budget);
    let outcomes: Vec<(Option<f64>, usize)> = collect_runs(reps, acc.seed, acc.threads, |seed| {
        if let Some((t, _)) = deadline {
            if std::time::Instant::now() >= t {
                return (None, 0);
            }
        }
        let (est, peak) = run(seed);
        let alive = survives_instance_budget(&acc.budget, peak);
        (alive.then_some(est), peak)
    });
    if let Some((t, limit_ms)) = deadline {
        if std::time::Instant::now() >= t {
            return Err(RunError::DeadlineExceeded { limit_ms });
        }
    }
    let peaks: Vec<usize> = outcomes.iter().map(|&(_, p)| p).collect();
    check_total_budget(&acc.budget, &peaks)?;
    Ok(outcomes.into_iter().map(|(r, _)| r).collect())
}

fn triangle_instance(seed: u64, budget: usize) -> TwoPassTriangle {
    TwoPassTriangle::new(TwoPassTriangleConfig {
        seed,
        edge_sampling: EdgeSampling::BottomK { k: budget },
        pair_capacity: budget,
    })
}

/// Estimate the triangle count with the Theorem 3.7 algorithm, given a
/// lower bound `t_lower ≤ T` (the theorem's implicit promise — without any
/// bound, use [`estimate_triangles_auto`]). Fallible: degraded runs and
/// execution failures come back as typed [`EstimateError`]s.
pub fn try_estimate_triangles(
    g: &Graph,
    order: &StreamOrder,
    t_lower: u64,
    acc: Accuracy,
) -> Result<CountEstimate, EstimateError> {
    let acc = acc.validated();
    let budget = triangle_budget(g.edge_count(), t_lower, acc.epsilon);
    let reps = repetitions_for_confidence(acc.delta);
    let required = required_survivors(&acc, reps);
    let orders = PassOrders::Same(order.clone());
    match acc.engine {
        Engine::Sequential => {
            let sink = Metrics::from_flag(acc.collect_metrics);
            let runs = sequential_runs(reps, &acc, |seed| {
                let (est, rep) =
                    Runner::try_run_observed(g, triangle_instance(seed, budget), &orders, &sink)
                        .unwrap_or_else(|e| panic!("stream execution failed: {e}"));
                (est.estimate, rep.peak_state_bytes)
            })?;
            let report = median_of_survivors(&runs, required)?;
            Ok(CountEstimate {
                count: report.median,
                budget,
                repetitions: reps,
                report,
                stream_passes: 2 * reps,
                batch: None,
                metrics: sink.snapshot(),
            })
        }
        Engine::Batched => {
            let instances: Vec<TwoPassTriangle> = (0..reps)
                .map(|i| triangle_instance(acc.seed.wrapping_add(i as u64), budget))
                .collect();
            let out = BatchRunner::try_run(g, instances, &orders, &batch_config(&acc))?;
            let runs: Vec<Option<f64>> = out
                .outputs
                .iter()
                .map(|e| e.as_ref().map(|e| e.estimate))
                .collect();
            let report = median_of_survivors(&runs, required)?;
            let passes = out.report.passes;
            Ok(estimate_from_batch(
                report, budget, reps, passes, out.report,
            ))
        }
    }
}

/// Like [`try_estimate_triangles`], but running under a pass-boundary
/// checkpoint file so an interrupted run can be resumed.
///
/// With `resume == false` the batch executes from scratch, writing
/// `checkpoint` atomically at every pass boundary; with `resume == true`
/// the repetition set, budget state, and algorithm state are restored from
/// `checkpoint` and only the remaining passes run — producing a
/// [`CountEstimate`] bit-for-bit equal to the uninterrupted run (estimates
/// and survivor sets; space metering reflects only the passes actually
/// executed). On success the checkpoint file is removed.
///
/// Checkpointing is a batched-engine feature: the sequential engine has no
/// shared pass boundary to checkpoint at, so [`Engine::Sequential`] returns
/// a typed [`RunError::Checkpoint`] error.
pub fn try_estimate_triangles_checkpointed(
    g: &Graph,
    order: &StreamOrder,
    t_lower: u64,
    acc: Accuracy,
    checkpoint: &std::path::Path,
    resume: bool,
) -> Result<CountEstimate, EstimateError> {
    let acc = acc.validated();
    if acc.engine == Engine::Sequential {
        return Err(EstimateError::Run(RunError::Checkpoint {
            message: "checkpointing requires the batched engine".into(),
        }));
    }
    let budget = triangle_budget(g.edge_count(), t_lower, acc.epsilon);
    let reps = repetitions_for_confidence(acc.delta);
    let required = required_survivors(&acc, reps);
    let orders = PassOrders::Same(order.clone());
    let cfg = batch_config(&acc);
    let out = if resume {
        BatchRunner::resume::<TwoPassTriangle>(g, &orders, &cfg, checkpoint)?
    } else {
        let instances: Vec<TwoPassTriangle> = (0..reps)
            .map(|i| triangle_instance(acc.seed.wrapping_add(i as u64), budget))
            .collect();
        BatchRunner::try_run_checkpointed(g, instances, &orders, &cfg, checkpoint)?
    };
    let runs: Vec<Option<f64>> = out
        .outputs
        .iter()
        .map(|e| e.as_ref().map(|e| e.estimate))
        .collect();
    let reps = runs.len();
    let report = median_of_survivors(&runs, required.min(reps.max(1)))?;
    let passes = out.report.passes;
    let _ = std::fs::remove_file(checkpoint);
    Ok(estimate_from_batch(
        report, budget, reps, passes, out.report,
    ))
}

/// Panicking convenience wrapper around [`try_estimate_triangles`] for
/// callers that treat any estimation failure as a bug.
pub fn estimate_triangles(
    g: &Graph,
    order: &StreamOrder,
    t_lower: u64,
    acc: Accuracy,
) -> CountEstimate {
    match try_estimate_triangles(g, order, t_lower, acc) {
        Ok(est) => est,
        Err(e) => panic!("triangle estimation failed: {e}"),
    }
}

/// Estimate the triangle count with *no* prior bound on `T`: standard
/// guess-and-verify. Guesses descend geometrically from `m^{3/2}` (the
/// maximum possible `T`); each level runs the two-pass algorithm at the
/// budget its guess implies and accepts once the estimate is consistent
/// with (at least half) the guess. Each level draws its repetition seeds
/// from a split-mix of the master seed and the level index, so levels are
/// independent as the union-bound analysis requires.
///
/// Under [`Engine::Sequential`] the levels run one after another, two
/// stream passes per repetition per level — `O(log T)` rounds in the worst
/// case. Under [`Engine::Batched`] every level's every repetition is
/// resident in one [`BatchRunner`] execution, so the whole search costs
/// exactly 2 stream passes (at the price of summing the levels' budgets in
/// memory); the accept scan then walks levels top-down over the already-
/// computed run vectors and keeps the first acceptable level, exactly the
/// level the sequential search would have stopped at.
pub fn try_estimate_triangles_auto(
    g: &Graph,
    order: &StreamOrder,
    acc: Accuracy,
) -> Result<CountEstimate, EstimateError> {
    let acc = acc.validated();
    let m = g.edge_count();
    let t_max = (m as f64).powf(1.5).max(1.0);
    // Guess ladder t_max, t_max/4, … down to (and including) the first
    // guess ≤ 1 — identical to the sequential loop's visit sequence.
    let mut guesses = Vec::new();
    let mut guess = t_max;
    while guess >= 1.0 {
        guesses.push(guess);
        if guess <= 1.0 {
            break;
        }
        guess /= 4.0;
    }
    let reps = repetitions_for_confidence(acc.delta);
    match acc.engine {
        Engine::Sequential => {
            let mut passes_total = 0usize;
            let mut last = None;
            for (level, &guess) in guesses.iter().enumerate() {
                let est = try_estimate_triangles(
                    g,
                    order,
                    guess as u64,
                    Accuracy {
                        seed: level_seed(acc.seed, level),
                        ..acc
                    },
                )?;
                passes_total += est.stream_passes;
                let accept = est.count >= guess / 2.0;
                last = Some(est);
                if accept {
                    break;
                }
            }
            let mut est = last.expect("at least one level runs");
            est.stream_passes = passes_total;
            Ok(est)
        }
        Engine::Batched => {
            // All levels × all repetitions resident at once, level-major so
            // level ℓ's runs are the contiguous block [ℓ·reps, (ℓ+1)·reps).
            let budgets: Vec<usize> = guesses
                .iter()
                .map(|&guess| triangle_budget(m, guess as u64, acc.epsilon))
                .collect();
            let mut instances = Vec::with_capacity(guesses.len() * reps);
            for (level, &budget) in budgets.iter().enumerate() {
                let base = level_seed(acc.seed, level);
                for i in 0..reps {
                    instances.push(triangle_instance(base.wrapping_add(i as u64), budget));
                }
            }
            let out = BatchRunner::try_run(
                g,
                instances,
                &PassOrders::Same(order.clone()),
                &batch_config(&acc),
            )?;
            let required = required_survivors(&acc, reps);
            let passes = out.report.passes;
            let mut accepted = None;
            for (level, (&guess, &budget)) in guesses.iter().zip(&budgets).enumerate() {
                let runs: Vec<Option<f64>> = out.outputs[level * reps..(level + 1) * reps]
                    .iter()
                    .map(|e| e.as_ref().map(|e| e.estimate))
                    .collect();
                // A level whose survivors fall below quorum cannot render a
                // trustworthy accept/reject verdict, so the whole search is
                // degraded — same as the sequential ladder, which would have
                // failed at this level (or an earlier one).
                let report = median_of_survivors(&runs, required)?;
                let accept = report.median >= guess / 2.0;
                let is_last = level + 1 == guesses.len();
                if accept || is_last {
                    accepted = Some((budget, report));
                    break;
                }
            }
            let (budget, report) = accepted.expect("at least one level runs");
            Ok(CountEstimate {
                count: report.median,
                budget,
                repetitions: reps,
                report,
                stream_passes: passes,
                metrics: out.report.metrics.clone(),
                batch: Some(out.report),
            })
        }
    }
}

/// Panicking convenience wrapper around [`try_estimate_triangles_auto`].
pub fn estimate_triangles_auto(g: &Graph, order: &StreamOrder, acc: Accuracy) -> CountEstimate {
    match try_estimate_triangles_auto(g, order, acc) {
        Ok(est) => est,
        Err(e) => panic!("triangle estimation failed: {e}"),
    }
}

/// Estimate the 4-cycle count with the Theorem 4.6 algorithm (constant-
/// factor approximation), given a lower bound `t_lower ≤ T`. Fallible:
/// degraded runs and execution failures come back as typed
/// [`EstimateError`]s.
pub fn try_estimate_four_cycles(
    g: &Graph,
    orders: [&StreamOrder; 2],
    t_lower: u64,
    acc: Accuracy,
) -> Result<CountEstimate, EstimateError> {
    let acc = acc.validated();
    let budget = four_cycle_budget(g.edge_count(), t_lower);
    let reps = repetitions_for_confidence(acc.delta);
    let required = required_survivors(&acc, reps);
    let pass_orders = PassOrders::PerPass(vec![orders[0].clone(), orders[1].clone()]);
    let instance = |seed: u64| {
        TwoPassFourCycle::new(TwoPassFourCycleConfig {
            seed,
            edge_sample_size: budget,
            estimator: FourCycleEstimator::DistinctCycles,
            max_wedges: None,
        })
    };
    match acc.engine {
        Engine::Sequential => {
            let sink = Metrics::from_flag(acc.collect_metrics);
            let runs = sequential_runs(reps, &acc, |seed| {
                let (est, rep) = Runner::try_run_observed(g, instance(seed), &pass_orders, &sink)
                    .unwrap_or_else(|e| panic!("stream execution failed: {e}"));
                (est.estimate, rep.peak_state_bytes)
            })?;
            let report = median_of_survivors(&runs, required)?;
            Ok(CountEstimate {
                count: report.median,
                budget,
                repetitions: reps,
                report,
                stream_passes: 2 * reps,
                batch: None,
                metrics: sink.snapshot(),
            })
        }
        Engine::Batched => {
            let instances: Vec<TwoPassFourCycle> = (0..reps)
                .map(|i| instance(acc.seed.wrapping_add(i as u64)))
                .collect();
            let out = BatchRunner::try_run(g, instances, &pass_orders, &batch_config(&acc))?;
            let runs: Vec<Option<f64>> = out
                .outputs
                .iter()
                .map(|e| e.as_ref().map(|e| e.estimate))
                .collect();
            let report = median_of_survivors(&runs, required)?;
            let passes = out.report.passes;
            Ok(estimate_from_batch(
                report, budget, reps, passes, out.report,
            ))
        }
    }
}

/// Panicking convenience wrapper around [`try_estimate_four_cycles`].
pub fn estimate_four_cycles(
    g: &Graph,
    orders: [&StreamOrder; 2],
    t_lower: u64,
    acc: Accuracy,
) -> CountEstimate {
    match try_estimate_four_cycles(g, orders, t_lower, acc) {
        Ok(est) => est,
        Err(e) => panic!("4-cycle estimation failed: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adjstream_graph::{exact, gen};

    fn acc() -> Accuracy {
        Accuracy {
            epsilon: 0.3,
            delta: 0.2,
            seed: 5,
            threads: 2,
            engine: Engine::Batched,
            ..Accuracy::default()
        }
    }

    fn seq() -> Accuracy {
        Accuracy {
            engine: Engine::Sequential,
            ..acc()
        }
    }

    #[test]
    fn budgets_scale_and_clamp() {
        assert_eq!(triangle_budget(1000, 0, 0.5), 1000); // T unknown-small: full
        let b = triangle_budget(100_000, 1_000_000, 1.0);
        assert!((16..100_000).contains(&b));
        assert!(triangle_budget(10, 1_000_000_000, 1.0) >= 16);
        assert!(four_cycle_budget(50_000, 4096) < 50_000);
    }

    #[test]
    #[should_panic(expected = "epsilon must be positive")]
    fn triangle_budget_rejects_zero_epsilon() {
        triangle_budget(1000, 100, 0.0);
    }

    #[test]
    fn estimate_triangles_with_bound() {
        let g = gen::disjoint_cliques(6, 12); // T = 240
        let order = StreamOrder::shuffled(g.vertex_count(), 3);
        for a in [acc(), seq()] {
            let est = estimate_triangles(&g, &order, 240, a);
            let rel = (est.count - 240.0).abs() / 240.0;
            assert!(rel < 0.3, "estimate {} ({})", est.count, a.engine);
            assert!(est.repetitions >= 3);
            assert!(est.budget <= g.edge_count());
        }
    }

    #[test]
    fn engines_agree_bit_for_bit() {
        let g = gen::disjoint_cliques(5, 10);
        let order = StreamOrder::shuffled(g.vertex_count(), 7);
        for threads in [1, 3] {
            let a = Accuracy { threads, ..seq() };
            let b = Accuracy {
                threads,
                engine: Engine::Batched,
                ..a
            };
            let s = estimate_triangles(&g, &order, 100, a);
            let t = estimate_triangles(&g, &order, 100, b);
            assert_eq!(s.report.runs, t.report.runs, "threads = {threads}");
            assert_eq!(s.count, t.count);
            assert!(t.stream_passes < s.stream_passes);
        }
    }

    #[test]
    fn checkpointed_run_matches_plain_batched_run() {
        let g = gen::disjoint_cliques(5, 10);
        let order = StreamOrder::shuffled(g.vertex_count(), 7);
        let path = std::env::temp_dir().join(format!(
            "adjstream-estimate-ckpt-{}.bin",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let plain = try_estimate_triangles(&g, &order, 100, acc()).unwrap();
        let ckpt =
            try_estimate_triangles_checkpointed(&g, &order, 100, acc(), &path, false).unwrap();
        assert_eq!(plain.report.runs, ckpt.report.runs);
        assert_eq!(plain.count, ckpt.count);
        assert!(
            !path.exists(),
            "checkpoint file is removed after a successful run"
        );
    }

    #[test]
    fn checkpointing_rejects_the_sequential_engine() {
        let g = gen::disjoint_cliques(3, 6);
        let order = StreamOrder::natural(g.vertex_count());
        let path = std::env::temp_dir().join("adjstream-never-written.bin");
        let err =
            try_estimate_triangles_checkpointed(&g, &order, 10, seq(), &path, false).unwrap_err();
        assert!(matches!(
            err,
            EstimateError::Run(RunError::Checkpoint { .. })
        ));
        assert!(err.to_string().contains("batched engine"));
    }

    #[test]
    fn four_cycle_engines_agree_bit_for_bit() {
        let g = gen::disjoint_four_cycles(60);
        let o1 = StreamOrder::shuffled(g.vertex_count(), 1);
        let o2 = StreamOrder::shuffled(g.vertex_count(), 2);
        let s = estimate_four_cycles(&g, [&o1, &o2], 60, seq());
        let t = estimate_four_cycles(&g, [&o1, &o2], 60, acc());
        assert_eq!(s.report.runs, t.report.runs);
        // Two distinct per-pass orders: the batch generated the stream
        // twice but still took only 2 passes total.
        let batch = t.batch.expect("batched engine reports");
        assert_eq!(batch.stream_generations, 2);
        assert_eq!(t.stream_passes, 2);
    }

    #[test]
    fn auto_mode_finds_t_without_a_bound() {
        let g = gen::disjoint_cliques(6, 12); // T = 240, m = 180
        let order = StreamOrder::shuffled(g.vertex_count(), 4);
        for a in [acc(), seq()] {
            let est = estimate_triangles_auto(&g, &order, a);
            let rel = (est.count - 240.0).abs() / 240.0;
            assert!(rel < 0.35, "auto estimate {} ({})", est.count, a.engine);
        }
    }

    #[test]
    fn auto_mode_handles_triangle_free() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(6);
        let g = gen::bipartite_gnm(30, 30, 250, &mut rng);
        let order = StreamOrder::shuffled(g.vertex_count(), 1);
        for a in [acc(), seq()] {
            let est = estimate_triangles_auto(&g, &order, a);
            assert_eq!(est.count, 0.0, "{}", a.engine);
        }
    }

    #[test]
    fn auto_engines_accept_the_same_level() {
        let g = gen::disjoint_cliques(4, 9);
        let order = StreamOrder::shuffled(g.vertex_count(), 8);
        let s = estimate_triangles_auto(&g, &order, seq());
        let t = estimate_triangles_auto(&g, &order, acc());
        assert_eq!(s.budget, t.budget, "same accepted level");
        assert_eq!(s.report.runs, t.report.runs);
        assert_eq!(s.count, t.count);
    }

    #[test]
    fn auto_batched_takes_exactly_two_passes() {
        // The acceptance criterion of the batched rewrite: pass count is
        // the algorithm's own (2), independent of how many guess levels the
        // ladder has.
        let g = gen::disjoint_cliques(6, 12);
        let order = StreamOrder::shuffled(g.vertex_count(), 4);
        let est = estimate_triangles_auto(&g, &order, acc());
        assert_eq!(est.stream_passes, 2);
        let batch = est.batch.expect("batched engine reports");
        assert_eq!(batch.passes, 2);
        assert_eq!(batch.stream_generations, 1, "same order ⇒ one generation");
        // Many levels really were resident: more instances than one level's
        // repetitions.
        assert!(batch.instances > est.repetitions);
        // …while the sequential engine pays per level.
        let s = estimate_triangles_auto(&g, &order, seq());
        assert!(s.stream_passes > 2);
    }

    #[test]
    fn auto_levels_use_distinct_seeds() {
        // Regression for the correlated-seed bug: two levels of the ladder
        // must not run identical repetitions. Compare the run vectors of
        // the same graph estimated at two different explicit levels using
        // the seeds the ladder would derive.
        let g = gen::disjoint_cliques(6, 12);
        let order = StreamOrder::shuffled(g.vertex_count(), 4);
        let at_level = |level: usize| {
            let a = Accuracy {
                seed: super::level_seed(5, level),
                ..acc()
            };
            // Same guess ⇒ same budget: any run-vector difference is the
            // seeds, not the sample size.
            estimate_triangles(&g, &order, 240, a).report.runs
        };
        assert_ne!(super::level_seed(5, 0), super::level_seed(5, 1));
        assert_ne!(at_level(0), at_level(1), "levels must be decorrelated");
    }

    #[test]
    fn estimate_four_cycles_constant_factor() {
        let g = gen::disjoint_four_cycles(200);
        let truth = exact::count_four_cycles(&g) as f64;
        let o1 = StreamOrder::shuffled(g.vertex_count(), 1);
        let o2 = StreamOrder::shuffled(g.vertex_count(), 2);
        for a in [acc(), seq()] {
            let est = estimate_four_cycles(&g, [&o1, &o2], 200, a);
            let ratio = est.count / truth;
            assert!((0.2..=5.0).contains(&ratio), "ratio {ratio} ({})", a.engine);
        }
    }

    #[test]
    fn accuracy_validation_boundaries() {
        // threads = 0 clamps to 1 rather than accidentally selecting the
        // sequential fallback path.
        let v = Accuracy {
            threads: 0,
            ..acc()
        }
        .validated();
        assert_eq!(v.threads, 1);
        // In-range values pass through untouched.
        let v = acc().validated();
        assert_eq!(v.threads, 2);
        assert_eq!(v.epsilon, 0.3);
    }

    #[test]
    #[should_panic(expected = "epsilon must be positive and finite")]
    fn accuracy_rejects_nonpositive_epsilon() {
        let _ = Accuracy {
            epsilon: 0.0,
            ..acc()
        }
        .validated();
    }

    #[test]
    #[should_panic(expected = "epsilon must be positive and finite")]
    fn accuracy_rejects_nan_epsilon() {
        let _ = Accuracy {
            epsilon: f64::NAN,
            ..acc()
        }
        .validated();
    }

    #[test]
    #[should_panic(expected = "delta must be in (0, 1)")]
    fn accuracy_rejects_delta_of_one() {
        let _ = Accuracy {
            delta: 1.0,
            ..acc()
        }
        .validated();
    }

    #[test]
    #[should_panic(expected = "delta must be in (0, 1)")]
    fn accuracy_rejects_zero_delta() {
        let _ = Accuracy {
            delta: 0.0,
            ..acc()
        }
        .validated();
    }

    #[test]
    fn engine_parse_round_trips() {
        for e in [Engine::Sequential, Engine::Batched] {
            assert_eq!(Engine::parse(&e.to_string()), Some(e));
        }
        assert_eq!(Engine::parse("warp"), None);
        assert_eq!(Engine::default(), Engine::Batched);
    }

    #[test]
    fn theoretical_space_budget_tracks_the_theorem() {
        // More edges ⇒ more space; a better T bound ⇒ less space.
        let base = theoretical_space_budget(10_000, 1_000, 1_000, 0.5);
        assert!(base > 0);
        assert!(theoretical_space_budget(40_000, 1_000, 1_000, 0.5) > base);
        assert!(theoretical_space_budget(10_000, 1_000, 1_000_000, 0.5) < base);
        // Degenerate inputs stay sane.
        assert!(theoretical_space_budget(0, 0, 0, 1.0) > 0);
    }

    #[test]
    fn tiny_instance_budget_degrades_both_engines_identically() {
        // 1 byte per instance quarantines every repetition in both engines
        // (each stores at least a sampler), so both fail the quorum with the
        // same typed error.
        let g = gen::disjoint_cliques(5, 10);
        let order = StreamOrder::shuffled(g.vertex_count(), 7);
        let strangle = |engine| Accuracy {
            engine,
            budget: Budget {
                max_bytes_per_instance: Some(1),
                ..Budget::default()
            },
            ..acc()
        };
        let s = try_estimate_triangles(&g, &order, 100, strangle(Engine::Sequential));
        let b = try_estimate_triangles(&g, &order, 100, strangle(Engine::Batched));
        let reps = repetitions_for_confidence(acc().delta);
        let want = EstimateError::Degraded(DegradedRun {
            survivors: 0,
            required: quorum(reps),
            repetitions: reps,
        });
        assert_eq!(s.unwrap_err(), want);
        assert_eq!(b.unwrap_err(), want);
    }

    #[test]
    fn generous_budget_changes_nothing() {
        let g = gen::disjoint_cliques(5, 10);
        let order = StreamOrder::shuffled(g.vertex_count(), 7);
        let roomy = Accuracy {
            budget: Budget {
                max_bytes_per_instance: Some(1 << 30),
                max_total_bytes: Some(1 << 34),
                deadline: Some(std::time::Duration::from_secs(3600)),
            },
            ..acc()
        };
        let plain = estimate_triangles(&g, &order, 100, acc());
        let budgeted = try_estimate_triangles(&g, &order, 100, roomy).unwrap();
        assert_eq!(plain.report.runs, budgeted.report.runs);
        assert_eq!(budgeted.report.dead_runs, 0);
    }

    #[test]
    fn zero_deadline_is_a_typed_error_in_both_engines() {
        let g = gen::disjoint_cliques(4, 8);
        let order = StreamOrder::shuffled(g.vertex_count(), 2);
        for engine in [Engine::Sequential, Engine::Batched] {
            let a = Accuracy {
                engine,
                budget: Budget {
                    deadline: Some(std::time::Duration::ZERO),
                    ..Budget::default()
                },
                ..acc()
            };
            let err = try_estimate_triangles(&g, &order, 100, a).unwrap_err();
            assert_eq!(
                err,
                EstimateError::Run(RunError::DeadlineExceeded { limit_ms: 0 }),
                "{engine}"
            );
        }
    }

    #[test]
    fn aggregate_budget_aborts_both_engines() {
        let g = gen::disjoint_cliques(4, 8);
        let order = StreamOrder::shuffled(g.vertex_count(), 2);
        for engine in [Engine::Sequential, Engine::Batched] {
            let a = Accuracy {
                engine,
                budget: Budget {
                    max_total_bytes: Some(1),
                    ..Budget::default()
                },
                ..acc()
            };
            let err = try_estimate_triangles(&g, &order, 100, a).unwrap_err();
            assert!(
                matches!(
                    err,
                    EstimateError::Run(RunError::SpaceBudgetExceeded { limit: 1, .. })
                ),
                "{engine}: {err:?}"
            );
        }
    }

    #[test]
    fn min_survivors_above_reps_is_clamped_to_all() {
        let g = gen::disjoint_cliques(4, 8);
        let order = StreamOrder::shuffled(g.vertex_count(), 2);
        let a = Accuracy {
            min_survivors: Some(usize::MAX),
            ..acc()
        };
        // Healthy run: all repetitions survive, so even "all must survive"
        // succeeds.
        let est = try_estimate_triangles(&g, &order, 100, a).unwrap();
        assert_eq!(est.report.dead_runs, 0);
    }

    #[test]
    fn estimate_error_display_and_source() {
        let degraded = EstimateError::Degraded(DegradedRun {
            survivors: 2,
            required: 9,
            repetitions: 15,
        });
        assert!(degraded.to_string().contains("2 of 15"));
        let run = EstimateError::from(RunError::DeadlineExceeded { limit_ms: 7 });
        assert!(run.to_string().contains('7'));
        use std::error::Error;
        assert!(degraded.source().is_some());
        assert!(run.source().is_some());
    }
}

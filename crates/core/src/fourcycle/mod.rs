//! 4-cycle counting (Section 4).

mod two_pass;

pub use two_pass::{
    FourCycleEstimate, FourCycleEstimator, TwoPassFourCycle, TwoPassFourCycleConfig,
};

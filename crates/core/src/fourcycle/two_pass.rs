//! The Section 4 two-pass `O(1)`-approximation 4-cycle counter
//! (Theorem 4.6), `Õ(m/T^{3/8})` space.
//!
//! Pass 1 keeps a uniform edge sample `S` of size `m′`; between passes the
//! wedge set `Q` (pairs of adjacent sampled edges) is formed; pass 2 counts
//! the 4-cycles of `G` containing a wedge of `Q` by flagging each wedge's
//! leaf pair in every adjacency list (a list owner `z ≠ center` adjacent to
//! both leaves closes the cycle). The analysis (Lemmas 4.2–4.5) shows a
//! constant fraction of cycles contain a *good* wedge — not overused, no
//! heavy edge — so `k² · |{cycles found}|` is an `O(1)`-factor
//! approximation. Unlike the triangle algorithm, the good wedge cannot be
//! identified during the stream, which is exactly why the guarantee is
//! `O(1)` rather than `1 ± ε`.
//!
//! Two estimator variants are exposed (ablation A4):
//!
//! * [`FourCycleEstimator::DistinctCycles`] — the paper's: count distinct
//!   4-cycles with at least one wedge in `Q`, scale by `k²`;
//! * [`FourCycleEstimator::WedgeMultiplicity`] — `k²/4 · Σ_{w∈Q} T_w`,
//!   which is unbiased but suffers the heavy-wedge variance the
//!   good-wedge machinery exists to avoid.

use std::io::{self, Read, Write};

use adjstream_graph::ids::FourCycleKey;
use adjstream_graph::VertexId;
use adjstream_stream::checkpoint::{
    corrupt, read_u64, read_u8, read_usize, write_u64, write_u8, write_usize, Checkpoint,
};
use adjstream_stream::hashing::{FastMap, FastSet};
use adjstream_stream::item::StreamItem;
use adjstream_stream::meter::{hashmap_bytes, hashset_bytes, vec_bytes, SpaceUsage};
use adjstream_stream::obs::ObsCounters;
use adjstream_stream::runner::MultiPassAlgorithm;
use adjstream_stream::sampling::{BottomKEvent, BottomKSampler};

use crate::common::{pack_pair, unpack_pair, PairWatcher};

/// Which estimate to return. See module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FourCycleEstimator {
    /// Count distinct 4-cycles containing a sampled wedge (the paper's
    /// `k²(f_G + f_B)`).
    DistinctCycles,
    /// `k²/4 · Σ_{w∈Q} T_w` (wedge-incidence multiplicity).
    WedgeMultiplicity,
}

/// Configuration for [`TwoPassFourCycle`].
#[derive(Debug, Clone, Copy)]
pub struct TwoPassFourCycleConfig {
    /// Seed for sampling.
    pub seed: u64,
    /// Edge sample size `m′` (bottom-k, the paper's fixed-size sample; for
    /// the Theorem 4.6 bound take `Θ(m/T^{3/8})`).
    pub edge_sample_size: usize,
    /// Estimator variant.
    pub estimator: FourCycleEstimator,
    /// Optional cap on the wedge set `Q`. The paper stores *all* wedges
    /// over `S`, which on skewed samples can exceed `m′` (a caveat noted in
    /// DESIGN.md); with a cap, a uniform subset of the wedges is kept and
    /// the estimate is scaled by `W_S/|Q|`. `None` reproduces the paper
    /// exactly.
    pub max_wedges: Option<usize>,
}

impl TwoPassFourCycleConfig {
    /// The paper's configuration (no wedge cap).
    pub fn paper(seed: u64, edge_sample_size: usize) -> Self {
        TwoPassFourCycleConfig {
            seed,
            edge_sample_size,
            estimator: FourCycleEstimator::DistinctCycles,
            max_wedges: None,
        }
    }
}

/// Result of a [`TwoPassFourCycle`] run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FourCycleEstimate {
    /// The 4-cycle count estimate.
    pub estimate: f64,
    /// Final edge sample size `|S|`.
    pub edges_sampled: usize,
    /// Wedges formed from `S` (the set `Q`).
    pub wedges: usize,
    /// Distinct cycles found (DistinctCycles) or total wedge incidences
    /// (WedgeMultiplicity).
    pub cycles_found: u64,
    /// Edge count `m`.
    pub m: u64,
}

/// A sampled wedge `a – center – b`.
#[derive(Debug, Clone, Copy)]
struct Wedge {
    a: VertexId,
    b: VertexId,
    center: VertexId,
    count: u64,
}

/// Two-pass 4-cycle counter. See module docs.
pub struct TwoPassFourCycle {
    cfg: TwoPassFourCycleConfig,
    pass: usize,
    items: u64,
    /// Wedges over `S` before any capping.
    wedges_total: usize,
    sampler: BottomKSampler,
    wedges: Vec<Wedge>,
    /// Packed leaf pair → wedge indices.
    leaf_index: FastMap<u64, Vec<u32>>,
    /// Bytes held by `leaf_index`'s inner vectors, maintained incrementally
    /// so `space_bytes` (sampled at every list boundary) stays O(1).
    leaf_vec_bytes: usize,
    watcher: PairWatcher,
    /// Distinct cycles found (DistinctCycles mode).
    found: FastSet<FourCycleKey>,
    buf: Vec<u64>,
    /// Sampler lifecycle counters (deterministic; see
    /// [`MultiPassAlgorithm::obs_counters`]).
    counters: ObsCounters,
}

impl TwoPassFourCycle {
    /// Build from configuration.
    pub fn new(cfg: TwoPassFourCycleConfig) -> Self {
        TwoPassFourCycle {
            cfg,
            pass: 0,
            items: 0,
            wedges_total: 0,
            sampler: BottomKSampler::new(cfg.seed, cfg.edge_sample_size),
            wedges: Vec::new(),
            leaf_index: FastMap::default(),
            leaf_vec_bytes: 0,
            watcher: PairWatcher::new(),
            found: FastSet::default(),
            buf: Vec::new(),
            counters: ObsCounters::default(),
        }
    }

    /// Pass-1 edge sampling with lifecycle accounting.
    fn offer_edge(&mut self, key: u64) {
        match self.sampler.offer(key) {
            BottomKEvent::Inserted => self.counters.admissions += 1,
            BottomKEvent::InsertedEvicting(_) => {
                self.counters.admissions += 1;
                self.counters.evictions += 1;
            }
            BottomKEvent::AlreadyPresent => {}
            BottomKEvent::Rejected => self.counters.rejections += 1,
        }
    }

    /// Form the wedge set `Q` from the frozen edge sample, optionally
    /// keeping only a uniform subset of `max_wedges` of them.
    fn build_wedges(&mut self) {
        // Sort the frozen sample so the wedge enumeration order — which the
        // capping reservoir below samples from — is a pure function of S,
        // not of the sampler's internal map order.
        let mut keys: Vec<u64> = self.sampler.keys().collect();
        keys.sort_unstable();
        let mut adj: FastMap<u32, Vec<VertexId>> = FastMap::default();
        for &key in &keys {
            let (u, v) = unpack_pair(key);
            adj.entry(u.0).or_default().push(v);
            adj.entry(v.0).or_default().push(u);
        }
        let mut centers: Vec<u32> = adj.keys().copied().collect();
        centers.sort_unstable();
        let mut all: Vec<Wedge> = Vec::new();
        for &c in &centers {
            let nbs = &adj[&c];
            for i in 0..nbs.len() {
                for j in (i + 1)..nbs.len() {
                    all.push(Wedge {
                        a: nbs[i],
                        b: nbs[j],
                        center: VertexId(c),
                        count: 0,
                    });
                }
            }
        }
        self.wedges_total = all.len();
        if let Some(cap) = self.cfg.max_wedges {
            if all.len() > cap {
                // Uniform cap-subset via seeded reservoir over the list.
                let mut res =
                    adjstream_stream::sampling::Reservoir::new(self.cfg.seed ^ 0x0C4_CA9, cap);
                for w in all {
                    res.offer(w);
                }
                all = res.into_items();
            }
        }
        self.counters.pairs_stored += all.len() as u64;
        self.counters.pairs_rejected += (self.wedges_total - all.len()) as u64;
        for w in all {
            let idx = self.wedges.len() as u32;
            let (a, b) = (w.a, w.b);
            self.wedges.push(w);
            self.leaf_vec_bytes +=
                crate::common::push_map_vec(&mut self.leaf_index, pack_pair(a, b), idx, 4);
            self.watcher.watch(a, b);
        }
    }
}

impl SpaceUsage for TwoPassFourCycle {
    fn space_bytes(&self) -> usize {
        self.sampler.space_bytes()
            + vec_bytes(&self.wedges)
            + hashmap_bytes(&self.leaf_index)
            + self.leaf_vec_bytes
            + self.watcher.space_bytes()
            + hashset_bytes(&self.found)
    }
}

impl MultiPassAlgorithm for TwoPassFourCycle {
    type Output = FourCycleEstimate;

    fn passes(&self) -> usize {
        2
    }

    /// Pass 2 may use a different order — Section 4's algorithm does not
    /// need replay.
    fn requires_same_order(&self) -> bool {
        false
    }

    fn begin_pass(&mut self, pass: usize) {
        self.pass = pass;
        if pass == 1 {
            self.build_wedges();
        }
    }

    fn begin_list(&mut self, _owner: VertexId) {
        if self.pass == 1 {
            self.watcher.begin_list();
        }
    }

    fn item(&mut self, src: VertexId, dst: VertexId) {
        match self.pass {
            0 => {
                self.items += 1;
                self.offer_edge(pack_pair(src, dst));
            }
            _ => {
                let mut buf = std::mem::take(&mut self.buf);
                buf.clear();
                self.watcher.on_item(dst, |k| buf.push(k));
                for &key in &buf {
                    let indices = self.leaf_index.get(&key).expect("watched pair indexed");
                    for &wi in indices {
                        let w = &mut self.wedges[wi as usize];
                        // `src` (the list owner) closes the cycle
                        // a–center–b–src unless it *is* the center.
                        if w.center == src {
                            continue;
                        }
                        w.count += 1;
                        if self.cfg.estimator == FourCycleEstimator::DistinctCycles {
                            self.found
                                .insert(FourCycleKey::from_diagonals(w.center, src, w.a, w.b));
                        }
                    }
                }
                self.buf = buf;
            }
        }
    }

    /// Native slice path: pass 1 bulk-offers the run to the sampler, pass 2
    /// swaps the completion scratch buffer once per run instead of per item.
    fn feed_slice(&mut self, items: &[StreamItem]) {
        match self.pass {
            0 => {
                self.items += items.len() as u64;
                for it in items {
                    self.offer_edge(pack_pair(it.src, it.dst));
                }
            }
            _ => {
                let mut buf = std::mem::take(&mut self.buf);
                for it in items {
                    buf.clear();
                    self.watcher.on_item(it.dst, |k| buf.push(k));
                    for &key in &buf {
                        let indices = self.leaf_index.get(&key).expect("watched pair indexed");
                        for &wi in indices {
                            let w = &mut self.wedges[wi as usize];
                            if w.center == it.src {
                                continue;
                            }
                            w.count += 1;
                            if self.cfg.estimator == FourCycleEstimator::DistinctCycles {
                                self.found.insert(FourCycleKey::from_diagonals(
                                    w.center, it.src, w.a, w.b,
                                ));
                            }
                        }
                    }
                }
                self.buf = buf;
            }
        }
    }

    fn obs_counters(&self) -> Option<ObsCounters> {
        let mut c = self.counters;
        c.merge(&self.watcher.obs_counters());
        // Saturation snapshot, taken at publication time: each bounded
        // structure currently frozen at capacity counts once.
        if self.sampler.capacity() > 0 && self.sampler.len() == self.sampler.capacity() {
            c.freezes += 1;
        }
        if let Some(cap) = self.cfg.max_wedges {
            if self.wedges_total > cap {
                c.freezes += 1;
            }
        }
        Some(c)
    }

    fn finish(self) -> FourCycleEstimate {
        let m = self.items / 2;
        let s = self.sampler.len();
        let k = if s == 0 {
            0.0
        } else {
            (m as f64 / s as f64).max(1.0)
        };
        // Wedge-cap correction: with only |Q| of the W_S wedges kept, each
        // cycle's detection probability shrinks by |Q|/W_S.
        let cap_scale = if self.wedges.is_empty() || self.wedges_total == 0 {
            1.0
        } else {
            self.wedges_total as f64 / self.wedges.len() as f64
        };
        let (cycles_found, estimate) = match self.cfg.estimator {
            FourCycleEstimator::DistinctCycles => {
                let c = self.found.len() as u64;
                (c, k * k * c as f64 * cap_scale)
            }
            FourCycleEstimator::WedgeMultiplicity => {
                let total: u64 = self.wedges.iter().map(|w| w.count).sum();
                (total, k * k * total as f64 * cap_scale / 4.0)
            }
        };
        FourCycleEstimate {
            estimate,
            edges_sampled: s,
            wedges: self.wedges.len(),
            cycles_found,
            m,
        }
    }
}

/// Pass-boundary serialization for checkpoint/resume. Only the pass-1
/// survivors need saving: the config, the item count, and the final edge
/// sample `S` (its bottom-k keys). Everything else — the wedge set, the
/// leaf index, the pair watcher, the found-cycle set — is rebuilt from `S`
/// by `build_wedges` when the resumed run calls `begin_pass(1)`.
impl Checkpoint for TwoPassFourCycle {
    fn save(&self, w: &mut dyn Write) -> io::Result<()> {
        write_u64(w, self.cfg.seed)?;
        write_usize(w, self.cfg.edge_sample_size)?;
        write_u8(
            w,
            match self.cfg.estimator {
                FourCycleEstimator::DistinctCycles => 0,
                FourCycleEstimator::WedgeMultiplicity => 1,
            },
        )?;
        match self.cfg.max_wedges {
            None => write_u8(w, 0)?,
            Some(cap) => {
                write_u8(w, 1)?;
                write_usize(w, cap)?;
            }
        }
        write_usize(w, self.pass)?;
        write_u64(w, self.items)?;
        write_usize(w, self.sampler.len())?;
        for key in self.sampler.keys() {
            write_u64(w, key)?;
        }
        self.counters.save(w)
    }

    fn restore(r: &mut dyn Read) -> io::Result<Self> {
        let seed = read_u64(r)?;
        let edge_sample_size = read_usize(r)?;
        let estimator = match read_u8(r)? {
            0 => FourCycleEstimator::DistinctCycles,
            1 => FourCycleEstimator::WedgeMultiplicity,
            other => return Err(corrupt(format!("unknown estimator tag {other}"))),
        };
        let max_wedges = match read_u8(r)? {
            0 => None,
            1 => Some(read_usize(r)?),
            other => return Err(corrupt(format!("unknown wedge-cap tag {other}"))),
        };
        let mut algo = TwoPassFourCycle::new(TwoPassFourCycleConfig {
            seed,
            edge_sample_size,
            estimator,
            max_wedges,
        });
        algo.pass = read_usize(r)?;
        algo.items = read_u64(r)?;
        let n = read_usize(r)?;
        if n > edge_sample_size {
            return Err(corrupt("more sampled edges than the bottom-k capacity"));
        }
        for _ in 0..n {
            algo.sampler.offer(read_u64(r)?);
        }
        if algo.sampler.len() != n {
            return Err(corrupt("duplicate keys in the saved edge sample"));
        }
        algo.counters = ObsCounters::restore(r)?;
        Ok(algo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adjstream_graph::{exact, gen};
    use adjstream_stream::{PassOrders, Runner, StreamOrder};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run_once(
        g: &adjstream_graph::Graph,
        cfg: TwoPassFourCycleConfig,
        o1: StreamOrder,
        o2: StreamOrder,
    ) -> FourCycleEstimate {
        let (est, _) = Runner::run(
            g,
            TwoPassFourCycle::new(cfg),
            &PassOrders::PerPass(vec![o1, o2]),
        );
        est
    }

    fn full_cfg(
        g: &adjstream_graph::Graph,
        estimator: FourCycleEstimator,
    ) -> TwoPassFourCycleConfig {
        TwoPassFourCycleConfig {
            seed: 1,
            edge_sample_size: g.edge_count(),
            estimator,
            max_wedges: None,
        }
    }

    /// With S = E the distinct-cycle estimator finds every 4-cycle exactly
    /// once, under *different* pass orders (Section 4 needs no replay).
    #[test]
    fn exhaustive_sampling_is_exact() {
        let mut rng = StdRng::seed_from_u64(7);
        for trial in 0..6 {
            let g = gen::gnm(25, 110, &mut rng);
            let n = g.vertex_count();
            let truth = exact::count_four_cycles(&g);
            let est = run_once(
                &g,
                full_cfg(&g, FourCycleEstimator::DistinctCycles),
                StreamOrder::shuffled(n, trial),
                StreamOrder::shuffled(n, trial + 1000),
            );
            assert_eq!(est.cycles_found, truth, "trial {trial}");
            assert_eq!(est.estimate, truth as f64);
        }
    }

    /// With S = E the multiplicity estimator counts each cycle once per
    /// wedge (4×), so Σ T_w = 4T exactly.
    #[test]
    fn exhaustive_multiplicity_counts_four_per_cycle() {
        let mut rng = StdRng::seed_from_u64(8);
        let g = gen::gnm(22, 90, &mut rng);
        let n = g.vertex_count();
        let truth = exact::count_four_cycles(&g);
        let est = run_once(
            &g,
            full_cfg(&g, FourCycleEstimator::WedgeMultiplicity),
            StreamOrder::natural(n),
            StreamOrder::reversed(n),
        );
        assert_eq!(est.cycles_found, 4 * truth);
        assert_eq!(est.estimate, truth as f64);
    }

    #[test]
    fn exact_on_structured_graphs() {
        for (g, t) in [
            (gen::complete_bipartite(3, 3), 9u64),
            (gen::theta_k2k(7), 21),
            (gen::disjoint_four_cycles(6), 6),
            (gen::complete(4), 3),
            (gen::disjoint_triangles(4), 0),
        ] {
            let n = g.vertex_count();
            let est = run_once(
                &g,
                full_cfg(&g, FourCycleEstimator::DistinctCycles),
                StreamOrder::shuffled(n, 2),
                StreamOrder::shuffled(n, 3),
            );
            assert_eq!(est.estimate, t as f64, "graph {g:?}");
        }
    }

    /// The O(1)-approximation guarantee: on a planted workload at the
    /// Theorem 4.6 budget, the median estimate is within a constant factor.
    #[test]
    fn constant_factor_at_theorem_budget() {
        let t = 256u64;
        let g = gen::disjoint_four_cycles(t as usize);
        let n = g.vertex_count();
        let m = g.edge_count() as f64;
        let budget = (6.0 * m / (t as f64).powf(3.0 / 8.0)).ceil() as usize;
        let med = crate::amplify::median_of_runs(11, 0, 1, |seed| {
            run_once(
                &g,
                TwoPassFourCycleConfig {
                    seed,
                    edge_sample_size: budget,
                    estimator: FourCycleEstimator::DistinctCycles,
                    max_wedges: None,
                },
                StreamOrder::shuffled(n, seed),
                StreamOrder::shuffled(n, seed + 999),
            )
            .estimate
        });
        let ratio = med.median / t as f64;
        assert!(
            (0.1..=10.0).contains(&ratio),
            "median {} vs T {t} (ratio {ratio})",
            med.median
        );
    }

    #[test]
    fn four_cycle_free_graphs_estimate_zero() {
        let g = gen::projective_plane_incidence(3);
        let n = g.vertex_count();
        let est = run_once(
            &g,
            full_cfg(&g, FourCycleEstimator::DistinctCycles),
            StreamOrder::shuffled(n, 1),
            StreamOrder::shuffled(n, 2),
        );
        assert_eq!(est.estimate, 0.0);
        assert!(est.wedges > 0, "plane has wedges but no 4-cycles");
    }
}

#[cfg(test)]
mod wedge_cap_tests {
    use super::*;
    use adjstream_graph::{exact, gen};
    use adjstream_stream::{PassOrders, Runner, StreamOrder};

    #[test]
    fn cap_reduces_space_and_stays_constant_factor() {
        // Theta workload: wedges over a full sample concentrate at the hubs.
        let g = gen::theta_k2k(60); // T = 1770
        let truth = exact::count_four_cycles(&g) as f64;
        let n = g.vertex_count();
        let run = |max_wedges: Option<usize>| {
            let mut estimates = Vec::new();
            let mut peak = 0usize;
            for seed in 0..15u64 {
                let cfg = TwoPassFourCycleConfig {
                    seed,
                    edge_sample_size: g.edge_count(),
                    estimator: FourCycleEstimator::WedgeMultiplicity,
                    max_wedges,
                };
                let (est, r) = Runner::run(
                    &g,
                    TwoPassFourCycle::new(cfg),
                    &PassOrders::PerPass(vec![
                        StreamOrder::shuffled(n, seed),
                        StreamOrder::shuffled(n, seed + 77),
                    ]),
                );
                estimates.push(est.estimate);
                peak = peak.max(r.peak_state_bytes);
            }
            (adjstream_stream::estimator::mean(&estimates), peak)
        };
        let (uncapped_mean, uncapped_peak) = run(None);
        assert_eq!(uncapped_mean, truth); // full sample, multiplicity: exact
        let (capped_mean, capped_peak) = run(Some(100));
        assert!(
            capped_peak < uncapped_peak,
            "{capped_peak} vs {uncapped_peak}"
        );
        // Cap-corrected estimator stays unbiased in expectation (wide
        // tolerance: only 15 seeds).
        assert!(
            (capped_mean - truth).abs() < 0.5 * truth,
            "capped mean {capped_mean} vs {truth}"
        );
    }

    /// The incremental leaf-index byte counter must equal a full rescan
    /// after the wedge set is built.
    #[test]
    fn incremental_accounting_matches_rescan() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        let g = gen::gnm(30, 160, &mut rng);
        let n = g.vertex_count();
        let mut algo = TwoPassFourCycle::new(TwoPassFourCycleConfig::paper(3, 80));
        let orders = [StreamOrder::shuffled(n, 1), StreamOrder::shuffled(n, 2)];
        for (pass, order) in orders.iter().enumerate() {
            let items = adjstream_stream::AdjListStream::new(&g, order.clone()).collect_items();
            algo.begin_pass(pass);
            for it in &items {
                algo.item(it.src, it.dst);
            }
            let rescan: usize = algo
                .leaf_index
                .values()
                .map(|v| v.capacity() * 4 + 24)
                .sum();
            assert_eq!(algo.leaf_vec_bytes, rescan, "pass {pass}");
        }
        assert!(algo.leaf_vec_bytes > 0, "wedges were indexed");
    }

    #[test]
    fn paper_constructor_has_no_cap() {
        let cfg = TwoPassFourCycleConfig::paper(1, 100);
        assert!(cfg.max_wedges.is_none());
        assert_eq!(cfg.estimator, FourCycleEstimator::DistinctCycles);
    }

    #[test]
    fn checkpoint_roundtrip_at_the_pass_boundary_is_bit_for_bit() {
        use adjstream_stream::meter::PeakTracker;
        use adjstream_stream::runner::drive_pass;
        use adjstream_stream::AdjListStream;
        use rand::{rngs::StdRng, SeedableRng};

        let mut rng = StdRng::seed_from_u64(21);
        let g = gen::gnm(50, 350, &mut rng).disjoint_union(&gen::disjoint_cliques(3, 5));
        let n = g.vertex_count();
        let orders = [StreamOrder::shuffled(n, 4), StreamOrder::shuffled(n, 9)];
        let cfg = TwoPassFourCycleConfig::paper(13, 120);

        let mut peak = PeakTracker::new();
        let mut processed = 0usize;
        let mut original = TwoPassFourCycle::new(cfg);
        drive_pass(
            &mut original,
            0,
            AdjListStream::new(&g, orders[0].clone()).items(),
            &mut peak,
            &mut processed,
        )
        .unwrap();

        let mut buf = Vec::new();
        original.save(&mut buf).unwrap();
        let mut restored = TwoPassFourCycle::restore(&mut &buf[..]).unwrap();
        assert_eq!(restored.items, original.items);
        let mut want: Vec<u64> = original.sampler.keys().collect();
        let mut got: Vec<u64> = restored.sampler.keys().collect();
        want.sort_unstable();
        got.sort_unstable();
        assert_eq!(got, want, "edge sample must survive the roundtrip");

        for algo in [&mut original, &mut restored] {
            drive_pass(
                algo,
                1,
                AdjListStream::new(&g, orders[1].clone()).items(),
                &mut peak,
                &mut processed,
            )
            .unwrap();
        }
        let a = original.finish();
        let b = restored.finish();
        assert_eq!(a, b, "resumed run must reproduce the estimate exactly");
        assert_eq!(a.estimate.to_bits(), b.estimate.to_bits());
    }

    #[test]
    fn checkpoint_restore_rejects_bad_tags() {
        use adjstream_stream::checkpoint::{write_u64, write_u8, write_usize};
        let mut buf = Vec::new();
        write_u64(&mut buf, 1).unwrap();
        write_usize(&mut buf, 10).unwrap();
        write_u8(&mut buf, 9).unwrap();
        let err = TwoPassFourCycle::restore(&mut &buf[..])
            .err()
            .expect("bad tag must fail");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("estimator tag"));
    }
}

//! Streaming transitivity (global clustering coefficient) estimation —
//! the quantity the paper's motivating applications actually consume
//! (spam detection, community structure, thematic web analysis all use
//! `κ = 3T/P₂` rather than the raw triangle count).
//!
//! In the adjacency-list model the wedge count `P₂ = Σ_v C(deg v, 2)` is
//! *exactly* computable in one pass with `O(log n)` space (each list
//! reveals its owner's degree), so transitivity inherits the triangle
//! algorithm's guarantee: `(1±ε)` in `Õ(m/T^{2/3})` space over the same
//! two passes. [`TransitivityTwoPass`] fuses the wedge counter into pass 1
//! of [`crate::triangle::TwoPassTriangle`].

use adjstream_graph::VertexId;
use adjstream_stream::meter::SpaceUsage;
use adjstream_stream::runner::MultiPassAlgorithm;

use crate::triangle::{TwoPassTriangle, TwoPassTriangleConfig};

/// Result of a [`TransitivityTwoPass`] run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransitivityEstimate {
    /// Estimated global transitivity `3T̂ / P₂` (0 if the graph has no
    /// wedges).
    pub transitivity: f64,
    /// The triangle estimate `T̂`.
    pub triangles: f64,
    /// Exact wedge count `P₂`.
    pub wedges: u64,
}

/// One-pass exact wedge counter (`O(log n)` state): accumulates
/// `C(deg, 2)` per adjacency list.
#[derive(Debug, Default, Clone, Copy)]
pub struct WedgeCountStream {
    current_len: u64,
    total: u64,
}

impl WedgeCountStream {
    /// Fresh counter.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SpaceUsage for WedgeCountStream {
    fn space_bytes(&self) -> usize {
        16
    }
}

impl MultiPassAlgorithm for WedgeCountStream {
    type Output = u64;

    fn passes(&self) -> usize {
        1
    }

    fn begin_pass(&mut self, _pass: usize) {}

    fn begin_list(&mut self, _owner: VertexId) {
        self.current_len = 0;
    }

    fn item(&mut self, _src: VertexId, _dst: VertexId) {
        self.current_len += 1;
    }

    fn end_list(&mut self, _owner: VertexId) {
        self.total += self.current_len * self.current_len.saturating_sub(1) / 2;
    }

    fn finish(self) -> u64 {
        self.total
    }
}

/// Two-pass transitivity estimator: Theorem 3.7 triangle estimation with
/// the exact wedge counter fused into pass 1.
pub struct TransitivityTwoPass {
    triangle: TwoPassTriangle,
    pass: usize,
    wedges: WedgeCountStream,
}

impl TransitivityTwoPass {
    /// Build from a triangle-algorithm configuration.
    pub fn new(cfg: TwoPassTriangleConfig) -> Self {
        TransitivityTwoPass {
            triangle: TwoPassTriangle::new(cfg),
            pass: 0,
            wedges: WedgeCountStream::new(),
        }
    }
}

impl SpaceUsage for TransitivityTwoPass {
    fn space_bytes(&self) -> usize {
        self.triangle.space_bytes() + self.wedges.space_bytes()
    }
}

impl MultiPassAlgorithm for TransitivityTwoPass {
    type Output = TransitivityEstimate;

    fn passes(&self) -> usize {
        2
    }

    fn requires_same_order(&self) -> bool {
        true
    }

    fn begin_pass(&mut self, pass: usize) {
        self.pass = pass;
        self.triangle.begin_pass(pass);
        if pass == 0 {
            self.wedges.begin_pass(0);
        }
    }

    fn begin_list(&mut self, owner: VertexId) {
        self.triangle.begin_list(owner);
        if self.pass == 0 {
            self.wedges.begin_list(owner);
        }
    }

    fn item(&mut self, src: VertexId, dst: VertexId) {
        self.triangle.item(src, dst);
        if self.pass == 0 {
            self.wedges.item(src, dst);
        }
    }

    fn end_list(&mut self, owner: VertexId) {
        self.triangle.end_list(owner);
        if self.pass == 0 {
            self.wedges.end_list(owner);
        }
    }

    fn end_pass(&mut self, pass: usize) {
        self.triangle.end_pass(pass);
    }

    fn finish(self) -> TransitivityEstimate {
        let triangles = self.triangle.finish();
        let wedges = self.wedges.finish();
        let transitivity = if wedges == 0 {
            0.0
        } else {
            3.0 * triangles.estimate / wedges as f64
        };
        TransitivityEstimate {
            transitivity,
            triangles: triangles.estimate,
            wedges,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::EdgeSampling;
    use adjstream_graph::{exact, gen};
    use adjstream_stream::{PassOrders, Runner, StreamOrder};

    #[test]
    fn wedge_counter_is_exact() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for trial in 0..6 {
            let g = gen::gnm(40, 200, &mut rng);
            let (w, report) = Runner::run(
                &g,
                WedgeCountStream::new(),
                &PassOrders::Same(StreamOrder::shuffled(40, trial)),
            );
            assert_eq!(w, g.wedge_count(), "trial {trial}");
            assert_eq!(report.peak_state_bytes, 16);
        }
    }

    #[test]
    fn transitivity_exact_under_exhaustive_sampling() {
        let g = gen::disjoint_cliques(5, 6);
        let truth_t = exact::count_triangles(&g) as f64;
        let truth_k = 3.0 * truth_t / g.wedge_count() as f64;
        let cfg = TwoPassTriangleConfig {
            seed: 1,
            edge_sampling: EdgeSampling::Threshold { p: 1.0 },
            pair_capacity: usize::MAX,
        };
        let (est, _) = Runner::run(
            &g,
            TransitivityTwoPass::new(cfg),
            &PassOrders::Same(StreamOrder::shuffled(g.vertex_count(), 5)),
        );
        assert_eq!(est.triangles, truth_t);
        assert_eq!(est.wedges, g.wedge_count());
        assert!((est.transitivity - truth_k).abs() < 1e-12);
        // Cliques: transitivity is exactly 1.
        assert!((est.transitivity - 1.0).abs() < 1e-12);
    }

    #[test]
    fn triangle_free_has_zero_transitivity() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(2);
        let g = gen::bipartite_gnm(20, 20, 150, &mut rng);
        let cfg = TwoPassTriangleConfig {
            seed: 1,
            edge_sampling: EdgeSampling::Threshold { p: 1.0 },
            pair_capacity: usize::MAX,
        };
        let (est, _) = Runner::run(
            &g,
            TransitivityTwoPass::new(cfg),
            &PassOrders::Same(StreamOrder::natural(40)),
        );
        assert_eq!(est.transitivity, 0.0);
        assert!(est.wedges > 0);
    }

    #[test]
    fn empty_graph_is_defined() {
        let g = adjstream_graph::Graph::empty(3);
        let cfg = TwoPassTriangleConfig {
            seed: 1,
            edge_sampling: EdgeSampling::Threshold { p: 1.0 },
            pair_capacity: 8,
        };
        let (est, _) = Runner::run(
            &g,
            TransitivityTwoPass::new(cfg),
            &PassOrders::Same(StreamOrder::natural(3)),
        );
        assert_eq!(est.transitivity, 0.0);
        assert_eq!(est.wedges, 0);
    }
}

//! Naive sampled-subgraph ℓ-cycle estimation — the strawman Theorem 5.5
//! dooms.
//!
//! Keep a uniform `k`-edge sample, count the ℓ-cycles that survive inside
//! the sample, and scale by `(m/k)^ℓ` (a cycle survives iff all ℓ of its
//! edges are sampled, probability `≈ (k/m)^ℓ`). For ℓ ≥ 5 the paper proves
//! `Ω(m)` space is required by *any* constant-pass algorithm; this
//! estimator makes the obstruction concrete: at sublinear `k` the survival
//! probability `(k/m)^ℓ` collapses, so the estimate is almost always `0`
//! (with rare astronomically-scaled spikes), and the yes/no gadget
//! instances of Figure 1e become indistinguishable — which is what the
//! `repro_fig1_longcycle_lb` experiment exhibits.

use adjstream_graph::{exact, GraphBuilder, VertexId};
use adjstream_stream::meter::SpaceUsage;
use adjstream_stream::runner::MultiPassAlgorithm;
use adjstream_stream::sampling::BottomKSampler;

use crate::common::{pack_pair, unpack_pair};

/// Result of a [`SampledSubgraphCycles`] run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampledCycleEstimate {
    /// `survivors · (m/k)^ℓ`.
    pub estimate: f64,
    /// ℓ-cycles found entirely inside the edge sample.
    pub survivors: u64,
    /// Final sample size.
    pub edges_sampled: usize,
    /// Stream edge count.
    pub m: u64,
}

/// One-pass naive ℓ-cycle estimator over a uniform edge sample.
pub struct SampledSubgraphCycles {
    ell: usize,
    sampler: BottomKSampler,
    items: u64,
}

impl SampledSubgraphCycles {
    /// Estimator for cycles of length `ell` with a `k`-edge sample.
    pub fn new(seed: u64, ell: usize, k: usize) -> Self {
        assert!(ell >= 3);
        SampledSubgraphCycles {
            ell,
            sampler: BottomKSampler::new(seed, k),
            items: 0,
        }
    }
}

impl SpaceUsage for SampledSubgraphCycles {
    fn space_bytes(&self) -> usize {
        self.sampler.space_bytes() + 16
    }
}

impl MultiPassAlgorithm for SampledSubgraphCycles {
    type Output = SampledCycleEstimate;

    fn passes(&self) -> usize {
        1
    }

    fn begin_pass(&mut self, _pass: usize) {}

    fn item(&mut self, src: VertexId, dst: VertexId) {
        self.items += 1;
        self.sampler.offer(pack_pair(src, dst));
    }

    fn finish(self) -> SampledCycleEstimate {
        let m = self.items / 2;
        let keys: Vec<u64> = self.sampler.keys().collect();
        let k = keys.len();
        if k == 0 {
            return SampledCycleEstimate {
                estimate: 0.0,
                survivors: 0,
                edges_sampled: 0,
                m,
            };
        }
        let max_v = keys
            .iter()
            .map(|&key| {
                let (a, b) = unpack_pair(key);
                a.0.max(b.0)
            })
            .max()
            .unwrap_or(0);
        let mut b = GraphBuilder::with_capacity(max_v as usize + 1, k);
        for &key in &keys {
            let (u, v) = unpack_pair(key);
            b.add_edge(u, v).expect("sampled edges valid");
        }
        let g = b.build().expect("valid");
        let survivors = exact::count_cycles(&g, self.ell);
        let scale = (m as f64 / k as f64).powi(self.ell as i32);
        SampledCycleEstimate {
            estimate: survivors as f64 * scale,
            survivors,
            edges_sampled: k,
            m,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adjstream_graph::gen;
    use adjstream_stream::{PassOrders, Runner, StreamOrder};

    fn run(g: &adjstream_graph::Graph, ell: usize, k: usize, seed: u64) -> SampledCycleEstimate {
        let n = g.vertex_count();
        let (est, _) = Runner::run(
            g,
            SampledSubgraphCycles::new(seed, ell, k),
            &PassOrders::Same(StreamOrder::shuffled(n, seed)),
        );
        est
    }

    #[test]
    fn full_sample_is_exact() {
        let g = gen::disjoint_cycles(5, 7);
        let est = run(&g, 5, g.edge_count(), 1);
        assert_eq!(est.survivors, 7);
        assert_eq!(est.estimate, 7.0);
    }

    #[test]
    fn sublinear_sample_almost_never_sees_a_long_cycle() {
        // 40 disjoint 6-cycles (m = 240); a 10% sample keeps a specific
        // cycle with probability ~1e-6.
        let g = gen::disjoint_cycles(6, 40);
        let zeros = (0..20)
            .filter(|&seed| run(&g, 6, 24, seed).survivors == 0)
            .count();
        assert!(
            zeros >= 19,
            "survivors appeared in {} of 20 runs",
            20 - zeros
        );
    }

    #[test]
    fn scaling_matches_survival_probability() {
        let g = gen::disjoint_cycles(5, 4); // m = 20
        let est = run(&g, 5, 10, 3);
        if est.survivors > 0 {
            assert_eq!(est.estimate, est.survivors as f64 * 32.0); // (20/10)^5
        } else {
            assert_eq!(est.estimate, 0.0);
        }
    }
}

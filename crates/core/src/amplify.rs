//! Median amplification (Theorems 3.7 and 4.6).
//!
//! Both theorems run `Θ(log 1/δ)` independent copies of a
//! constant-success-probability estimator and report the median. The
//! repetitions are embarrassingly parallel; [`median_of_runs`] fans them out
//! over threads with crossbeam's scope. The batched drivers in
//! [`crate::estimate`] produce the run vector differently (one shared
//! stream replay via [`adjstream_stream::batch::BatchRunner`]) but summarize
//! it through the same [`MedianReport::from_runs`], so both engines report
//! identical statistics for identical runs.

use adjstream_stream::estimator::{mean, median, variance};

/// Summary of a batch of independent estimator runs.
#[derive(Debug, Clone, PartialEq)]
pub struct MedianReport {
    /// The amplified (median) estimate, taken over the non-NaN runs.
    pub median: f64,
    /// Mean of the non-NaN runs (diagnostic; sensitive to heavy-edge
    /// variance).
    pub mean: f64,
    /// Sample variance of the non-NaN runs (diagnostic).
    pub variance: f64,
    /// The individual run estimates, in repetition order, NaNs included —
    /// this vector is the bitwise-reproducibility contract between the
    /// sequential and batched engines.
    pub runs: Vec<f64>,
    /// Runs that produced NaN and were excluded from the summary
    /// statistics. A nonzero count flags degenerate repetitions (e.g. a
    /// 0/0 in a sparse-sample estimator) without crashing the estimate.
    pub nan_runs: usize,
}

impl MedianReport {
    /// Summarize a run vector: median/mean/variance over the non-NaN runs,
    /// with the NaN count surfaced in [`MedianReport::nan_runs`]. If every
    /// run is NaN the summary statistics are NaN.
    pub fn from_runs(runs: Vec<f64>) -> MedianReport {
        assert!(!runs.is_empty(), "need at least one run");
        let finite: Vec<f64> = runs.iter().copied().filter(|x| !x.is_nan()).collect();
        let nan_runs = runs.len() - finite.len();
        if finite.is_empty() {
            return MedianReport {
                median: f64::NAN,
                mean: f64::NAN,
                variance: f64::NAN,
                runs,
                nan_runs,
            };
        }
        MedianReport {
            median: median(&finite),
            mean: mean(&finite),
            variance: variance(&finite),
            runs,
            nan_runs,
        }
    }
}

/// Run `reps` independent copies of `run` (seeded `base_seed + i`) and take
/// the median. `threads > 1` distributes the repetitions.
pub fn median_of_runs<F>(reps: usize, base_seed: u64, threads: usize, run: F) -> MedianReport
where
    F: Fn(u64) -> f64 + Sync,
{
    assert!(reps > 0, "need at least one run");
    let mut runs = vec![0.0f64; reps];
    if threads <= 1 {
        for (i, slot) in runs.iter_mut().enumerate() {
            *slot = run(base_seed.wrapping_add(i as u64));
        }
    } else {
        let chunk = reps.div_ceil(threads);
        crossbeam::thread::scope(|scope| {
            for (t, slice) in runs.chunks_mut(chunk).enumerate() {
                let run = &run;
                scope.spawn(move |_| {
                    for (i, slot) in slice.iter_mut().enumerate() {
                        *slot = run(base_seed.wrapping_add((t * chunk + i) as u64));
                    }
                });
            }
        })
        .expect("estimator threads do not panic");
    }
    MedianReport::from_runs(runs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_and_parallel_agree() {
        let f = |seed: u64| (seed % 10) as f64;
        let a = median_of_runs(25, 100, 1, f);
        let b = median_of_runs(25, 100, 4, f);
        assert_eq!(a.runs, b.runs);
        assert_eq!(a.median, b.median);
    }

    #[test]
    fn median_resists_one_bad_run() {
        // Simulate an estimator that usually returns ~100 but explodes on
        // one seed.
        let f = |seed: u64| {
            if seed == 3 {
                1e12
            } else {
                100.0 + (seed % 5) as f64
            }
        };
        let rep = median_of_runs(9, 0, 2, f);
        assert!(rep.median < 110.0);
        assert!(rep.mean > 1e10); // the mean is wrecked — that's the point
        assert!(rep.variance > 0.0);
        assert_eq!(rep.nan_runs, 0);
    }

    #[test]
    fn nan_runs_are_counted_not_fatal() {
        // A degenerate repetition (0/0 → NaN) must not panic the driver or
        // poison the median.
        let f = |seed: u64| {
            if seed % 4 == 1 {
                f64::NAN
            } else {
                50.0 + (seed % 3) as f64
            }
        };
        for threads in [1, 3] {
            let rep = median_of_runs(11, 0, threads, f);
            assert_eq!(rep.nan_runs, 3, "seeds 1, 5, 9");
            assert_eq!(rep.runs.len(), 11);
            assert!(rep.runs[1].is_nan(), "NaNs stay visible in the run vector");
            assert!(rep.median >= 50.0 && rep.median <= 52.0);
            assert!(rep.mean.is_finite());
            assert!(rep.variance.is_finite());
        }
    }

    #[test]
    fn all_nan_runs_yield_nan_summary() {
        let rep = median_of_runs(3, 0, 1, |_| f64::NAN);
        assert_eq!(rep.nan_runs, 3);
        assert!(rep.median.is_nan());
        assert!(rep.mean.is_nan());
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn zero_reps_panics() {
        median_of_runs(0, 0, 1, |_| 0.0);
    }
}

//! Median amplification (Theorems 3.7 and 4.6).
//!
//! Both theorems run `Θ(log 1/δ)` independent copies of a
//! constant-success-probability estimator and report the median. The
//! repetitions are embarrassingly parallel; [`median_of_runs`] fans them out
//! over threads with crossbeam's scope. The batched drivers in
//! [`crate::estimate`] produce the run vector differently (one shared
//! stream replay via [`adjstream_stream::batch::BatchRunner`]) but summarize
//! it through the same [`MedianReport::from_runs`], so both engines report
//! identical statistics for identical runs.

use adjstream_stream::estimator::{mean, median, variance};

/// Minimum number of surviving repetitions for a trustworthy median of
/// `reps` runs: a strict majority plus one (`⌈reps/2⌉ + 1`), capped at
/// `reps`. The median-amplification analysis needs more than half of the
/// repetitions present — with exactly half, a single adversarial loss can
/// move the median across the acceptance threshold. The extra `+1` keeps
/// one run of slack so the median index itself is never supplied by a
/// boundary run.
pub fn quorum(reps: usize) -> usize {
    reps.min(reps.div_ceil(2) + 1)
}

/// Too few repetitions survived (panic quarantine, per-instance budget) to
/// report a median with the amplified confidence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradedRun {
    /// Repetitions that ran to completion.
    pub survivors: usize,
    /// Minimum survivors the caller required (the quorum).
    pub required: usize,
    /// Repetitions attempted.
    pub repetitions: usize,
}

impl std::fmt::Display for DegradedRun {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "degraded run: only {} of {} repetitions survived (need {})",
            self.survivors, self.repetitions, self.required
        )
    }
}

impl std::error::Error for DegradedRun {}

/// Summary of a batch of independent estimator runs.
#[derive(Debug, Clone, PartialEq)]
pub struct MedianReport {
    /// The amplified (median) estimate, taken over the non-NaN runs.
    pub median: f64,
    /// Mean of the non-NaN runs (diagnostic; sensitive to heavy-edge
    /// variance).
    pub mean: f64,
    /// Sample variance of the non-NaN runs (diagnostic).
    pub variance: f64,
    /// The individual run estimates, in repetition order, NaNs included —
    /// this vector is the bitwise-reproducibility contract between the
    /// sequential and batched engines. Runs killed before producing an
    /// estimate (see [`MedianReport::dead_runs`]) do not appear here.
    pub runs: Vec<f64>,
    /// Runs that produced NaN and were excluded from the summary
    /// statistics. A nonzero count flags degenerate repetitions (e.g. a
    /// 0/0 in a sparse-sample estimator) without crashing the estimate.
    pub nan_runs: usize,
    /// Repetitions quarantined before producing any estimate (panic,
    /// per-instance budget). Zero for fully healthy runs; bounded above by
    /// `repetitions − quorum` whenever this report exists at all (see
    /// [`median_of_survivors`]).
    pub dead_runs: usize,
}

impl MedianReport {
    /// Summarize a run vector: median/mean/variance over the non-NaN runs,
    /// with the NaN count surfaced in [`MedianReport::nan_runs`]. If every
    /// run is NaN the summary statistics are NaN.
    pub fn from_runs(runs: Vec<f64>) -> MedianReport {
        assert!(!runs.is_empty(), "need at least one run");
        let finite: Vec<f64> = runs.iter().copied().filter(|x| !x.is_nan()).collect();
        let nan_runs = runs.len() - finite.len();
        if finite.is_empty() {
            return MedianReport {
                median: f64::NAN,
                mean: f64::NAN,
                variance: f64::NAN,
                runs,
                nan_runs,
                dead_runs: 0,
            };
        }
        MedianReport {
            median: median(&finite),
            mean: mean(&finite),
            variance: variance(&finite),
            runs,
            nan_runs,
            dead_runs: 0,
        }
    }
}

/// Summarize a run vector in which some repetitions were quarantined
/// (`None`: the instance panicked or blew its space budget before producing
/// an estimate). Succeeds iff at least `min_survivors.max(1)` repetitions
/// survived; the resulting report's `runs` vector holds the survivor values
/// in repetition order and `dead_runs` counts the quarantined slots.
pub fn median_of_survivors(
    runs: &[Option<f64>],
    min_survivors: usize,
) -> Result<MedianReport, DegradedRun> {
    let survivors: Vec<f64> = runs.iter().filter_map(|r| *r).collect();
    let required = min_survivors.max(1);
    if survivors.len() < required {
        return Err(DegradedRun {
            survivors: survivors.len(),
            required,
            repetitions: runs.len(),
        });
    }
    let dead_runs = runs.len() - survivors.len();
    let mut report = MedianReport::from_runs(survivors);
    report.dead_runs = dead_runs;
    Ok(report)
}

/// Run `reps` independent copies of `run` (seeded `base_seed + i`) and
/// collect their outputs in repetition order, distributing over `threads`
/// with the same seed schedule as [`median_of_runs`]. This is the
/// fault-aware sibling of that function: `run` may return `Option<f64>` (a
/// `None` marks a dead repetition) for use with [`median_of_survivors`].
pub fn collect_runs<T, F>(reps: usize, base_seed: u64, threads: usize, run: F) -> Vec<T>
where
    T: Send + Default,
    F: Fn(u64) -> T + Sync,
{
    assert!(reps > 0, "need at least one run");
    let mut runs: Vec<T> = std::iter::repeat_with(T::default).take(reps).collect();
    if threads <= 1 {
        for (i, slot) in runs.iter_mut().enumerate() {
            *slot = run(base_seed.wrapping_add(i as u64));
        }
    } else {
        let chunk = reps.div_ceil(threads);
        crossbeam::thread::scope(|scope| {
            for (t, slice) in runs.chunks_mut(chunk).enumerate() {
                let run = &run;
                scope.spawn(move |_| {
                    for (i, slot) in slice.iter_mut().enumerate() {
                        *slot = run(base_seed.wrapping_add((t * chunk + i) as u64));
                    }
                });
            }
        })
        .expect("estimator threads do not panic");
    }
    runs
}

/// Run `reps` independent copies of `run` (seeded `base_seed + i`) and take
/// the median. `threads > 1` distributes the repetitions.
pub fn median_of_runs<F>(reps: usize, base_seed: u64, threads: usize, run: F) -> MedianReport
where
    F: Fn(u64) -> f64 + Sync,
{
    MedianReport::from_runs(collect_runs(reps, base_seed, threads, run))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_and_parallel_agree() {
        let f = |seed: u64| (seed % 10) as f64;
        let a = median_of_runs(25, 100, 1, f);
        let b = median_of_runs(25, 100, 4, f);
        assert_eq!(a.runs, b.runs);
        assert_eq!(a.median, b.median);
    }

    #[test]
    fn median_resists_one_bad_run() {
        // Simulate an estimator that usually returns ~100 but explodes on
        // one seed.
        let f = |seed: u64| {
            if seed == 3 {
                1e12
            } else {
                100.0 + (seed % 5) as f64
            }
        };
        let rep = median_of_runs(9, 0, 2, f);
        assert!(rep.median < 110.0);
        assert!(rep.mean > 1e10); // the mean is wrecked — that's the point
        assert!(rep.variance > 0.0);
        assert_eq!(rep.nan_runs, 0);
    }

    #[test]
    fn nan_runs_are_counted_not_fatal() {
        // A degenerate repetition (0/0 → NaN) must not panic the driver or
        // poison the median.
        let f = |seed: u64| {
            if seed % 4 == 1 {
                f64::NAN
            } else {
                50.0 + (seed % 3) as f64
            }
        };
        for threads in [1, 3] {
            let rep = median_of_runs(11, 0, threads, f);
            assert_eq!(rep.nan_runs, 3, "seeds 1, 5, 9");
            assert_eq!(rep.runs.len(), 11);
            assert!(rep.runs[1].is_nan(), "NaNs stay visible in the run vector");
            assert!(rep.median >= 50.0 && rep.median <= 52.0);
            assert!(rep.mean.is_finite());
            assert!(rep.variance.is_finite());
        }
    }

    #[test]
    fn all_nan_runs_yield_nan_summary() {
        let rep = median_of_runs(3, 0, 1, |_| f64::NAN);
        assert_eq!(rep.nan_runs, 3);
        assert!(rep.median.is_nan());
        assert!(rep.mean.is_nan());
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn zero_reps_panics() {
        median_of_runs(0, 0, 1, |_| 0.0);
    }

    #[test]
    fn quorum_is_majority_plus_one_capped() {
        assert_eq!(quorum(1), 1);
        assert_eq!(quorum(2), 2);
        assert_eq!(quorum(3), 3);
        assert_eq!(quorum(4), 3);
        assert_eq!(quorum(5), 4);
        assert_eq!(quorum(15), 9);
        assert_eq!(quorum(16), 9);
    }

    #[test]
    fn survivor_median_skips_dead_runs_in_order() {
        let runs = vec![Some(10.0), None, Some(30.0), Some(20.0), None];
        let rep = median_of_survivors(&runs, 3).expect("3 survivors meet quorum 3");
        assert_eq!(
            rep.runs,
            vec![10.0, 30.0, 20.0],
            "repetition order, dead slots removed"
        );
        assert_eq!(rep.dead_runs, 2);
        assert_eq!(rep.nan_runs, 0);
        assert_eq!(rep.median, 20.0);
    }

    #[test]
    fn below_quorum_is_a_typed_degraded_error() {
        let runs = vec![Some(1.0), None, None, None, None];
        let err = median_of_survivors(&runs, quorum(5)).unwrap_err();
        assert_eq!(
            err,
            DegradedRun {
                survivors: 1,
                required: 4,
                repetitions: 5
            }
        );
        let msg = err.to_string();
        assert!(msg.contains("1 of 5"), "{msg}");
        assert!(msg.contains("need 4"), "{msg}");
    }

    #[test]
    fn zero_min_survivors_still_requires_one() {
        let err = median_of_survivors(&[None, None], 0).unwrap_err();
        assert_eq!(err.required, 1);
        let ok = median_of_survivors(&[Some(7.0), None], 0).unwrap();
        assert_eq!(ok.median, 7.0);
        assert_eq!(ok.dead_runs, 1);
    }

    #[test]
    fn collect_runs_matches_median_of_runs_seed_schedule() {
        let f = |seed: u64| (seed % 13) as f64;
        for threads in [1, 4] {
            let direct = median_of_runs(17, 42, threads, f);
            let collected = collect_runs(17, 42, threads, f);
            assert_eq!(direct.runs, collected);
        }
    }
}

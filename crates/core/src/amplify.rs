//! Median amplification (Theorems 3.7 and 4.6).
//!
//! Both theorems run `Θ(log 1/δ)` independent copies of a
//! constant-success-probability estimator and report the median. The
//! repetitions are embarrassingly parallel; [`median_of_runs`] fans them out
//! over threads with crossbeam's scope.

use adjstream_stream::estimator::{mean, median, variance};

/// Summary of a batch of independent estimator runs.
#[derive(Debug, Clone, PartialEq)]
pub struct MedianReport {
    /// The amplified (median) estimate.
    pub median: f64,
    /// Mean of the runs (diagnostic; sensitive to heavy-edge variance).
    pub mean: f64,
    /// Sample variance of the runs (diagnostic).
    pub variance: f64,
    /// The individual run estimates.
    pub runs: Vec<f64>,
}

/// Run `reps` independent copies of `run` (seeded `base_seed + i`) and take
/// the median. `threads > 1` distributes the repetitions.
pub fn median_of_runs<F>(reps: usize, base_seed: u64, threads: usize, run: F) -> MedianReport
where
    F: Fn(u64) -> f64 + Sync,
{
    assert!(reps > 0, "need at least one run");
    let mut runs = vec![0.0f64; reps];
    if threads <= 1 {
        for (i, slot) in runs.iter_mut().enumerate() {
            *slot = run(base_seed.wrapping_add(i as u64));
        }
    } else {
        let chunk = reps.div_ceil(threads);
        crossbeam::thread::scope(|scope| {
            for (t, slice) in runs.chunks_mut(chunk).enumerate() {
                let run = &run;
                scope.spawn(move |_| {
                    for (i, slot) in slice.iter_mut().enumerate() {
                        *slot = run(base_seed.wrapping_add((t * chunk + i) as u64));
                    }
                });
            }
        })
        .expect("estimator threads do not panic");
    }
    MedianReport {
        median: median(&runs),
        mean: mean(&runs),
        variance: variance(&runs),
        runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_and_parallel_agree() {
        let f = |seed: u64| (seed % 10) as f64;
        let a = median_of_runs(25, 100, 1, f);
        let b = median_of_runs(25, 100, 4, f);
        assert_eq!(a.runs, b.runs);
        assert_eq!(a.median, b.median);
    }

    #[test]
    fn median_resists_one_bad_run() {
        // Simulate an estimator that usually returns ~100 but explodes on
        // one seed.
        let f = |seed: u64| {
            if seed == 3 {
                1e12
            } else {
                100.0 + (seed % 5) as f64
            }
        };
        let rep = median_of_runs(9, 0, 2, f);
        assert!(rep.median < 110.0);
        assert!(rep.mean > 1e10); // the mean is wrecked — that's the point
        assert!(rep.variance > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn zero_reps_panics() {
        median_of_runs(0, 0, 1, |_| 0.0);
    }
}

//! Dynamic-graph drivers: exact incremental triangle maintenance and
//! sliding-window estimation over timestamped update traces.
//!
//! Two consumers of [`adjstream_stream::update::UpdateStream`] live here:
//!
//! * [`ExactDynamicTriangles`] — the `O(m)`-space ground truth. It stores
//!   the whole live graph and maintains the exact triangle count
//!   incrementally (± the distinct common neighbors of an edge's
//!   endpoints at each update). This is what the CLI's `--verify` mode
//!   and the tests cross-check [`crate::triangle::TriestFd`] against, and
//!   the "exact" contender in the amortized-cost bench.
//! * [`windowed_estimates`] — slide a `[start, start + width)` window by
//!   `stride` over a timestamped trace; for each window, materialize the
//!   graph its events describe and *re-feed* it to the paper's two-pass
//!   estimator ([`crate::estimate::try_estimate_triangles_auto`]),
//!   reporting one [`WindowReport`] per window. Window semantics are
//!   window-local: a delete whose edge was not inserted inside the window
//!   is a no-op, so every window stands alone and windows can be
//!   recomputed (or resumed) independently — the same replayability
//!   contract the checkpointed batch engine relies on.

use adjstream_graph::{EdgeKey, Graph, GraphBuilder};
use adjstream_stream::meter::SpaceUsage;
use adjstream_stream::update::{UpdateAlgorithm, UpdateEvent, UpdateOp, UpdateStream};
use adjstream_stream::StreamOrder;

use crate::estimate::{try_estimate_triangles_auto, Accuracy, EstimateError};
use crate::triangle::SampleAdjacency;

/// Exact incremental triangle counting over the full live graph.
///
/// `O(m)` space — the dynamic analogue of [`crate::exact_stream`]'s
/// "store the graph" row, and the baseline every sublinear dynamic
/// estimator is measured against. Deleting an edge that is not live is a
/// tolerated no-op (the count is left untouched), matching the windowed
/// semantics above.
#[derive(Default)]
pub struct ExactDynamicTriangles {
    adj: SampleAdjacency,
    /// Packed live edge set — `SampleAdjacency` is a multiset, the live
    /// graph is not, so membership is tracked here.
    live: adjstream_stream::FastSet<u64>,
    triangles: u64,
}

impl ExactDynamicTriangles {
    /// An empty dynamic graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Exact triangle count of the live graph.
    pub fn triangles(&self) -> u64 {
        self.triangles
    }

    /// Number of live edges.
    pub fn edges(&self) -> usize {
        self.live.len()
    }
}

impl SpaceUsage for ExactDynamicTriangles {
    fn space_bytes(&self) -> usize {
        self.adj.space_bytes() + adjstream_stream::meter::hashset_bytes(&self.live) + 8
    }
}

impl UpdateAlgorithm for ExactDynamicTriangles {
    fn insert(&mut self, e: EdgeKey, _ts: u64) {
        if !self.live.insert(e.pack()) {
            return; // duplicate insert of a live edge: no-op
        }
        self.triangles += self.adj.common_count(e.lo(), e.hi());
        self.adj.add(e);
    }

    fn delete(&mut self, e: EdgeKey, _ts: u64) {
        if !self.live.remove(&e.pack()) {
            return; // delete of a dead edge: no-op
        }
        let removed = self.adj.remove(e);
        debug_assert!(removed, "live edge had adjacency");
        self.triangles -= self.adj.common_count(e.lo(), e.hi());
    }

    fn estimate(&self) -> f64 {
        self.triangles as f64
    }
}

/// How [`windowed_estimates`] slides and what it runs per window.
#[derive(Debug, Clone)]
pub struct WindowConfig {
    /// Window width in timestamp units (half-open `[start, start+width)`).
    pub width: u64,
    /// Start-to-start distance between consecutive windows.
    pub stride: u64,
    /// Accuracy contract for the per-window two-pass estimator.
    pub acc: Accuracy,
    /// Replay exactly instead of estimating (small windows / ground truth).
    pub exact: bool,
}

/// One window's outcome.
#[derive(Debug, Clone)]
pub struct WindowReport {
    /// 0-based window index.
    pub window: usize,
    /// Window start timestamp (inclusive).
    pub ts_start: u64,
    /// Window end timestamp (exclusive).
    pub ts_end: u64,
    /// Events inside the window.
    pub events: usize,
    /// Live edges at the window's end (window-local semantics).
    pub edges: usize,
    /// Triangle estimate for the window's graph, or the typed failure the
    /// estimator degraded with (empty windows estimate `0` trivially).
    pub estimate: Result<f64, EstimateError>,
}

/// Materialize the graph described by a slice of updates under
/// window-local semantics: inserts add, deletes remove, a delete without
/// a live edge is a no-op. Returns the graph and its vertex-bound.
fn window_graph(events: &[UpdateEvent]) -> Graph {
    let mut live = std::collections::BTreeSet::new();
    for ev in events {
        match ev.op {
            UpdateOp::Insert => {
                live.insert(ev.edge.pack());
            }
            UpdateOp::Delete => {
                live.remove(&ev.edge.pack());
            }
        }
    }
    let edges: Vec<EdgeKey> = live.into_iter().map(EdgeKey::unpack).collect();
    let n = edges
        .iter()
        .map(|e| e.hi().0 as usize + 1)
        .max()
        .unwrap_or(0);
    GraphBuilder::from_edges(n, edges.iter().map(|e| (e.lo().0, e.hi().0)))
        .expect("canonical edge keys build a valid graph")
}

/// Slide a window over `stream` and re-run the two-pass triangle
/// estimator (or an exact count) on each window's graph. Windows start at
/// the stream's first timestamp and advance by `cfg.stride` until the
/// last event falls outside every later window; each window's seed is
/// derived from `cfg.acc.seed` and the window index so windows are
/// independently reproducible.
///
/// # Panics
///
/// Panics if `width` or `stride` is zero.
pub fn windowed_estimates(stream: &UpdateStream, cfg: &WindowConfig) -> Vec<WindowReport> {
    assert!(cfg.width > 0, "window width must be positive");
    assert!(cfg.stride > 0, "window stride must be positive");
    let Some((first, last)) = stream.ts_range() else {
        return Vec::new();
    };
    let mut reports = Vec::new();
    let mut start = first;
    let mut window = 0usize;
    while start <= last {
        let end = start.saturating_add(cfg.width);
        let events = stream.slice_ts(start, end);
        let g = window_graph(events);
        let estimate = if g.edge_count() == 0 {
            Ok(0.0)
        } else if cfg.exact {
            Ok(adjstream_graph::exact::count_triangles(&g) as f64)
        } else {
            let mut acc = cfg.acc;
            acc.seed ^= (window as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let order = StreamOrder::natural(g.vertex_count());
            try_estimate_triangles_auto(&g, &order, acc).map(|est| est.count)
        };
        reports.push(WindowReport {
            window,
            ts_start: start,
            ts_end: end,
            events: events.len(),
            edges: g.edge_count(),
            estimate,
        });
        window += 1;
        start = start.saturating_add(cfg.stride);
    }
    reports
}

#[cfg(test)]
mod tests {
    use super::*;
    use adjstream_graph::{exact, gen, VertexId};
    use adjstream_stream::update::{churn, ChurnConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ev(op: UpdateOp, u: u32, v: u32, ts: u64) -> UpdateEvent {
        UpdateEvent {
            op,
            edge: EdgeKey::new(VertexId(u), VertexId(v)),
            ts,
        }
    }

    /// The incremental count tracks a full churn replay exactly.
    #[test]
    fn exact_dynamic_matches_recount() {
        let mut rng = StdRng::seed_from_u64(21);
        let g = gen::gnm(40, 180, &mut rng);
        let stream = churn(
            &g,
            &ChurnConfig {
                churn_events: 400,
                delete_fraction: 0.5,
                seed: 2,
            },
        );
        let mut alg = ExactDynamicTriangles::new();
        for e in stream.events() {
            alg.apply(e);
        }
        let final_g = window_graph(stream.events());
        assert_eq!(alg.edges(), final_g.edge_count());
        assert_eq!(alg.triangles(), exact::count_triangles(&final_g));
    }

    /// Duplicate inserts and deletes of dead edges are no-ops.
    #[test]
    fn exact_dynamic_tolerates_invalid_updates() {
        let mut alg = ExactDynamicTriangles::new();
        alg.delete(EdgeKey::new(VertexId(0), VertexId(1)), 0);
        for (u, v) in [(0, 1), (1, 2), (0, 2), (0, 1)] {
            alg.insert(EdgeKey::new(VertexId(u), VertexId(v)), 0);
        }
        assert_eq!(alg.triangles(), 1);
        assert_eq!(alg.edges(), 3);
        alg.delete(EdgeKey::new(VertexId(5), VertexId(9)), 1);
        assert_eq!(alg.triangles(), 1);
        alg.delete(EdgeKey::new(VertexId(0), VertexId(1)), 2);
        assert_eq!(alg.triangles(), 0);
        alg.delete(EdgeKey::new(VertexId(0), VertexId(1)), 3);
        assert_eq!((alg.triangles(), alg.edges()), (0, 2));
    }

    /// Window slicing, window-local delete semantics, and exact counts.
    #[test]
    fn windows_are_local_and_exact_mode_counts() {
        // ts 0..3: a triangle; ts 10: delete one of its edges (outside
        // any insert in the second window → no-op there); ts 11-13: a
        // fresh triangle.
        let stream = UpdateStream::new(vec![
            ev(UpdateOp::Insert, 0, 1, 0),
            ev(UpdateOp::Insert, 1, 2, 1),
            ev(UpdateOp::Insert, 0, 2, 2),
            ev(UpdateOp::Delete, 0, 1, 10),
            ev(UpdateOp::Insert, 3, 4, 11),
            ev(UpdateOp::Insert, 4, 5, 12),
            ev(UpdateOp::Insert, 3, 5, 13),
        ]);
        let cfg = WindowConfig {
            width: 10,
            stride: 10,
            acc: Accuracy::default(),
            exact: true,
        };
        let reports = windowed_estimates(&stream, &cfg);
        assert_eq!(reports.len(), 2);
        assert_eq!((reports[0].ts_start, reports[0].ts_end), (0, 10));
        assert_eq!(reports[0].events, 3);
        assert_eq!(reports[0].edges, 3);
        assert_eq!(*reports[0].estimate.as_ref().unwrap(), 1.0);
        // Second window: the delete at ts=10 has no in-window insert to
        // cancel — window-local no-op — and the fresh triangle stands.
        assert_eq!(reports[1].events, 4);
        assert_eq!(reports[1].edges, 3);
        assert_eq!(*reports[1].estimate.as_ref().unwrap(), 1.0);
    }

    /// Estimator mode re-feeds the two-pass estimator per window and its
    /// (ε, δ) envelope holds around the exact per-window counts.
    #[test]
    fn windowed_estimator_tracks_exact() {
        let g = gen::disjoint_cliques(6, 10);
        let stream = churn(
            &g,
            &ChurnConfig {
                churn_events: 0,
                delete_fraction: 0.0,
                seed: 4,
            },
        );
        let acc = Accuracy {
            epsilon: 0.1,
            delta: 0.1,
            seed: 12,
            ..Accuracy::default()
        };
        let cfg = WindowConfig {
            width: stream.len() as u64,
            stride: stream.len() as u64,
            acc,
            exact: false,
        };
        let exact_cfg = WindowConfig {
            width: stream.len() as u64,
            stride: stream.len() as u64,
            acc: Accuracy::default(),
            exact: true,
        };
        let est = &windowed_estimates(&stream, &cfg)[0];
        let truth = *windowed_estimates(&stream, &exact_cfg)[0]
            .estimate
            .as_ref()
            .unwrap();
        let got = *est.estimate.as_ref().unwrap();
        assert!(truth > 0.0);
        assert!(
            (got - truth).abs() <= 0.5 * truth,
            "windowed estimate {got} vs exact {truth}"
        );
        // Empty stream: no windows at all.
        assert!(windowed_estimates(&UpdateStream::default(), &cfg).is_empty());
    }
}

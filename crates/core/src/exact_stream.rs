//! Trivial exact streaming counters (the `O(m)`-space baseline row).
//!
//! Every sublinear bound in Table 1 is measured against "just store the
//! graph": buffer all edges in one pass, then count offline with the exact
//! counters. These are also the per-run ground truth for the experiment
//! harness when the workload's cycle count is not known by construction.

use adjstream_graph::{exact, GraphBuilder, VertexId};
use adjstream_stream::hashing::FastSet;
use adjstream_stream::meter::{hashset_bytes, SpaceUsage};
use adjstream_stream::runner::MultiPassAlgorithm;

use crate::common::{pack_pair, unpack_pair};

/// Which subgraph the exact counter reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExactKind {
    /// Triangles.
    Triangles,
    /// 4-cycles.
    FourCycles,
    /// Cycles of the given length (≥ 3).
    Cycles(usize),
}

/// One-pass exact counter that stores every edge (`O(m log n)` bits).
pub struct ExactStreamCounter {
    kind: ExactKind,
    edges: FastSet<u64>,
    max_vertex: u32,
}

impl ExactStreamCounter {
    /// Exact counter for the given subgraph kind.
    pub fn new(kind: ExactKind) -> Self {
        if let ExactKind::Cycles(len) = kind {
            assert!(len >= 3, "cycles have length >= 3");
        }
        ExactStreamCounter {
            kind,
            edges: FastSet::default(),
            max_vertex: 0,
        }
    }
}

impl SpaceUsage for ExactStreamCounter {
    fn space_bytes(&self) -> usize {
        hashset_bytes(&self.edges) + 8
    }
}

impl MultiPassAlgorithm for ExactStreamCounter {
    type Output = u64;

    fn passes(&self) -> usize {
        1
    }

    fn begin_pass(&mut self, _pass: usize) {}

    fn item(&mut self, src: VertexId, dst: VertexId) {
        self.edges.insert(pack_pair(src, dst));
        self.max_vertex = self.max_vertex.max(src.0).max(dst.0);
    }

    fn finish(self) -> u64 {
        if self.edges.is_empty() {
            return 0;
        }
        let n = self.max_vertex as usize + 1;
        let mut b = GraphBuilder::with_capacity(n, self.edges.len());
        for &key in &self.edges {
            let (u, v) = unpack_pair(key);
            b.add_edge(u, v).expect("stream edges are valid");
        }
        let g = b.build().expect("valid edges");
        match self.kind {
            ExactKind::Triangles => exact::count_triangles(&g),
            ExactKind::FourCycles => exact::count_four_cycles(&g),
            ExactKind::Cycles(len) => exact::count_cycles(&g, len),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adjstream_graph::gen;
    use adjstream_stream::{PassOrders, Runner, StreamOrder};

    #[test]
    fn exact_triangles_match() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(4);
        let g = gen::gnm(50, 250, &mut rng);
        let truth = adjstream_graph::exact::count_triangles(&g);
        let (got, report) = Runner::run(
            &g,
            ExactStreamCounter::new(ExactKind::Triangles),
            &PassOrders::Same(StreamOrder::shuffled(50, 1)),
        );
        assert_eq!(got, truth);
        // Linear space: proportional to m.
        assert!(report.peak_state_bytes >= g.edge_count() * 8);
    }

    #[test]
    fn exact_four_cycles_match() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        let g = gen::gnm(30, 120, &mut rng);
        let truth = adjstream_graph::exact::count_four_cycles(&g);
        let (got, _) = Runner::run(
            &g,
            ExactStreamCounter::new(ExactKind::FourCycles),
            &PassOrders::Same(StreamOrder::reversed(30)),
        );
        assert_eq!(got, truth);
    }

    #[test]
    fn exact_long_cycles_match() {
        let g = gen::disjoint_cycles(6, 4);
        let (got, _) = Runner::run(
            &g,
            ExactStreamCounter::new(ExactKind::Cycles(6)),
            &PassOrders::Same(StreamOrder::natural(g.vertex_count())),
        );
        assert_eq!(got, 4);
    }

    #[test]
    fn empty_graph_counts_zero() {
        let g = adjstream_graph::Graph::empty(5);
        let (got, _) = Runner::run(
            &g,
            ExactStreamCounter::new(ExactKind::Triangles),
            &PassOrders::Same(StreamOrder::natural(5)),
        );
        assert_eq!(got, 0);
    }
}

//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in environments with no crates.io access, so the
//! external `rand` dependency is replaced by this vendored shim exposing
//! exactly the subset the repository uses: [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], the [`Rng`] base trait, the [`RngExt`] extension
//! methods (`random`, `random_range`), and [`seq::SliceRandom::shuffle`].
//!
//! The generator is SplitMix64 — statistically solid for the simulation
//! workloads here and fully deterministic from a `u64` seed, which is all
//! the repository's experiments require. It makes no attempt to be
//! cryptographically secure or to reproduce upstream `StdRng`'s exact
//! output sequence.

#![warn(missing_docs)]

/// A source of random 64-bit words.
pub trait Rng {
    /// Next pseudo-random 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next pseudo-random 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Derive a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly by [`RngExt::random`].
pub trait Random: Sized {
    /// Draw a uniform value.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Random for u64 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Random for usize {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Random for bool {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that [`RngExt::random_range`] can sample from.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draw a uniform value from the range. Panics if the range is empty.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Uniform draw from `[0, bound)` without modulo bias (Lemire's method).
#[inline]
fn bounded_u64<R: Rng + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(bound as u128);
        let low = m as u64;
        if low >= bound || low >= bound.wrapping_neg() % bound {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64) - (self.start as u64);
                self.start + bounded_u64(rng, span) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64) - (start as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + bounded_u64(rng, span + 1) as $t
            }
        }
    )*};
}

int_range!(u32, u64, usize);

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::random(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods, mirroring `rand`'s extension-trait split.
pub trait RngExt: Rng {
    /// Draw a uniform value of type `T`.
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// Draw a uniform value from `range`.
    fn random_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::random(self) < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    /// Alias kept for code written against `rand`'s small generator.
    pub type SmallRng = StdRng;
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngExt};

    /// In-place uniform shuffling of slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.random_range(10u32..20);
            assert!((10..20).contains(&x));
            let y = rng.random_range(0usize..3);
            assert!(y < 3);
            let f = rng.random::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn range_sampling_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.random_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..100).collect();
        let mut rng = StdRng::seed_from_u64(3);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely identity shuffle");
    }

    #[test]
    fn choose_picks_members() {
        let v = [5u32, 6, 7];
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}

//! Offline stand-in for the `criterion` crate.
//!
//! Implements the small API surface the workspace's benches use —
//! [`Criterion::benchmark_group`], per-group knobs, [`Bencher::iter`],
//! [`Throughput`], and the [`criterion_group!`]/[`criterion_main!`] macros —
//! with a simple wall-clock measurement loop: warm up, then run batches
//! until the measurement time elapses, and report the median batch rate.
//! No statistical analysis, plots, or HTML reports.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Units for reporting per-iteration throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        eprintln!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
            throughput: None,
        }
    }
}

/// A named collection of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up budget per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Report throughput in these units alongside time per iteration.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Measure `f`.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        // Warm-up: run until the warm-up budget is spent.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up_time {
            f(&mut b);
        }
        // Measurement: keep the last `sample_size` per-call rates.
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        let start = Instant::now();
        while start.elapsed() < self.measurement_time || samples.len() < self.sample_size {
            b.elapsed = Duration::ZERO;
            b.iters = 0;
            f(&mut b);
            if b.iters > 0 {
                samples.push(b.elapsed.as_secs_f64() / b.iters as f64);
            }
            if samples.len() >= self.sample_size && start.elapsed() >= self.measurement_time {
                break;
            }
            if samples.len() >= 4 * self.sample_size {
                break;
            }
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples.get(samples.len() / 2).copied().unwrap_or(0.0);
        let per_iter = Duration::from_secs_f64(median);
        match self.throughput {
            Some(Throughput::Elements(n)) if median > 0.0 => {
                eprintln!(
                    "  {name}: {per_iter:?}/iter, {:.3e} elem/s",
                    n as f64 / median
                );
            }
            Some(Throughput::Bytes(n)) if median > 0.0 => {
                eprintln!("  {name}: {per_iter:?}/iter, {:.3e} B/s", n as f64 / median);
            }
            _ => eprintln!("  {name}: {per_iter:?}/iter"),
        }
        self
    }

    /// End the group (report separator).
    pub fn finish(&mut self) {
        eprintln!();
    }
}

/// Passed to each benchmark closure; measures the timed inner loop.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Time repeated calls of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.elapsed += start.elapsed();
        self.iters += 1;
    }
}

/// Opaque value sink preventing the optimizer from deleting the benchmark.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(2)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1))
            .throughput(Throughput::Elements(10));
        let mut runs = 0u64;
        g.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        g.finish();
        assert!(runs > 0);
    }
}

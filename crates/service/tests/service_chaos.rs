//! Seeded chaos + overload harness for the resident estimation service.
//!
//! Every injected failure — worker panics, truncated checkpoints, client
//! disconnects, deadline expiry, preemption, drain/restart — must map to
//! a *typed* job state (`queued/running/suspended/degraded/failed/done`)
//! and never wedge the daemon. Overload must produce an immediate typed
//! `Rejected{reason}` while resident state stays bounded.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use adjstream_graph::gen;
use adjstream_service::json::{parse, Json};
use adjstream_service::{Server, ServerHandle, ServiceConfig};
use adjstream_stream::trace::ItemTrace;
use adjstream_stream::{AdjListStream, StreamOrder};

/// Harness seed: every job seed below is drawn from this one stream so a
/// failing run is reproducible from a single number.
const HARNESS_SEED: u64 = 0xC4A05;

fn chaos_seed(i: u64) -> u64 {
    let mut x = HARNESS_SEED ^ (i.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1);
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("adjsvc-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_trace(dir: &Path) -> PathBuf {
    let g = gen::disjoint_cliques(4, 6);
    let items = AdjListStream::new(&g, StreamOrder::natural(g.vertex_count())).collect_items();
    let trace = ItemTrace::new(items).unwrap();
    let path = dir.join("g.adjb");
    let mut buf = Vec::new();
    trace.write_adjb(&mut buf).unwrap();
    std::fs::write(&path, buf).unwrap();
    path
}

/// Start a server over a fresh state dir with a registered trace `"g"`.
fn start(tag: &str, configure: impl FnOnce(&mut ServiceConfig)) -> (ServerHandle, PathBuf) {
    let dir = tmp_dir(tag);
    let trace = write_trace(&dir);
    let mut cfg = ServiceConfig::at(&dir);
    configure(&mut cfg);
    let socket = cfg.socket.clone();
    let handle = Server::start(cfg).unwrap();
    let reply = req(
        &socket,
        &format!(
            "{{\"op\":\"register\",\"name\":\"g\",\"path\":\"{}\"}}",
            trace.display()
        ),
    );
    assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "{reply}");
    (handle, socket)
}

/// One request line out, one response line back.
fn req(socket: &Path, line: &str) -> Json {
    let stream = UnixStream::connect(socket).expect("daemon socket accepts connections");
    let mut w = stream.try_clone().unwrap();
    writeln!(w, "{line}").unwrap();
    w.flush().unwrap();
    let mut reply = String::new();
    BufReader::new(stream).read_line(&mut reply).unwrap();
    parse(reply.trim()).expect("daemon speaks valid JSON")
}

fn submit(socket: &Path, extra: &str) -> Json {
    req(
        socket,
        &format!("{{\"op\":\"submit\",\"trace\":\"g\",\"t_lower\":10{extra}}}"),
    )
}

fn job_id(reply: &Json) -> String {
    reply
        .str_field("id")
        .unwrap_or_else(|| panic!("submit reply has an id: {reply}"))
        .to_string()
}

/// Poll `status` until the job is terminal; panics after 60 s.
fn wait_terminal(socket: &Path, id: &str) -> Json {
    let start = Instant::now();
    loop {
        let reply = req(socket, &format!("{{\"op\":\"status\",\"id\":\"{id}\"}}"));
        match reply.str_field("state") {
            Some("done" | "degraded" | "failed") => return reply,
            _ => {
                assert!(
                    start.elapsed() < Duration::from_secs(60),
                    "job {id} did not settle: {reply}"
                );
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

fn estimate_bits(reply: &Json) -> String {
    reply
        .get("result")
        .and_then(|r| r.str_field("estimate_bits"))
        .unwrap_or_else(|| panic!("done status carries estimate_bits: {reply}"))
        .to_string()
}

#[test]
fn overload_rejections_are_typed_immediate_and_bounded() {
    let (handle, socket) = start("overload", |cfg| {
        cfg.workers = 1;
        cfg.max_jobs = 3;
        cfg.memory_budget = Some(1000);
    });

    // Unknown traces are rejected before any admission accounting.
    let reply = req(&socket, "{\"op\":\"submit\",\"trace\":\"nope\"}");
    assert_eq!(reply.str_field("reason"), Some("unknown_trace"), "{reply}");

    // A job declaring more bytes than the daemon-wide budget is rejected.
    let a = submit(
        &socket,
        &format!(
            ",\"seed\":{},\"delay_ms_per_pass\":250,\"max_total_bytes\":800",
            chaos_seed(1)
        ),
    );
    assert_eq!(a.str_field("state"), Some("queued"), "{a}");
    let reply = submit(&socket, ",\"max_total_bytes\":800");
    assert_eq!(reply.str_field("reason"), Some("memory_budget"), "{reply}");

    // Fill the residency cap, then overload: the rejection must be typed
    // and immediate (no blocking on the running jobs, which take ~500 ms).
    for i in 2..4 {
        let ok = submit(
            &socket,
            &format!(",\"seed\":{},\"delay_ms_per_pass\":250", chaos_seed(i)),
        );
        assert_eq!(ok.str_field("state"), Some("queued"), "{ok}");
    }
    let before = Instant::now();
    let reply = submit(&socket, ",\"delay_ms_per_pass\":250");
    assert_eq!(reply.str_field("reason"), Some("too_many_jobs"), "{reply}");
    assert_eq!(reply.str_field("error"), Some("rejected"));
    assert!(
        before.elapsed() < Duration::from_millis(500),
        "rejection blocked for {:?}",
        before.elapsed()
    );

    // Resident (non-terminal) jobs never exceed the admission cap.
    let listing = req(&socket, "{\"op\":\"status\"}");
    let resident = listing
        .get("jobs")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .filter(|j| !matches!(j.str_field("state"), Some("done" | "degraded" | "failed")))
        .count();
    assert!(
        resident <= 3,
        "residency {resident} exceeds max_jobs: {listing}"
    );

    // A burst of rapid submissions only ever yields typed outcomes.
    let mut rejected = 0;
    for i in 0..40 {
        let reply = submit(&socket, &format!(",\"seed\":{}", chaos_seed(100 + i)));
        if reply.get("ok") == Some(&Json::Bool(true)) {
            assert_eq!(reply.str_field("state"), Some("queued"));
        } else {
            rejected += 1;
            let reason = reply
                .str_field("reason")
                .unwrap_or_else(|| panic!("untyped rejection: {reply}"));
            assert!(
                ["queue_full", "too_many_jobs", "memory_budget"].contains(&reason),
                "unexpected reason {reason}"
            );
        }
    }
    assert!(rejected > 0, "the burst never tripped admission control");
    let counters = handle.counters();
    assert!(counters.rejected >= rejected + 2);
    handle.shutdown();
}

#[test]
fn injected_worker_panic_maps_to_typed_failure() {
    let (handle, socket) = start("panic", |cfg| cfg.workers = 1);
    let reply = submit(
        &socket,
        &format!(",\"seed\":{},\"panic_in_pass\":1", chaos_seed(10)),
    );
    let id = job_id(&reply);
    let settled = wait_terminal(&socket, &id);
    assert_eq!(settled.str_field("state"), Some("failed"), "{settled}");
    assert_eq!(
        settled.str_field("reason"),
        Some("worker_panic"),
        "{settled}"
    );

    // The pool survives the panic: the next job on the same worker runs.
    let reply = submit(&socket, &format!(",\"seed\":{}", chaos_seed(11)));
    let settled = wait_terminal(&socket, &job_id(&reply));
    assert_eq!(settled.str_field("state"), Some("done"), "{settled}");
    let counters = handle.shutdown();
    assert_eq!(counters.failed, 1);
    assert_eq!(counters.completed, 1);
}

#[test]
fn deadline_expiry_maps_to_typed_failure() {
    let (handle, socket) = start("deadline", |cfg| cfg.workers = 1);
    let reply = submit(
        &socket,
        &format!(
            ",\"seed\":{},\"delay_ms_per_pass\":200,\"deadline_ms\":50",
            chaos_seed(20)
        ),
    );
    let settled = wait_terminal(&socket, &job_id(&reply));
    assert_eq!(settled.str_field("state"), Some("failed"), "{settled}");
    assert_eq!(settled.str_field("reason"), Some("deadline"), "{settled}");
    handle.shutdown();
}

#[test]
fn cancel_maps_to_typed_failure() {
    let (handle, socket) = start("cancel", |cfg| cfg.workers = 1);
    let reply = submit(
        &socket,
        &format!(",\"seed\":{},\"delay_ms_per_pass\":400", chaos_seed(30)),
    );
    let id = job_id(&reply);
    let reply = req(&socket, &format!("{{\"op\":\"cancel\",\"id\":\"{id}\"}}"));
    assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "{reply}");
    let settled = wait_terminal(&socket, &id);
    assert_eq!(settled.str_field("state"), Some("failed"), "{settled}");
    assert_eq!(settled.str_field("reason"), Some("cancelled"), "{settled}");
    handle.shutdown();
}

#[test]
fn client_disconnect_mid_job_is_tolerated() {
    let (handle, socket) = start("disconnect", |cfg| cfg.workers = 1);
    // Submit over a connection that is dropped without reading the reply —
    // the daemon must neither crash nor abandon the job.
    {
        let stream = UnixStream::connect(&socket).unwrap();
        let mut w = stream.try_clone().unwrap();
        writeln!(
            w,
            "{{\"op\":\"submit\",\"trace\":\"g\",\"t_lower\":10,\"seed\":{},\"delay_ms_per_pass\":100}}",
            chaos_seed(40)
        )
        .unwrap();
        w.flush().unwrap();
        // connection dropped here, mid-response
    }
    // The job is visible from a fresh connection and runs to completion.
    let start = Instant::now();
    loop {
        let listing = req(&socket, "{\"op\":\"status\"}");
        let jobs = listing.get("jobs").and_then(Json::as_arr).unwrap().to_vec();
        if jobs.iter().any(|j| j.str_field("state") == Some("done")) {
            break;
        }
        assert!(
            start.elapsed() < Duration::from_secs(60),
            "orphaned job never settled: {listing}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    let counters = handle.shutdown();
    assert_eq!(counters.completed, 1);
}

#[test]
fn preemption_suspends_and_resumes_lower_priority_work() {
    let (handle, socket) = start("preempt", |cfg| cfg.workers = 1);
    let low = submit(
        &socket,
        &format!(
            ",\"seed\":{},\"priority\":2,\"delay_ms_per_pass\":300",
            chaos_seed(50)
        ),
    );
    let low_id = job_id(&low);
    // Let the low-priority job occupy the only worker, then outrank it.
    std::thread::sleep(Duration::from_millis(80));
    let high = submit(
        &socket,
        &format!(",\"seed\":{},\"priority\":8", chaos_seed(51)),
    );
    let high_done = wait_terminal(&socket, &job_id(&high));
    assert_eq!(high_done.str_field("state"), Some("done"), "{high_done}");
    let low_done = wait_terminal(&socket, &low_id);
    assert_eq!(low_done.str_field("state"), Some("done"), "{low_done}");
    let counters = handle.shutdown();
    assert!(
        counters.suspended >= 1,
        "the low-priority job was never preempted: {counters:?}"
    );
}

#[test]
fn drain_restart_resumes_bit_identical_and_truncation_recomputes() {
    // Uninterrupted baseline for this (trace, seed, t_lower) triple.
    let seed = chaos_seed(60);
    let (handle, socket) = start("ckpt-base", |cfg| cfg.workers = 1);
    let reply = submit(&socket, &format!(",\"seed\":{seed}"));
    let baseline = estimate_bits(&wait_terminal(&socket, &job_id(&reply)));
    handle.shutdown();

    // Interrupted run: drain once the pass-boundary checkpoint exists.
    let (handle, socket) = start("ckpt", |cfg| cfg.workers = 1);
    let dir = socket.parent().unwrap().to_path_buf();
    let reply = submit(
        &socket,
        &format!(",\"seed\":{seed},\"delay_ms_per_pass\":300"),
    );
    let id = job_id(&reply);
    let ckpt = dir.join(format!("job-{id}.ckpt"));
    let start = Instant::now();
    while !ckpt.exists() {
        assert!(
            start.elapsed() < Duration::from_secs(60),
            "boundary checkpoint never appeared"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    let counters = handle.shutdown();
    assert!(
        counters.suspended >= 1,
        "drain suspended nothing: {counters:?}"
    );

    // Restart: recovery requeues the suspended job; the resumed estimate
    // must be bit-for-bit the uninterrupted one.
    let mut cfg = ServiceConfig::at(&dir);
    cfg.workers = 1;
    let socket = cfg.socket.clone();
    let handle = Server::start(cfg).unwrap();
    let resumed = wait_terminal(&socket, &id);
    assert_eq!(resumed.str_field("state"), Some("done"), "{resumed}");
    assert_eq!(estimate_bits(&resumed), baseline, "resume diverged");
    let counters = handle.counters();
    assert_eq!(counters.recovered, 1);
    assert_eq!(counters.resumed, 1);

    // Now corrupt a checkpoint: drain another job mid-flight, truncate its
    // checkpoint, and restart. The damaged file must be discarded and the
    // job recomputed from scratch — same bits, no resume.
    let reply = submit(
        &socket,
        &format!(",\"seed\":{seed},\"delay_ms_per_pass\":300"),
    );
    let id2 = job_id(&reply);
    let ckpt2 = dir.join(format!("job-{id2}.ckpt"));
    let start = Instant::now();
    while !ckpt2.exists() {
        assert!(
            start.elapsed() < Duration::from_secs(60),
            "second boundary checkpoint never appeared"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    handle.shutdown();
    let bytes = std::fs::read(&ckpt2).unwrap();
    std::fs::write(&ckpt2, &bytes[..bytes.len() / 2]).unwrap();

    let mut cfg = ServiceConfig::at(&dir);
    cfg.workers = 1;
    let socket = cfg.socket.clone();
    let handle = Server::start(cfg).unwrap();
    let recomputed = wait_terminal(&socket, &id2);
    assert_eq!(recomputed.str_field("state"), Some("done"), "{recomputed}");
    assert_eq!(estimate_bits(&recomputed), baseline, "recompute diverged");
    let resumed_from = recomputed
        .get("result")
        .and_then(|r| r.get("resumed_from"))
        .cloned();
    assert_eq!(
        resumed_from,
        Some(Json::Null),
        "a truncated checkpoint must not be resumed from"
    );
    handle.shutdown();
}

#[test]
fn sharded_triangle_jobs_are_shard_count_invariant() {
    let (handle, socket) = start("sharded", |cfg| {
        cfg.workers = 1;
    });

    // A zero shard count is a typed protocol error, not a wedge.
    let reply = submit(&socket, ",\"shards\":0");
    assert_eq!(reply.get("ok"), Some(&Json::Bool(false)), "{reply}");

    // The same seeded job at 2, 4, and 8 shards must settle done with
    // bit-identical estimates: the shard merge is exact, so N is purely a
    // deployment knob.
    let seed = chaos_seed(77);
    let mut bits = Vec::new();
    for shards in [2u64, 4, 8] {
        let reply = submit(&socket, &format!(",\"seed\":{seed},\"shards\":{shards}"));
        assert_eq!(reply.str_field("state"), Some("queued"), "{reply}");
        let done = wait_terminal(&socket, &job_id(&reply));
        assert_eq!(done.str_field("state"), Some("done"), "{done}");
        bits.push(estimate_bits(&done));
    }
    assert_eq!(bits[0], bits[1], "2 shards vs 4 shards");
    assert_eq!(bits[1], bits[2], "4 shards vs 8 shards");
    handle.shutdown();
}

//! The daemon's job model: specs, lifecycle states, and on-disk manifests.
//!
//! A job is one estimation (or validation) request against a registered
//! trace. Its lifecycle is the typed state machine the chaos harness
//! asserts over:
//!
//! ```text
//! Queued ─→ Running ─→ Done
//!    ↑         │  ├──→ Degraded   (below-quorum survivors)
//!    │         │  └──→ Failed     (typed reason: panic, deadline, …)
//!    └──── Suspended  (preemption, drain, crash — resumable)
//! ```
//!
//! Every transition is persisted as a JSON *manifest* (`job-<id>.json`)
//! in the daemon's state directory, next to the job's pass-boundary
//! checkpoint (`job-<id>.ckpt`). After a crash the recovery scan rebuilds
//! the queue from manifests alone; checkpoints only accelerate the replay
//! (a missing or corrupt one costs a recompute, never a wrong answer).

use std::fmt;
use std::path::{Path, PathBuf};

use adjstream_stream::GuardPolicy;

use crate::json::{obj, parse, Json};

/// Job identifier: a dense sequence number, rendered as zero-padded hex so
/// manifests sort in submission order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl JobId {
    /// Parse the 16-hex-digit form produced by `Display`.
    pub fn parse(s: &str) -> Option<JobId> {
        if s.len() == 16 {
            u64::from_str_radix(s, 16).ok().map(JobId)
        } else {
            None
        }
    }

    /// Manifest path for this job under `state_dir`.
    pub fn manifest_path(&self, state_dir: &Path) -> PathBuf {
        state_dir.join(format!("job-{self}.json"))
    }

    /// Checkpoint path for this job under `state_dir`.
    pub fn checkpoint_path(&self, state_dir: &Path) -> PathBuf {
        state_dir.join(format!("job-{self}.ckpt"))
    }

    /// Per-batch report sidecar for update jobs under `state_dir`,
    /// written once when the job completes. The recovery chaos test
    /// compares these files bit-for-bit between interrupted and
    /// uninterrupted runs.
    pub fn batches_path(&self, state_dir: &Path) -> PathBuf {
        state_dir.join(format!("job-{self}.batches"))
    }
}

/// What the job computes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum JobKind {
    /// Theorem 3.7 two-pass triangle estimate with a `T ≥ t_lower` promise.
    Triangles {
        /// Lower bound on the triangle count.
        t_lower: u64,
    },
    /// Theorem 4.6 two-pass 4-cycle estimate with a `T ≥ t_lower` promise.
    FourCycles {
        /// Lower bound on the 4-cycle count.
        t_lower: u64,
    },
    /// Adjacency-list model conformance check of the trace itself.
    Validate,
    /// Fully-dynamic TRIÈST-FD triangle estimation over a registered
    /// update trace, driven in batches with a checkpoint at every batch
    /// boundary (the dynamic analogue of a pass boundary).
    Update {
        /// Events per batch; each boundary is a preemption/checkpoint
        /// point and yields one per-batch estimate delta.
        batch_size: usize,
        /// TRIÈST-FD reservoir capacity `M'` (at least 3).
        capacity: usize,
        /// How the update guard reacts to invalid events (dead deletes,
        /// duplicate inserts, timestamp regressions).
        guard: GuardPolicy,
    },
}

impl JobKind {
    fn name(&self) -> &'static str {
        match self {
            JobKind::Triangles { .. } => "triangles",
            JobKind::FourCycles { .. } => "four-cycles",
            JobKind::Validate => "validate",
            JobKind::Update { .. } => "update",
        }
    }
}

/// Per-job resource limits, mirroring the engine's `Budget` in plain
/// JSON-friendly units. Declared at submission; used both for admission
/// control (the scheduler sums declared bytes) and enforcement (the worker
/// arms the engine's budget with them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JobBudget {
    /// Per-instance state cap in bytes (quarantines single repetitions).
    pub max_instance_bytes: Option<usize>,
    /// Whole-job resident-state cap in bytes (aborts the job).
    pub max_total_bytes: Option<usize>,
    /// Wall-clock deadline in milliseconds, measured over the job's
    /// *cumulative* running time (suspension does not reset it).
    pub deadline_ms: Option<u64>,
}

/// Deterministic failure injection for the chaos harness. Both knobs are
/// plumbed end-to-end through the protocol so tests drive them over the
/// same socket a real client uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Chaos {
    /// Panic inside the worker right before running this (0-based) pass.
    pub panic_in_pass: Option<usize>,
    /// Sleep this long before each pass — widens the window for kill -9
    /// style interruption tests.
    pub delay_ms_per_pass: u64,
}

/// A submitted job: everything needed to (re)execute it from nothing.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Catalog name of the trace to run against.
    pub trace: String,
    /// What to compute.
    pub kind: JobKind,
    /// Accuracy target `ε` (triangles only; 4-cycles are constant-factor).
    pub epsilon: f64,
    /// Failure probability `δ` — sets the repetition count.
    pub delta: f64,
    /// Master seed; repetition `i` runs at `seed + i`.
    pub seed: u64,
    /// Scheduling priority, 0 (lowest) to 9; higher may preempt lower.
    pub priority: u8,
    /// Minimum surviving repetitions for a usable median (`None`: quorum).
    pub min_survivors: Option<usize>,
    /// Resource limits.
    pub budget: JobBudget,
    /// Failure injection.
    pub chaos: Chaos,
    /// Collect a [`MetricsSnapshot`](adjstream_stream::MetricsSnapshot)
    /// for this job and fold it into the daemon's aggregate.
    pub collect_metrics: bool,
    /// Graph shards for triangles jobs (1 = unsharded). Sharded
    /// repetitions partition the trace by list-owner vertex and merge
    /// per-shard state at every pass boundary — the estimate is
    /// bit-identical to the unsharded sharded-estimator run. Preemption
    /// and chaos are observed between repetitions, not mid-pass.
    pub shards: usize,
}

impl Default for JobSpec {
    fn default() -> Self {
        JobSpec {
            trace: String::new(),
            kind: JobKind::Validate,
            epsilon: 0.25,
            delta: 0.1,
            seed: 2019,
            priority: 4,
            min_survivors: None,
            budget: JobBudget::default(),
            chaos: Chaos::default(),
            collect_metrics: false,
            shards: 1,
        }
    }
}

/// Result payload of a finished estimation.
#[derive(Debug, Clone, PartialEq)]
pub struct JobResult {
    /// The median estimate. For `Validate` jobs, the item count.
    pub estimate: f64,
    /// Exact bit pattern of `estimate` — the chaos and recovery tests
    /// compare this, so "bit-for-bit" is literal.
    pub estimate_bits: u64,
    /// Repetitions that survived quarantine.
    pub survivors: usize,
    /// Total repetitions run.
    pub repetitions: usize,
    /// Stream passes executed (2 for the two-pass algorithms).
    pub passes: usize,
    /// `Some(p)` when the final segment resumed from a checkpoint taken
    /// after `p` passes.
    pub resumed_from: Option<usize>,
}

impl JobResult {
    fn to_json(&self) -> Json {
        obj(vec![
            ("estimate", Json::Num(self.estimate)),
            (
                "estimate_bits",
                Json::Str(format!("{:016x}", self.estimate_bits)),
            ),
            ("survivors", Json::Num(self.survivors as f64)),
            ("repetitions", Json::Num(self.repetitions as f64)),
            ("passes", Json::Num(self.passes as f64)),
            (
                "resumed_from",
                match self.resumed_from {
                    Some(p) => Json::Num(p as f64),
                    None => Json::Null,
                },
            ),
        ])
    }

    fn from_json(v: &Json) -> Option<JobResult> {
        Some(JobResult {
            estimate: v.f64_field("estimate")?,
            estimate_bits: u64::from_str_radix(v.str_field("estimate_bits")?, 16).ok()?,
            survivors: v.u64_field("survivors")? as usize,
            repetitions: v.u64_field("repetitions")? as usize,
            passes: v.u64_field("passes")? as usize,
            resumed_from: v
                .get("resumed_from")
                .and_then(Json::as_u64)
                .map(|p| p as usize),
        })
    }
}

/// The typed lifecycle state every failure mode maps onto.
#[derive(Debug, Clone, PartialEq)]
pub enum JobState {
    /// Admitted, waiting for a worker.
    Queued,
    /// Executing; `pass` is the next pass to run.
    Running {
        /// Next (0-based) pass the worker will execute.
        pass: usize,
    },
    /// Interrupted at a pass boundary with a checkpoint on disk;
    /// resumable bit-for-bit.
    Suspended {
        /// Completed passes at the checkpoint.
        pass: usize,
        /// Why the job was suspended (`drain`, `preempted`, `crash`).
        reason: String,
    },
    /// Finished, but below the survivor quorum: the median exists yet the
    /// amplified confidence does not.
    Degraded {
        /// Surviving repetitions.
        survivors: usize,
        /// The quorum it needed.
        required: usize,
    },
    /// Terminal failure with a typed reason (`worker_panic`, `deadline`,
    /// `cancelled`, `invalid_stream`, …).
    Failed {
        /// Machine-readable reason slug.
        reason: String,
        /// Human-readable detail.
        detail: String,
    },
    /// Completed successfully.
    Done {
        /// The result payload.
        result: JobResult,
    },
}

impl JobState {
    /// Short state name used on the wire and in manifests.
    pub fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running { .. } => "running",
            JobState::Suspended { .. } => "suspended",
            JobState::Degraded { .. } => "degraded",
            JobState::Failed { .. } => "failed",
            JobState::Done { .. } => "done",
        }
    }

    /// Whether the state is terminal (no further transitions).
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobState::Done { .. } | JobState::Failed { .. } | JobState::Degraded { .. }
        )
    }
}

/// A job's full persistent record: spec + current state.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// The job's identifier.
    pub id: JobId,
    /// The submitted spec.
    pub spec: JobSpec,
    /// Current lifecycle state.
    pub state: JobState,
}

impl JobRecord {
    /// Serialize to the manifest JSON document.
    pub fn to_json(&self) -> Json {
        let spec = &self.spec;
        let mut kind_fields = vec![("kind", Json::Str(spec.kind.name().to_string()))];
        match spec.kind {
            JobKind::Triangles { t_lower } | JobKind::FourCycles { t_lower } => {
                kind_fields.push(("t_lower", Json::Num(t_lower as f64)));
            }
            JobKind::Validate => {}
            JobKind::Update {
                batch_size,
                capacity,
                guard,
            } => {
                kind_fields.push(("batch_size", Json::Num(batch_size as f64)));
                kind_fields.push(("capacity", Json::Num(capacity as f64)));
                kind_fields.push(("guard", Json::Str(guard.to_string())));
            }
        }
        let mut fields = vec![("id", Json::Str(self.id.to_string()))];
        fields.push(("trace", Json::Str(spec.trace.clone())));
        fields.extend(kind_fields);
        fields.extend([
            ("epsilon", Json::Num(spec.epsilon)),
            ("delta", Json::Num(spec.delta)),
            ("seed", Json::Num(spec.seed as f64)),
            ("priority", Json::Num(spec.priority as f64)),
            (
                "min_survivors",
                match spec.min_survivors {
                    Some(s) => Json::Num(s as f64),
                    None => Json::Null,
                },
            ),
            (
                "max_instance_bytes",
                match spec.budget.max_instance_bytes {
                    Some(b) => Json::Num(b as f64),
                    None => Json::Null,
                },
            ),
            (
                "max_total_bytes",
                match spec.budget.max_total_bytes {
                    Some(b) => Json::Num(b as f64),
                    None => Json::Null,
                },
            ),
            (
                "deadline_ms",
                match spec.budget.deadline_ms {
                    Some(d) => Json::Num(d as f64),
                    None => Json::Null,
                },
            ),
            (
                "panic_in_pass",
                match spec.chaos.panic_in_pass {
                    Some(p) => Json::Num(p as f64),
                    None => Json::Null,
                },
            ),
            (
                "delay_ms_per_pass",
                Json::Num(spec.chaos.delay_ms_per_pass as f64),
            ),
            ("collect_metrics", Json::Bool(spec.collect_metrics)),
            ("shards", Json::Num(spec.shards as f64)),
            ("state", Json::Str(self.state.name().to_string())),
        ]);
        match &self.state {
            JobState::Running { pass } => fields.push(("pass", Json::Num(*pass as f64))),
            JobState::Suspended { pass, reason } => {
                fields.push(("pass", Json::Num(*pass as f64)));
                fields.push(("reason", Json::Str(reason.clone())));
            }
            JobState::Degraded {
                survivors,
                required,
            } => {
                fields.push(("survivors", Json::Num(*survivors as f64)));
                fields.push(("required", Json::Num(*required as f64)));
            }
            JobState::Failed { reason, detail } => {
                fields.push(("reason", Json::Str(reason.clone())));
                fields.push(("detail", Json::Str(detail.clone())));
            }
            JobState::Done { result } => fields.push(("result", result.to_json())),
            JobState::Queued => {}
        }
        obj(fields)
    }

    /// Parse a manifest document; `None` on any structural mismatch (a
    /// recovery scan skips such files rather than refusing to start).
    pub fn from_json(v: &Json) -> Option<JobRecord> {
        let id = JobId::parse(v.str_field("id")?)?;
        let t_lower = v.u64_field("t_lower");
        let kind = match v.str_field("kind")? {
            "triangles" => JobKind::Triangles { t_lower: t_lower? },
            "four-cycles" => JobKind::FourCycles { t_lower: t_lower? },
            "validate" => JobKind::Validate,
            "update" => JobKind::Update {
                batch_size: v.u64_field("batch_size")? as usize,
                capacity: v.u64_field("capacity")? as usize,
                guard: GuardPolicy::parse(v.str_field("guard")?)?,
            },
            _ => return None,
        };
        let spec = JobSpec {
            trace: v.str_field("trace")?.to_string(),
            kind,
            epsilon: v.f64_field("epsilon")?,
            delta: v.f64_field("delta")?,
            seed: v.u64_field("seed")?,
            priority: v.u64_field("priority")?.min(9) as u8,
            min_survivors: v
                .get("min_survivors")
                .and_then(Json::as_u64)
                .map(|s| s as usize),
            budget: JobBudget {
                max_instance_bytes: v
                    .get("max_instance_bytes")
                    .and_then(Json::as_u64)
                    .map(|b| b as usize),
                max_total_bytes: v
                    .get("max_total_bytes")
                    .and_then(Json::as_u64)
                    .map(|b| b as usize),
                deadline_ms: v.get("deadline_ms").and_then(Json::as_u64),
            },
            chaos: Chaos {
                panic_in_pass: v
                    .get("panic_in_pass")
                    .and_then(Json::as_u64)
                    .map(|p| p as usize),
                delay_ms_per_pass: v.u64_field("delay_ms_per_pass").unwrap_or(0),
            },
            collect_metrics: v
                .get("collect_metrics")
                .and_then(Json::as_bool)
                .unwrap_or(false),
            // Manifests written before sharding landed have no field:
            // they were unsharded.
            shards: v.u64_field("shards").unwrap_or(1).max(1) as usize,
        };
        let state = match v.str_field("state")? {
            "queued" => JobState::Queued,
            "running" => JobState::Running {
                pass: v.u64_field("pass")? as usize,
            },
            "suspended" => JobState::Suspended {
                pass: v.u64_field("pass")? as usize,
                reason: v.str_field("reason")?.to_string(),
            },
            "degraded" => JobState::Degraded {
                survivors: v.u64_field("survivors")? as usize,
                required: v.u64_field("required")? as usize,
            },
            "failed" => JobState::Failed {
                reason: v.str_field("reason")?.to_string(),
                detail: v.str_field("detail").unwrap_or("").to_string(),
            },
            "done" => JobState::Done {
                result: JobResult::from_json(v.get("result")?)?,
            },
            _ => return None,
        };
        Some(JobRecord { id, spec, state })
    }

    /// Atomically persist the manifest under `state_dir` (write to a temp
    /// sibling, then rename — the same crash discipline the checkpoint
    /// container uses).
    pub fn persist(&self, state_dir: &Path) -> std::io::Result<()> {
        let path = self.id.manifest_path(state_dir);
        let tmp = path.with_extension("json.tmp");
        std::fs::write(&tmp, format!("{}\n", self.to_json()))?;
        std::fs::rename(&tmp, &path)
    }

    /// Load one manifest file; `None` if unreadable or malformed.
    pub fn load(path: &Path) -> Option<JobRecord> {
        let text = std::fs::read_to_string(path).ok()?;
        JobRecord::from_json(&parse(&text).ok()?)
    }
}

/// Whether `path` is a checkpoint file whose job no longer needs it —
/// the liveness predicate of the daemon's stale-checkpoint GC.
///
/// A `.ckpt` is a GC candidate when its sibling manifest is missing
/// (orphan) **or** parses to a terminal state (`done`/`failed`/
/// `degraded`): a finished job never resumes, so its checkpoint is dead
/// weight the moment the manifest records the terminal transition. A
/// manifest that exists but cannot be parsed keeps the checkpoint — GC
/// must never make recovery worse than doing nothing.
///
/// The old predicate (`!path.with_extension("json").exists()`) treated
/// *any* sibling manifest as live, so checkpoints of completed jobs were
/// retained forever alongside their manifests.
pub fn stale_checkpoint_candidate(path: &Path) -> bool {
    if path.extension().is_none_or(|e| e != "ckpt") {
        return false;
    }
    let manifest = path.with_extension("json");
    if !manifest.exists() {
        return true; // orphan: no manifest will ever resume it
    }
    match JobRecord::load(&manifest) {
        Some(rec) => rec.state.is_terminal(),
        None => false, // unreadable manifest: be conservative, keep
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> JobSpec {
        JobSpec {
            trace: "web".into(),
            kind: JobKind::Triangles { t_lower: 240 },
            epsilon: 0.3,
            delta: 0.2,
            seed: 5,
            priority: 7,
            min_survivors: Some(3),
            budget: JobBudget {
                max_instance_bytes: Some(1 << 20),
                max_total_bytes: None,
                deadline_ms: Some(30_000),
            },
            chaos: Chaos {
                panic_in_pass: Some(1),
                delay_ms_per_pass: 25,
            },
            collect_metrics: true,
            shards: 3,
        }
    }

    #[test]
    fn job_id_round_trips() {
        let id = JobId(0xdead_beef);
        assert_eq!(JobId::parse(&id.to_string()), Some(id));
        assert_eq!(JobId::parse("xyz"), None);
        assert_eq!(JobId::parse("00000000deadbeef"), Some(id));
    }

    #[test]
    fn manifest_round_trips_every_state() {
        let states = vec![
            JobState::Queued,
            JobState::Running { pass: 1 },
            JobState::Suspended {
                pass: 1,
                reason: "drain".into(),
            },
            JobState::Degraded {
                survivors: 2,
                required: 5,
            },
            JobState::Failed {
                reason: "worker_panic".into(),
                detail: "chaos: injected".into(),
            },
            JobState::Done {
                result: JobResult {
                    estimate: 239.874,
                    estimate_bits: 239.874f64.to_bits(),
                    survivors: 9,
                    repetitions: 9,
                    passes: 2,
                    resumed_from: Some(1),
                },
            },
        ];
        for state in states {
            let rec = JobRecord {
                id: JobId(42),
                spec: spec(),
                state,
            };
            let back = JobRecord::from_json(&rec.to_json()).expect("round trip");
            assert_eq!(back, rec);
        }
    }

    #[test]
    fn update_kind_round_trips() {
        for guard in [
            GuardPolicy::Strict,
            GuardPolicy::Repair,
            GuardPolicy::Observe,
        ] {
            let rec = JobRecord {
                id: JobId(9),
                spec: JobSpec {
                    kind: JobKind::Update {
                        batch_size: 64,
                        capacity: 500,
                        guard,
                    },
                    ..spec()
                },
                state: JobState::Suspended {
                    pass: 3,
                    reason: "crash".into(),
                },
            };
            let back = JobRecord::from_json(&rec.to_json()).expect("round trip");
            assert_eq!(back, rec);
        }
    }

    #[test]
    fn manifests_persist_and_load() {
        let dir = std::env::temp_dir().join(format!("adjsvc-job-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let rec = JobRecord {
            id: JobId(7),
            spec: spec(),
            state: JobState::Queued,
        };
        rec.persist(&dir).unwrap();
        let loaded = JobRecord::load(&rec.id.manifest_path(&dir)).unwrap();
        assert_eq!(loaded, rec);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Regression (issue 7): the GC liveness filter must parse manifest
    /// *state*, not just test manifest existence — terminal jobs'
    /// checkpoints are collectable, suspended jobs' are not, and garbage
    /// manifests keep their checkpoints.
    #[test]
    fn stale_candidate_parses_manifest_state() {
        let dir = std::env::temp_dir().join(format!("adjsvc-gc-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let persist = |id: u64, state: JobState| {
            let rec = JobRecord {
                id: JobId(id),
                spec: spec(),
                state,
            };
            rec.persist(&dir).unwrap();
            let ckpt = rec.id.checkpoint_path(&dir);
            std::fs::write(&ckpt, b"ckpt").unwrap();
            ckpt
        };
        // Orphan: no manifest at all.
        let orphan = JobId(1).checkpoint_path(&dir);
        std::fs::write(&orphan, b"ckpt").unwrap();
        assert!(stale_checkpoint_candidate(&orphan));
        // Terminal manifests release their checkpoints...
        let done = persist(
            2,
            JobState::Done {
                result: JobResult {
                    estimate: 1.0,
                    estimate_bits: 1.0f64.to_bits(),
                    survivors: 9,
                    repetitions: 9,
                    passes: 2,
                    resumed_from: None,
                },
            },
        );
        let failed = persist(
            3,
            JobState::Failed {
                reason: "deadline".into(),
                detail: String::new(),
            },
        );
        assert!(stale_checkpoint_candidate(&done));
        assert!(stale_checkpoint_candidate(&failed));
        // ...non-terminal manifests hold them...
        let suspended = persist(
            4,
            JobState::Suspended {
                pass: 1,
                reason: "drain".into(),
            },
        );
        let queued = persist(5, JobState::Queued);
        assert!(!stale_checkpoint_candidate(&suspended));
        assert!(!stale_checkpoint_candidate(&queued));
        // ...an unparseable manifest keeps its checkpoint (conservative)...
        let garbage = JobId(6).checkpoint_path(&dir);
        std::fs::write(&garbage, b"ckpt").unwrap();
        std::fs::write(JobId(6).manifest_path(&dir), b"{not json").unwrap();
        assert!(!stale_checkpoint_candidate(&garbage));
        // ...and non-checkpoint files are never candidates.
        assert!(!stale_checkpoint_candidate(&JobId(2).manifest_path(&dir)));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn terminal_states_are_terminal() {
        assert!(!JobState::Queued.is_terminal());
        assert!(!JobState::Running { pass: 0 }.is_terminal());
        assert!(!JobState::Suspended {
            pass: 1,
            reason: "drain".into()
        }
        .is_terminal());
        assert!(JobState::Degraded {
            survivors: 1,
            required: 2
        }
        .is_terminal());
        assert!(JobState::Failed {
            reason: "x".into(),
            detail: String::new()
        }
        .is_terminal());
    }
}

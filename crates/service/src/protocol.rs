//! The line-delimited JSON wire protocol of `adjstreamd`.
//!
//! One request per line, one response line per request, over a Unix
//! domain socket. Every response is an object whose first field is
//! `"ok"`; failures carry a machine-readable `"error"` slug plus a
//! human-readable `"detail"`. Overload is *typed*: a submission that
//! cannot be admitted gets an immediate `ok:false, error:"rejected"`
//! response with a [`RejectReason`] — the daemon never buffers without
//! bound.
//!
//! ```text
//! → {"op":"register","name":"web","path":"/data/web.adjb"}
//! ← {"ok":true,"name":"web","edges":120,"items":240}
//! → {"op":"submit","trace":"web","kind":"triangles","t_lower":240}
//! ← {"ok":true,"id":"0000000000000001","state":"queued"}
//! → {"op":"status","id":"0000000000000001"}
//! ← {"ok":true,"id":"0000000000000001","state":"done","result":{...}}
//! ```

use std::path::PathBuf;

use adjstream_stream::GuardPolicy;

use crate::job::{Chaos, JobBudget, JobId, JobKind, JobSpec};
use crate::json::{obj, parse, Json};

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Register a trace file under a catalog name.
    Register {
        /// Catalog name.
        name: String,
        /// Path to the `.adjb` file.
        path: PathBuf,
    },
    /// List registered traces.
    Traces,
    /// Submit a job.
    Submit(Box<JobSpec>),
    /// Job status: one job, or all jobs when `id` is `None`.
    Status {
        /// The job to report on, or `None` for all.
        id: Option<JobId>,
    },
    /// Cancel a queued, suspended, or running job.
    Cancel {
        /// The job to cancel.
        id: JobId,
    },
    /// Daemon-wide counters and the merged metrics snapshot.
    Metrics,
    /// Graceful shutdown: drain, checkpoint in-flight jobs, exit.
    Shutdown,
}

/// Typed reason a submission was refused at the door.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The bounded intake queue is full.
    QueueFull,
    /// The resident-job cap is reached.
    TooManyJobs,
    /// Admitting the job's declared byte budget would exceed the daemon's
    /// memory budget.
    MemoryBudget,
    /// The referenced trace is not in the catalog.
    UnknownTrace,
    /// The trace's bytes on disk no longer match the checksum recorded
    /// at registration (swapped, corrupted, or vanished).
    TraceChanged,
    /// The job kind does not match the trace kind (an `update` job needs
    /// an update trace; every other kind needs a static one).
    KindMismatch,
    /// The daemon is draining for shutdown.
    Draining,
}

impl RejectReason {
    /// Wire slug.
    pub fn slug(&self) -> &'static str {
        match self {
            RejectReason::QueueFull => "queue_full",
            RejectReason::TooManyJobs => "too_many_jobs",
            RejectReason::MemoryBudget => "memory_budget",
            RejectReason::UnknownTrace => "unknown_trace",
            RejectReason::TraceChanged => "trace_changed",
            RejectReason::KindMismatch => "kind_mismatch",
            RejectReason::Draining => "draining",
        }
    }
}

/// Parse one request line.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = parse(line.trim())?;
    let op = v.str_field("op").ok_or("missing \"op\" field")?;
    match op {
        "ping" => Ok(Request::Ping),
        "register" => Ok(Request::Register {
            name: v
                .str_field("name")
                .ok_or("register: missing \"name\"")?
                .to_string(),
            path: PathBuf::from(v.str_field("path").ok_or("register: missing \"path\"")?),
        }),
        "traces" => Ok(Request::Traces),
        "submit" => parse_submit(&v).map(|s| Request::Submit(Box::new(s))),
        "status" => {
            let id = match v.str_field("id") {
                Some(s) => Some(JobId::parse(s).ok_or_else(|| format!("bad job id {s:?}"))?),
                None => None,
            };
            Ok(Request::Status { id })
        }
        "cancel" => {
            let s = v.str_field("id").ok_or("cancel: missing \"id\"")?;
            let id = JobId::parse(s).ok_or_else(|| format!("bad job id {s:?}"))?;
            Ok(Request::Cancel { id })
        }
        "metrics" => Ok(Request::Metrics),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!("unknown op {other:?}")),
    }
}

fn parse_submit(v: &Json) -> Result<JobSpec, String> {
    let trace = v
        .str_field("trace")
        .ok_or("submit: missing \"trace\"")?
        .to_string();
    let kind = match v.str_field("kind").unwrap_or("triangles") {
        "triangles" => JobKind::Triangles {
            t_lower: v.u64_field("t_lower").unwrap_or(1),
        },
        "four-cycles" => JobKind::FourCycles {
            t_lower: v.u64_field("t_lower").unwrap_or(1),
        },
        "validate" => JobKind::Validate,
        "update" => {
            let batch_size = v.u64_field("batch_size").unwrap_or(256) as usize;
            if batch_size == 0 {
                return Err("batch_size must be positive".into());
            }
            let capacity = v.u64_field("capacity").unwrap_or(4096) as usize;
            if capacity < 3 {
                return Err(format!(
                    "capacity must be at least 3 reservoir slots, got {capacity}"
                ));
            }
            let guard = match v.str_field("guard") {
                Some(s) => {
                    GuardPolicy::parse(s).ok_or_else(|| format!("unknown guard policy {s:?}"))?
                }
                None => GuardPolicy::Repair,
            };
            JobKind::Update {
                batch_size,
                capacity,
                guard,
            }
        }
        other => return Err(format!("unknown kind {other:?}")),
    };
    let defaults = JobSpec::default();
    let epsilon = v.f64_field("epsilon").unwrap_or(defaults.epsilon);
    if !(epsilon.is_finite() && epsilon > 0.0) {
        return Err(format!(
            "epsilon must be positive and finite, got {epsilon}"
        ));
    }
    let delta = v.f64_field("delta").unwrap_or(defaults.delta);
    if !(delta > 0.0 && delta < 1.0) {
        return Err(format!("delta must be in (0, 1), got {delta}"));
    }
    let shards = v.u64_field("shards").unwrap_or(defaults.shards as u64);
    if shards == 0 {
        return Err("shards must be at least 1".to_string());
    }
    Ok(JobSpec {
        trace,
        kind,
        epsilon,
        delta,
        seed: v.u64_field("seed").unwrap_or(defaults.seed),
        priority: v
            .u64_field("priority")
            .unwrap_or(defaults.priority as u64)
            .min(9) as u8,
        min_survivors: v
            .get("min_survivors")
            .and_then(Json::as_u64)
            .map(|s| s as usize),
        budget: JobBudget {
            max_instance_bytes: v
                .get("max_instance_bytes")
                .and_then(Json::as_u64)
                .map(|b| b as usize),
            max_total_bytes: v
                .get("max_total_bytes")
                .and_then(Json::as_u64)
                .map(|b| b as usize),
            deadline_ms: v.get("deadline_ms").and_then(Json::as_u64),
        },
        chaos: Chaos {
            panic_in_pass: v
                .get("panic_in_pass")
                .and_then(Json::as_u64)
                .map(|p| p as usize),
            delay_ms_per_pass: v.u64_field("delay_ms_per_pass").unwrap_or(0),
        },
        collect_metrics: v
            .get("collect_metrics")
            .and_then(Json::as_bool)
            .unwrap_or(false),
        shards: shards as usize,
    })
}

/// An `ok:true` response with extra fields appended.
pub fn ok_response(fields: Vec<(&str, Json)>) -> String {
    let mut all = vec![("ok", Json::Bool(true))];
    all.extend(fields);
    obj(all).to_string()
}

/// A typed rejection: `ok:false, error:"rejected", reason:<slug>`.
pub fn reject_response(reason: RejectReason) -> String {
    obj(vec![
        ("ok", Json::Bool(false)),
        ("error", Json::Str("rejected".into())),
        ("reason", Json::Str(reason.slug().into())),
    ])
    .to_string()
}

/// A generic error response with a slug and human detail.
pub fn error_response(kind: &str, detail: &str) -> String {
    obj(vec![
        ("ok", Json::Bool(false)),
        ("error", Json::Str(kind.into())),
        ("detail", Json::Str(detail.into())),
    ])
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_op() {
        assert_eq!(parse_request(r#"{"op":"ping"}"#).unwrap(), Request::Ping);
        assert_eq!(
            parse_request(r#"{"op":"register","name":"web","path":"/tmp/w.adjb"}"#).unwrap(),
            Request::Register {
                name: "web".into(),
                path: PathBuf::from("/tmp/w.adjb"),
            }
        );
        assert_eq!(
            parse_request(r#"{"op":"traces"}"#).unwrap(),
            Request::Traces
        );
        assert_eq!(
            parse_request(r#"{"op":"status"}"#).unwrap(),
            Request::Status { id: None }
        );
        assert_eq!(
            parse_request(r#"{"op":"status","id":"0000000000000007"}"#).unwrap(),
            Request::Status { id: Some(JobId(7)) }
        );
        assert_eq!(
            parse_request(r#"{"op":"cancel","id":"0000000000000007"}"#).unwrap(),
            Request::Cancel { id: JobId(7) }
        );
        assert_eq!(
            parse_request(r#"{"op":"metrics"}"#).unwrap(),
            Request::Metrics
        );
        assert_eq!(
            parse_request(r#"{"op":"shutdown"}"#).unwrap(),
            Request::Shutdown
        );
    }

    #[test]
    fn submit_defaults_and_overrides() {
        let r = parse_request(r#"{"op":"submit","trace":"web","kind":"triangles","t_lower":240}"#)
            .unwrap();
        let Request::Submit(spec) = r else {
            panic!("not a submit")
        };
        assert_eq!(spec.kind, JobKind::Triangles { t_lower: 240 });
        assert_eq!(spec.epsilon, 0.25);
        assert_eq!(spec.priority, 4);
        assert_eq!(spec.chaos, Chaos::default());

        let r = parse_request(
            r#"{"op":"submit","trace":"web","kind":"four-cycles","t_lower":8,"epsilon":0.5,
                "delta":0.2,"seed":7,"priority":9,"min_survivors":2,"max_instance_bytes":1024,
                "deadline_ms":5000,"panic_in_pass":1,"delay_ms_per_pass":40,"collect_metrics":true}"#,
        )
        .unwrap();
        let Request::Submit(spec) = r else {
            panic!("not a submit")
        };
        assert_eq!(spec.kind, JobKind::FourCycles { t_lower: 8 });
        assert_eq!(spec.priority, 9);
        assert_eq!(spec.min_survivors, Some(2));
        assert_eq!(spec.budget.max_instance_bytes, Some(1024));
        assert_eq!(spec.budget.deadline_ms, Some(5000));
        assert_eq!(spec.chaos.panic_in_pass, Some(1));
        assert_eq!(spec.chaos.delay_ms_per_pass, 40);
        assert!(spec.collect_metrics);
    }

    #[test]
    fn submit_parses_update_jobs() {
        let r = parse_request(r#"{"op":"submit","trace":"web","kind":"update"}"#).unwrap();
        let Request::Submit(spec) = r else {
            panic!("not a submit")
        };
        assert_eq!(
            spec.kind,
            JobKind::Update {
                batch_size: 256,
                capacity: 4096,
                guard: GuardPolicy::Repair,
            }
        );

        let r = parse_request(
            r#"{"op":"submit","trace":"web","kind":"update","batch_size":50,
                "capacity":300,"guard":"strict"}"#,
        )
        .unwrap();
        let Request::Submit(spec) = r else {
            panic!("not a submit")
        };
        assert_eq!(
            spec.kind,
            JobKind::Update {
                batch_size: 50,
                capacity: 300,
                guard: GuardPolicy::Strict,
            }
        );
    }

    #[test]
    fn submit_rejects_bad_accuracy() {
        for bad in [
            r#"{"op":"submit","trace":"w","epsilon":0}"#,
            r#"{"op":"submit","trace":"w","delta":1}"#,
            r#"{"op":"submit","trace":"w","kind":"pentagons"}"#,
            r#"{"op":"submit","trace":"w","kind":"update","batch_size":0}"#,
            r#"{"op":"submit","trace":"w","kind":"update","capacity":2}"#,
            r#"{"op":"submit","trace":"w","kind":"update","guard":"lenient"}"#,
            r#"{"op":"submit"}"#,
        ] {
            assert!(parse_request(bad).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn responses_are_well_formed_json() {
        for s in [
            ok_response(vec![("id", Json::Str("x".into()))]),
            reject_response(RejectReason::QueueFull),
            error_response("bad_request", "missing op"),
        ] {
            let v = crate::json::parse(&s).unwrap();
            assert!(v.get("ok").is_some());
        }
        let r = crate::json::parse(&reject_response(RejectReason::MemoryBudget)).unwrap();
        assert_eq!(r.str_field("reason"), Some("memory_budget"));
        assert_eq!(r.get("ok"), Some(&Json::Bool(false)));
    }
}

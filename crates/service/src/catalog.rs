//! The trace catalog: named, validated `.adjb` traces jobs run against.
//!
//! Registration validates the trace eagerly (model conformance via
//! [`ItemTrace::read`]) and records its dimensions; jobs then refer to
//! traces by name, so a submission against a missing or since-deleted
//! trace is a typed rejection rather than a worker-side I/O surprise.
//! The catalog persists to `catalog.json` in the state directory and is
//! reloaded on startup — entries whose backing file vanished are dropped
//! with a warning rather than poisoning recovery.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use adjstream_stream::trace::ItemTrace;

use crate::json::{obj, parse, Json};

/// One registered trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CatalogEntry {
    /// Catalog name clients refer to.
    pub name: String,
    /// Filesystem path of the `.adjb` file.
    pub path: PathBuf,
    /// Distinct edges in the trace (each edge appears twice as items).
    pub edges: usize,
    /// Total stream items.
    pub items: usize,
}

/// Why a registration was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogError {
    /// The file could not be read or failed adjacency-list validation.
    InvalidTrace(String),
    /// The name is already registered to a different path.
    NameTaken(String),
}

impl std::fmt::Display for CatalogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CatalogError::InvalidTrace(m) => write!(f, "invalid trace: {m}"),
            CatalogError::NameTaken(n) => write!(f, "name already registered: {n}"),
        }
    }
}

/// The in-memory catalog with on-disk persistence.
pub struct Catalog {
    state_dir: PathBuf,
    entries: Mutex<HashMap<String, CatalogEntry>>,
}

impl Catalog {
    /// Open (or create) the catalog persisted under `state_dir`.
    pub fn open(state_dir: &Path) -> Catalog {
        let mut entries = HashMap::new();
        let file = state_dir.join("catalog.json");
        if let Ok(text) = std::fs::read_to_string(&file) {
            if let Ok(Json::Arr(items)) = parse(&text) {
                for item in &items {
                    let (Some(name), Some(path), Some(edges), Some(count)) = (
                        item.str_field("name"),
                        item.str_field("path"),
                        item.u64_field("edges"),
                        item.u64_field("items"),
                    ) else {
                        continue;
                    };
                    let path = PathBuf::from(path);
                    // A trace deleted while the daemon was down is dropped;
                    // jobs referencing it will fail typed, not crash.
                    if !path.exists() {
                        continue;
                    }
                    entries.insert(
                        name.to_string(),
                        CatalogEntry {
                            name: name.to_string(),
                            path,
                            edges: edges as usize,
                            items: count as usize,
                        },
                    );
                }
            }
        }
        Catalog {
            state_dir: state_dir.to_path_buf(),
            entries: Mutex::new(entries),
        }
    }

    /// Register `path` under `name`, validating the trace eagerly.
    /// Re-registering the same name with the same path is idempotent.
    pub fn register(&self, name: &str, path: &Path) -> Result<CatalogEntry, CatalogError> {
        let file = std::fs::File::open(path)
            .map_err(|e| CatalogError::InvalidTrace(format!("{}: {e}", path.display())))?;
        let trace = ItemTrace::read(std::io::BufReader::new(file))
            .map_err(|e| CatalogError::InvalidTrace(e.to_string()))?;
        let entry = CatalogEntry {
            name: name.to_string(),
            path: path.to_path_buf(),
            edges: trace.edges(),
            items: trace.len(),
        };
        {
            let mut entries = self.entries.lock().expect("catalog lock");
            if let Some(existing) = entries.get(name) {
                if existing.path != entry.path {
                    return Err(CatalogError::NameTaken(name.to_string()));
                }
            }
            entries.insert(name.to_string(), entry.clone());
        }
        self.persist();
        Ok(entry)
    }

    /// Look up a trace by name.
    pub fn get(&self, name: &str) -> Option<CatalogEntry> {
        self.entries
            .lock()
            .expect("catalog lock")
            .get(name)
            .cloned()
    }

    /// Load the items of a registered trace from disk. The trace was
    /// validated at registration; this re-validates on read so on-disk
    /// corruption since then surfaces as a typed error.
    pub fn load_items(&self, name: &str) -> Result<ItemTrace, String> {
        let entry = self
            .get(name)
            .ok_or_else(|| format!("unknown trace {name:?}"))?;
        let file = std::fs::File::open(&entry.path)
            .map_err(|e| format!("{}: {e}", entry.path.display()))?;
        ItemTrace::read(std::io::BufReader::new(file)).map_err(|e| e.to_string())
    }

    /// All entries, sorted by name.
    pub fn list(&self) -> Vec<CatalogEntry> {
        let mut v: Vec<CatalogEntry> = self
            .entries
            .lock()
            .expect("catalog lock")
            .values()
            .cloned()
            .collect();
        v.sort_by(|a, b| a.name.cmp(&b.name));
        v
    }

    fn persist(&self) {
        let items: Vec<Json> = self
            .list()
            .into_iter()
            .map(|e| {
                obj(vec![
                    ("name", Json::Str(e.name)),
                    ("path", Json::Str(e.path.display().to_string())),
                    ("edges", Json::Num(e.edges as f64)),
                    ("items", Json::Num(e.items as f64)),
                ])
            })
            .collect();
        let path = self.state_dir.join("catalog.json");
        let tmp = path.with_extension("json.tmp");
        if std::fs::write(&tmp, format!("{}\n", Json::Arr(items))).is_ok() {
            let _ = std::fs::rename(&tmp, &path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adjstream_graph::gen;
    use adjstream_stream::{AdjListStream, StreamOrder};

    fn write_trace(dir: &Path, name: &str) -> PathBuf {
        let g = gen::disjoint_cliques(3, 5);
        let items = AdjListStream::new(&g, StreamOrder::natural(g.vertex_count())).collect_items();
        let trace = ItemTrace::new(items).unwrap();
        let path = dir.join(name);
        let mut buf = Vec::new();
        trace.write_adjb(&mut buf).unwrap();
        std::fs::write(&path, buf).unwrap();
        path
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("adjsvc-cat-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn register_validates_and_persists() {
        let dir = tmp_dir("reg");
        let path = write_trace(&dir, "g.adjb");
        let cat = Catalog::open(&dir);
        let entry = cat.register("g", &path).unwrap();
        assert!(entry.edges > 0);
        assert_eq!(entry.items, 2 * entry.edges);
        // Reload from disk sees the same entry.
        let cat2 = Catalog::open(&dir);
        assert_eq!(cat2.get("g"), Some(entry));
        // Unknown names miss.
        assert_eq!(cat2.get("nope"), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn register_rejects_garbage_and_name_conflicts() {
        let dir = tmp_dir("rej");
        let good = write_trace(&dir, "g.adjb");
        let bad = dir.join("bad.adjb");
        std::fs::write(&bad, b"not a trace").unwrap();
        let cat = Catalog::open(&dir);
        assert!(matches!(
            cat.register("bad", &bad),
            Err(CatalogError::InvalidTrace(_))
        ));
        cat.register("g", &good).unwrap();
        // Same name, same path: idempotent. Same name, new path: conflict.
        cat.register("g", &good).unwrap();
        let other = write_trace(&dir, "other.adjb");
        assert!(matches!(
            cat.register("g", &other),
            Err(CatalogError::NameTaken(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reload_drops_vanished_traces() {
        let dir = tmp_dir("gone");
        let path = write_trace(&dir, "g.adjb");
        Catalog::open(&dir).register("g", &path).unwrap();
        std::fs::remove_file(&path).unwrap();
        let cat = Catalog::open(&dir);
        assert_eq!(cat.get("g"), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

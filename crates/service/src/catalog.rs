//! The trace catalog: named, validated traces jobs run against.
//!
//! Registration validates the trace eagerly and records its dimensions
//! *and kind*: a static `.adjb` adjacency-list trace (model conformance
//! via [`ItemTrace::read`]) or a dynamic `.adjbu` update trace (semantic
//! validation via [`read_updates`]'s sniffing decoder). Jobs then refer
//! to traces by name, so a submission against a missing, since-deleted,
//! or wrong-kind trace is a typed rejection rather than a worker-side
//! I/O surprise.
//!
//! Registration also records the file's [`checksum64`]; admission
//! re-verifies it so a trace that was swapped or corrupted on disk since
//! registration is a typed `trace_changed` rejection, never a silently
//! different answer.
//!
//! The catalog persists to `catalog.json` in the state directory and is
//! reloaded on startup — entries whose backing file vanished or whose
//! manifest line is malformed are dropped with a warning (and counted,
//! for the `metrics` op) rather than poisoning recovery.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use adjstream_stream::hashing::checksum64;
use adjstream_stream::trace::ItemTrace;
use adjstream_stream::update::UpdateStream;
use adjstream_stream::update_trace::{is_adjbu, parse_update_bytes};

use crate::json::{obj, parse, Json};

/// What kind of stream a registered trace holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A static adjacency-list item trace (`.adjb` or item text).
    Static,
    /// A timestamped insert/delete update trace (`.adjbu` or update text).
    Update,
}

impl TraceKind {
    /// Wire/manifest slug.
    pub fn name(&self) -> &'static str {
        match self {
            TraceKind::Static => "static",
            TraceKind::Update => "update",
        }
    }

    /// Parse the slug produced by [`TraceKind::name`].
    pub fn parse(s: &str) -> Option<TraceKind> {
        match s {
            "static" => Some(TraceKind::Static),
            "update" => Some(TraceKind::Update),
            _ => None,
        }
    }
}

/// One registered trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CatalogEntry {
    /// Catalog name clients refer to.
    pub name: String,
    /// Filesystem path of the trace file.
    pub path: PathBuf,
    /// Static adjacency-list trace or dynamic update trace.
    pub kind: TraceKind,
    /// Static: distinct edges (each appears twice as items). Update:
    /// edges live after the final event.
    pub edges: usize,
    /// Static: total stream items. Update: total events.
    pub items: usize,
    /// [`checksum64`] of the file's bytes at registration; re-verified
    /// at job admission.
    pub checksum64: u64,
}

/// Why a registration was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogError {
    /// The file could not be read or failed validation as either kind.
    InvalidTrace(String),
    /// The name is already registered to a different path.
    NameTaken(String),
}

impl std::fmt::Display for CatalogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CatalogError::InvalidTrace(m) => write!(f, "invalid trace: {m}"),
            CatalogError::NameTaken(n) => write!(f, "name already registered: {n}"),
        }
    }
}

/// The in-memory catalog with on-disk persistence.
pub struct Catalog {
    state_dir: PathBuf,
    entries: Mutex<HashMap<String, CatalogEntry>>,
    /// Entries dropped by the last [`Catalog::open`]: malformed manifest
    /// lines plus entries whose backing file vanished or became
    /// unreadable while the daemon was down.
    dropped: u64,
}

/// Sniff + validate the bytes of a trace file, returning its kind and
/// dimensions. Binary magics are authoritative; text falls back from
/// static items to update events, so both text dialects register.
fn classify(bytes: &[u8]) -> Result<(TraceKind, usize, usize), CatalogError> {
    if is_adjbu(bytes) {
        let stream =
            parse_update_bytes(bytes).map_err(|e| CatalogError::InvalidTrace(e.to_string()))?;
        return Ok((TraceKind::Update, stream.final_edges().len(), stream.len()));
    }
    match ItemTrace::read(bytes) {
        Ok(trace) => Ok((TraceKind::Static, trace.edges(), trace.len())),
        Err(static_err) => match UpdateStream::parse_text(&String::from_utf8_lossy(bytes)) {
            Ok(stream) => Ok((TraceKind::Update, stream.final_edges().len(), stream.len())),
            // Neither kind: report the static-side error, it names the
            // first offending line for the common case.
            Err(_) => Err(CatalogError::InvalidTrace(static_err.to_string())),
        },
    }
}

impl Catalog {
    /// Open (or create) the catalog persisted under `state_dir`. Entries
    /// that no longer round-trip — malformed manifest lines, vanished or
    /// unreadable backing files — are dropped with a warning; the count
    /// is exposed via [`Catalog::dropped_entries`] and the daemon's
    /// `metrics` op.
    pub fn open(state_dir: &Path) -> Catalog {
        let mut entries = HashMap::new();
        let mut dropped = 0u64;
        let file = state_dir.join("catalog.json");
        if let Ok(text) = std::fs::read_to_string(&file) {
            if let Ok(Json::Arr(items)) = parse(&text) {
                for item in &items {
                    let (Some(name), Some(path), Some(edges), Some(count)) = (
                        item.str_field("name"),
                        item.str_field("path"),
                        item.u64_field("edges"),
                        item.u64_field("items"),
                    ) else {
                        dropped += 1;
                        eprintln!("adjstreamd: dropping malformed catalog entry");
                        continue;
                    };
                    let path = PathBuf::from(path);
                    let kind = item
                        .str_field("kind")
                        .and_then(TraceKind::parse)
                        .unwrap_or(TraceKind::Static);
                    // A trace deleted while the daemon was down is dropped;
                    // jobs referencing it will fail typed, not crash.
                    let checksum = match item
                        .str_field("checksum64")
                        .and_then(|s| u64::from_str_radix(s, 16).ok())
                    {
                        Some(sum) => sum,
                        // Pre-checksum manifest line: recompute from the
                        // file so admission-time verification still works.
                        None => match std::fs::read(&path) {
                            Ok(bytes) => checksum64(&bytes),
                            Err(_) => {
                                dropped += 1;
                                eprintln!(
                                    "adjstreamd: dropping catalog entry {name:?}: {} unreadable",
                                    path.display()
                                );
                                continue;
                            }
                        },
                    };
                    if !path.exists() {
                        dropped += 1;
                        eprintln!(
                            "adjstreamd: dropping catalog entry {name:?}: {} vanished",
                            path.display()
                        );
                        continue;
                    }
                    entries.insert(
                        name.to_string(),
                        CatalogEntry {
                            name: name.to_string(),
                            path,
                            kind,
                            edges: edges as usize,
                            items: count as usize,
                            checksum64: checksum,
                        },
                    );
                }
            }
        }
        Catalog {
            state_dir: state_dir.to_path_buf(),
            entries: Mutex::new(entries),
            dropped,
        }
    }

    /// Entries the last [`Catalog::open`] dropped as malformed/vanished.
    pub fn dropped_entries(&self) -> u64 {
        self.dropped
    }

    /// Register `path` under `name`, sniffing the kind and validating the
    /// trace eagerly. Re-registering the same name with the same path is
    /// idempotent (and refreshes the recorded checksum).
    pub fn register(&self, name: &str, path: &Path) -> Result<CatalogEntry, CatalogError> {
        let bytes = std::fs::read(path)
            .map_err(|e| CatalogError::InvalidTrace(format!("{}: {e}", path.display())))?;
        let (kind, edges, items) = classify(&bytes)?;
        let entry = CatalogEntry {
            name: name.to_string(),
            path: path.to_path_buf(),
            kind,
            edges,
            items,
            checksum64: checksum64(&bytes),
        };
        {
            let mut entries = self.entries.lock().expect("catalog lock");
            if let Some(existing) = entries.get(name) {
                if existing.path != entry.path {
                    return Err(CatalogError::NameTaken(name.to_string()));
                }
            }
            entries.insert(name.to_string(), entry.clone());
        }
        self.persist();
        Ok(entry)
    }

    /// Look up a trace by name.
    pub fn get(&self, name: &str) -> Option<CatalogEntry> {
        self.entries
            .lock()
            .expect("catalog lock")
            .get(name)
            .cloned()
    }

    /// Re-read the backing file and compare its [`checksum64`] against
    /// the one recorded at registration. `Ok` carries the verified sum;
    /// `Err` names what changed (content, or the file vanishing).
    pub fn verify_checksum(&self, name: &str) -> Result<u64, String> {
        let entry = self
            .get(name)
            .ok_or_else(|| format!("unknown trace {name:?}"))?;
        let bytes =
            std::fs::read(&entry.path).map_err(|e| format!("{}: {e}", entry.path.display()))?;
        let actual = checksum64(&bytes);
        if actual != entry.checksum64 {
            return Err(format!(
                "trace {name:?} changed on disk: checksum {:016x}, registered {:016x}",
                actual, entry.checksum64
            ));
        }
        Ok(actual)
    }

    /// Load the items of a registered *static* trace from disk. The trace
    /// was validated at registration; this re-validates on read so
    /// on-disk corruption since then surfaces as a typed error.
    pub fn load_items(&self, name: &str) -> Result<ItemTrace, String> {
        let entry = self
            .get(name)
            .ok_or_else(|| format!("unknown trace {name:?}"))?;
        if entry.kind != TraceKind::Static {
            return Err(format!(
                "trace {name:?} is an update trace, not a static item trace"
            ));
        }
        let file = std::fs::File::open(&entry.path)
            .map_err(|e| format!("{}: {e}", entry.path.display()))?;
        ItemTrace::read(std::io::BufReader::new(file)).map_err(|e| e.to_string())
    }

    /// Load the events of a registered *update* trace from disk,
    /// re-validating the `.adjbu` checksum (or text semantics) on read.
    pub fn load_updates(&self, name: &str) -> Result<UpdateStream, String> {
        let entry = self
            .get(name)
            .ok_or_else(|| format!("unknown trace {name:?}"))?;
        if entry.kind != TraceKind::Update {
            return Err(format!(
                "trace {name:?} is a static item trace, not an update trace"
            ));
        }
        let bytes =
            std::fs::read(&entry.path).map_err(|e| format!("{}: {e}", entry.path.display()))?;
        parse_update_bytes(&bytes).map_err(|e| e.to_string())
    }

    /// All entries, sorted by name.
    pub fn list(&self) -> Vec<CatalogEntry> {
        let mut v: Vec<CatalogEntry> = self
            .entries
            .lock()
            .expect("catalog lock")
            .values()
            .cloned()
            .collect();
        v.sort_by(|a, b| a.name.cmp(&b.name));
        v
    }

    fn persist(&self) {
        let items: Vec<Json> = self
            .list()
            .into_iter()
            .map(|e| {
                obj(vec![
                    ("name", Json::Str(e.name)),
                    ("path", Json::Str(e.path.display().to_string())),
                    ("kind", Json::Str(e.kind.name().to_string())),
                    ("edges", Json::Num(e.edges as f64)),
                    ("items", Json::Num(e.items as f64)),
                    // Hex: Json numbers are f64 and u64 checksums exceed
                    // the 2^53 integer range.
                    ("checksum64", Json::Str(format!("{:016x}", e.checksum64))),
                ])
            })
            .collect();
        let path = self.state_dir.join("catalog.json");
        let tmp = path.with_extension("json.tmp");
        if std::fs::write(&tmp, format!("{}\n", Json::Arr(items))).is_ok() {
            let _ = std::fs::rename(&tmp, &path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adjstream_graph::gen;
    use adjstream_stream::update_trace::write_adjbu;
    use adjstream_stream::{AdjListStream, StreamOrder, UpdateEvent};

    fn write_trace(dir: &Path, name: &str) -> PathBuf {
        let g = gen::disjoint_cliques(3, 5);
        let items = AdjListStream::new(&g, StreamOrder::natural(g.vertex_count())).collect_items();
        let trace = ItemTrace::new(items).unwrap();
        let path = dir.join(name);
        let mut buf = Vec::new();
        trace.write_adjb(&mut buf).unwrap();
        std::fs::write(&path, buf).unwrap();
        path
    }

    fn update_events() -> Vec<UpdateEvent> {
        vec![
            UpdateEvent::insert(0, 1, 0),
            UpdateEvent::insert(1, 2, 1),
            UpdateEvent::insert(0, 2, 2),
            UpdateEvent::delete(0, 1, 3),
        ]
    }

    fn write_update_trace(dir: &Path, name: &str) -> PathBuf {
        let stream = UpdateStream::new(update_events());
        let path = dir.join(name);
        let mut buf = Vec::new();
        write_adjbu(&stream, &mut buf).unwrap();
        std::fs::write(&path, buf).unwrap();
        path
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("adjsvc-cat-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn register_validates_and_persists() {
        let dir = tmp_dir("reg");
        let path = write_trace(&dir, "g.adjb");
        let cat = Catalog::open(&dir);
        let entry = cat.register("g", &path).unwrap();
        assert!(entry.edges > 0);
        assert_eq!(entry.items, 2 * entry.edges);
        assert_eq!(entry.kind, TraceKind::Static);
        assert_ne!(entry.checksum64, 0);
        // Reload from disk sees the same entry, checksum included.
        let cat2 = Catalog::open(&dir);
        assert_eq!(cat2.get("g"), Some(entry));
        assert_eq!(cat2.dropped_entries(), 0);
        // Unknown names miss.
        assert_eq!(cat2.get("nope"), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn register_sniffs_update_traces() {
        let dir = tmp_dir("upd");
        let binary = write_update_trace(&dir, "u.adjbu");
        let cat = Catalog::open(&dir);
        let entry = cat.register("u", &binary).unwrap();
        assert_eq!(entry.kind, TraceKind::Update);
        assert_eq!(entry.items, 4, "events, not items");
        assert_eq!(entry.edges, 2, "live edges after the final delete");
        // The text dialect registers as an update trace too.
        let text = dir.join("u.txt");
        let stream = UpdateStream::new(update_events());
        let mut buf = Vec::new();
        stream.write_text(&mut buf).unwrap();
        std::fs::write(&text, buf).unwrap();
        let entry = cat.register("ut", &text).unwrap();
        assert_eq!(entry.kind, TraceKind::Update);
        assert_eq!(entry.items, 4);
        // Kinds round-trip through the persisted catalog.
        let cat2 = Catalog::open(&dir);
        assert_eq!(cat2.get("u").unwrap().kind, TraceKind::Update);
        // load_updates works, load_items is a typed kind error.
        assert_eq!(cat2.load_updates("u").unwrap().len(), 4);
        assert!(cat2.load_items("u").unwrap_err().contains("update trace"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn register_rejects_garbage_and_name_conflicts() {
        let dir = tmp_dir("rej");
        let good = write_trace(&dir, "g.adjb");
        let bad = dir.join("bad.adjb");
        std::fs::write(&bad, b"not a trace").unwrap();
        let cat = Catalog::open(&dir);
        assert!(matches!(
            cat.register("bad", &bad),
            Err(CatalogError::InvalidTrace(_))
        ));
        cat.register("g", &good).unwrap();
        // Same name, same path: idempotent. Same name, new path: conflict.
        cat.register("g", &good).unwrap();
        let other = write_trace(&dir, "other.adjb");
        assert!(matches!(
            cat.register("g", &other),
            Err(CatalogError::NameTaken(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reload_drops_and_counts_vanished_traces() {
        let dir = tmp_dir("gone");
        let path = write_trace(&dir, "g.adjb");
        let keep = write_trace(&dir, "keep.adjb");
        {
            let cat = Catalog::open(&dir);
            cat.register("g", &path).unwrap();
            cat.register("keep", &keep).unwrap();
        }
        std::fs::remove_file(&path).unwrap();
        let cat = Catalog::open(&dir);
        assert_eq!(cat.get("g"), None);
        assert!(cat.get("keep").is_some());
        assert_eq!(cat.dropped_entries(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checksum_verification_catches_swapped_traces() {
        let dir = tmp_dir("sum");
        let path = write_trace(&dir, "g.adjb");
        let cat = Catalog::open(&dir);
        cat.register("g", &path).unwrap();
        assert!(cat.verify_checksum("g").is_ok());
        // Swap the file for a different (still valid) trace: the catalog
        // dimensions no longer describe the bytes on disk.
        let g = gen::disjoint_cliques(2, 4);
        let items = AdjListStream::new(&g, StreamOrder::natural(g.vertex_count())).collect_items();
        let trace = ItemTrace::new(items).unwrap();
        let mut buf = Vec::new();
        trace.write_adjb(&mut buf).unwrap();
        std::fs::write(&path, buf).unwrap();
        let err = cat.verify_checksum("g").unwrap_err();
        assert!(err.contains("changed on disk"), "{err}");
        // Re-registering refreshes the checksum.
        cat.register("g", &path).unwrap();
        assert!(cat.verify_checksum("g").is_ok());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

//! `adjstream-service`: the crash-safe, backpressured resident estimation
//! service behind the `adjstreamd` binary.
//!
//! The one-shot CLI answers one estimate per process; this crate turns
//! the same engine — [`BatchJob`](adjstream_stream::BatchJob) stepping a
//! shared two-pass replay one pass at a time — into a long-running
//! multi-tenant job server:
//!
//! * [`catalog`] — named, validated `.adjb` traces jobs run against,
//! * [`protocol`] — the line-delimited JSON protocol over a Unix socket,
//! * [`job`] — job specs, the typed lifecycle state machine
//!   (`Queued → Running → Suspended/Degraded/Failed/Done`), and the
//!   on-disk manifests recovery replays,
//! * [`server`] — bounded intake with typed backpressure, the priority
//!   scheduler with checkpoint-based preemption, the worker pool, and
//!   the crash-recovery scan,
//! * [`json`] — the hand-rolled JSON parser the offline build requires.
//!
//! The paper's two-pass estimators keep only message-sized state between
//! passes, which is exactly what makes job suspension, eviction, and
//! crash recovery cheap here: a checkpoint at a pass boundary is small,
//! and a resumed job is bit-for-bit identical to an uninterrupted one.

#![warn(missing_docs)]

pub mod catalog;
pub mod job;
pub mod json;
pub mod protocol;
pub mod server;

pub use catalog::{Catalog, CatalogEntry, CatalogError};
pub use job::{Chaos, JobBudget, JobId, JobKind, JobRecord, JobResult, JobSpec, JobState};
pub use protocol::{parse_request, RejectReason, Request};
pub use server::{Server, ServerHandle, ServiceConfig, ServiceCounters};

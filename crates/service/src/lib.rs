//! `adjstream-service`: the crash-safe, backpressured resident estimation
//! service behind the `adjstreamd` binary.
//!
//! The one-shot CLI answers one estimate per process; this crate turns
//! the same engine — [`BatchJob`](adjstream_stream::BatchJob) stepping a
//! shared two-pass replay one pass at a time — into a long-running
//! multi-tenant job server:
//!
//! * [`catalog`] — named, validated, checksummed traces jobs run
//!   against: static `.adjb` item traces and dynamic `.adjbu` update
//!   traces, each with a recorded kind and [`checksum64`]
//!   (re-verified at admission) — see [`catalog::TraceKind`],
//! * [`protocol`] — the line-delimited JSON protocol over a Unix socket,
//! * [`job`] — job specs, the typed lifecycle state machine
//!   (`Queued → Running → Suspended/Degraded/Failed/Done`), and the
//!   on-disk manifests recovery replays,
//! * [`server`] — bounded intake with typed backpressure, the priority
//!   scheduler with checkpoint-based preemption, the worker pool, and
//!   the crash-recovery scan,
//! * [`json`] — the hand-rolled JSON parser the offline build requires.
//!
//! The paper's two-pass estimators keep only message-sized state between
//! passes, which is exactly what makes job suspension, eviction, and
//! crash recovery cheap here: a checkpoint at a pass boundary is small,
//! and a resumed job is bit-for-bit identical to an uninterrupted one.
//!
//! Update jobs ([`JobKind::Update`]) extend the same contract to the
//! fully-dynamic TRIÈST-FD estimator: the stream is driven in batches,
//! every batch boundary is a checkpoint (reservoir, deletion debt, RNG,
//! and guard state), and a job resumed after `kill -9` produces
//! per-batch estimates bit-identical to an uninterrupted run's.
//!
//! [`checksum64`]: adjstream_stream::hashing::checksum64

#![warn(missing_docs)]

pub mod catalog;
pub mod job;
pub mod json;
pub mod protocol;
pub mod server;

pub use catalog::{Catalog, CatalogEntry, CatalogError, TraceKind};
pub use job::{Chaos, JobBudget, JobId, JobKind, JobRecord, JobResult, JobSpec, JobState};
pub use protocol::{parse_request, RejectReason, Request};
pub use server::{Server, ServerHandle, ServiceConfig, ServiceCounters};

//! A minimal JSON value type with a hand-rolled parser and serializer.
//!
//! The daemon's wire protocol is line-delimited JSON over a Unix socket,
//! and the workspace is built offline — no `serde`. This module covers
//! exactly what the protocol needs: objects, arrays, strings (with the
//! standard escapes), finite numbers, booleans, and `null`. Object key
//! order is preserved on both parse and serialize so responses are
//! byte-stable for a given value.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number; stored as `f64` (the protocol's integers all fit).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Look up a key in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a number that is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Convenience: `get(key)` then [`Json::as_str`].
    pub fn str_field(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(Json::as_str)
    }

    /// Convenience: `get(key)` then [`Json::as_u64`].
    pub fn u64_field(&self, key: &str) -> Option<u64> {
        self.get(key).and_then(Json::as_u64)
    }

    /// Convenience: `get(key)` then [`Json::as_f64`].
    pub fn f64_field(&self, key: &str) -> Option<f64> {
        self.get(key).and_then(Json::as_f64)
    }
}

/// Escape `s` into `out` as a JSON string literal (including the quotes).
fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => f.write_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if !n.is_finite() {
                    // JSON has no NaN/Inf; the protocol never produces them,
                    // but a defensive null beats invalid output.
                    f.write_str("null")
                } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    // Shortest round-trippable form.
                    write!(f, "{n:?}")
                }
            }
            Json::Str(s) => {
                let mut out = String::with_capacity(s.len() + 2);
                write_escaped(&mut out, s);
                f.write_str(&out)
            }
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    v.fmt(f)?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    let mut key = String::with_capacity(k.len() + 2);
                    write_escaped(&mut key, k);
                    f.write_str(&key)?;
                    f.write_str(":")?;
                    v.fmt(f)?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Build an object from key/value pairs, preserving order.
pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Parse one JSON document from `input`, rejecting trailing garbage.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| "unterminated string".to_string())?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by \uDC00–\uDFFF.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err("invalid low surrogate".into());
                                    }
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(combined)
                                        .ok_or_else(|| "invalid surrogate pair".to_string())?
                                } else {
                                    return Err("lone high surrogate".into());
                                }
                            } else if (0xDC00..0xE000).contains(&cp) {
                                return Err("lone low surrogate".into());
                            } else {
                                char::from_u32(cp)
                                    .ok_or_else(|| "invalid \\u escape".to_string())?
                            };
                            out.push(c);
                        }
                        other => return Err(format!("invalid escape '\\{}'", other as char)),
                    }
                }
                _ => {
                    // Multi-byte UTF-8 sequences pass through verbatim; back
                    // up and take the whole char from the source.
                    self.pos -= 1;
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    let c = rest.chars().next().expect("non-empty by peek");
                    if (c as u32) < 0x20 {
                        return Err("unescaped control character in string".into());
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        if self.pos + 4 > self.bytes.len() {
            return Err("truncated \\u escape".into());
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| "invalid \\u escape".to_string())?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| "invalid \\u escape".to_string())?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| {
            b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-'
        }) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_protocol_shapes() {
        let src = r#"{"op":"submit","trace":"web","kind":"triangles","t_lower":240,"epsilon":0.25,"chaos":null,"tags":["a","b"],"deep":{"x":true}}"#;
        let v = parse(src).unwrap();
        assert_eq!(v.str_field("op"), Some("submit"));
        assert_eq!(v.u64_field("t_lower"), Some(240));
        assert_eq!(v.f64_field("epsilon"), Some(0.25));
        assert_eq!(v.get("chaos"), Some(&Json::Null));
        assert_eq!(
            v.get("tags").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
        // Serialization preserves key order, so parse ∘ print is stable.
        assert_eq!(parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = Json::Str("a\"b\\c\nd\te\u{08}\u{0c}\u{1f}é🦀".to_string());
        let printed = v.to_string();
        assert_eq!(parse(&printed).unwrap(), v);
        // Surrogate-pair escapes decode.
        assert_eq!(parse(r#""🦀""#).unwrap(), Json::Str("🦀".to_string()));
        assert!(parse(r#""\ud83e""#).is_err());
    }

    #[test]
    fn numbers_parse_and_print() {
        assert_eq!(parse("-3.5e2").unwrap(), Json::Num(-350.0));
        assert_eq!(Json::Num(42.0).to_string(), "42");
        assert_eq!(parse(&Json::Num(0.1).to_string()).unwrap(), Json::Num(0.1));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "\"\u{01}\"",
            "1 2",
            "{\"a\":}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn u64_field_rejects_fractions_and_negatives() {
        let v = parse(r#"{"a":1.5,"b":-2,"c":7}"#).unwrap();
        assert_eq!(v.u64_field("a"), None);
        assert_eq!(v.u64_field("b"), None);
        assert_eq!(v.u64_field("c"), Some(7));
    }
}

//! The resident estimation server: intake, scheduler, worker pool,
//! crash recovery.
//!
//! ```text
//!            ┌──────────┐ try_send ┌───────────┐ rendezvous ┌─────────┐
//! clients ──→│  intake  │─────────→│ scheduler │───────────→│ workers │
//!  (socket)  │ bounded  │  Full ⇒  │  priority │  try_send  │  pool   │
//!            │  queue   │ Rejected │   heap    │←───────────│         │
//!            └──────────┘          └───────────┘  requeue   └─────────┘
//! ```
//!
//! Three invariants the chaos and overload tests pin down:
//!
//! 1. **Bounded intake.** Admission is a `try_send` into a bounded
//!    channel; a full queue (or a blown job cap / memory budget) is an
//!    *immediate* typed `Rejected` response. Nothing in the daemon
//!    buffers submissions without bound.
//! 2. **Checkpoint-based preemption.** Workers execute jobs one pass at
//!    a time via [`BatchJob`], writing a checkpoint at every interior
//!    pass boundary. Eviction (priority preemption, drain, cancel) is
//!    only ever acted on *at* a boundary, so a suspended job's state is
//!    always a valid checkpoint and resuming is bit-for-bit.
//! 3. **Manifests are the truth.** Every state transition persists the
//!    job manifest before anything else observes it. Recovery after
//!    `kill -9` is a directory scan: non-terminal manifests re-enter the
//!    queue (with their checkpoint, when one survived; a truncated one
//!    is discarded and the job recomputes from scratch — determinism
//!    makes the answer identical either way).

use std::collections::{BinaryHeap, HashMap};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use adjstream_core::amplify::{median_of_survivors, quorum};
use adjstream_core::common::EdgeSampling;
use adjstream_core::estimate::{four_cycle_budget, triangle_budget};
use adjstream_core::fourcycle::{FourCycleEstimator, TwoPassFourCycle, TwoPassFourCycleConfig};
use adjstream_core::triangle::{
    ShardedTriangle, ShardedTriangleConfig, TriestFd, TwoPassTriangle, TwoPassTriangleConfig,
};
use adjstream_stream::batch::{BatchConfig, BatchJob, Budget};
use adjstream_stream::checkpoint::{
    read_checkpoint_file, read_u64, read_usize, write_checkpoint_file, write_u64, write_usize,
    Checkpoint,
};
use adjstream_stream::estimator::repetitions_for_confidence;
use adjstream_stream::runner::{MultiPassAlgorithm, RunError};
use adjstream_stream::shard::{run_sharded, ShardPlan};
use adjstream_stream::trace::ItemTrace;
use adjstream_stream::update_guard::GuardedUpdate;
use adjstream_stream::{
    validate_stream, GuardPolicy, Metrics, MetricsSnapshot, SpaceUsage, UpdateAlgorithm,
};

use crate::catalog::{Catalog, TraceKind};
use crate::job::{JobId, JobKind, JobRecord, JobResult, JobSpec, JobState};
use crate::json::{obj, Json};
use crate::protocol::{
    error_response, ok_response, parse_request, reject_response, RejectReason, Request,
};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Unix socket path to listen on.
    pub socket: PathBuf,
    /// Directory for manifests, checkpoints, and the catalog.
    pub state_dir: PathBuf,
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Bounded intake queue depth; submissions beyond it are `Rejected`.
    pub queue_depth: usize,
    /// Cap on resident (non-terminal) jobs; admission control.
    pub max_jobs: usize,
    /// Daemon-wide declared-byte budget: the sum of admitted jobs'
    /// declared `max_total_bytes` may not exceed it (jobs declaring no
    /// budget count as zero). `None` disables the check.
    pub memory_budget: Option<usize>,
    /// Scheduler tick.
    pub tick: Duration,
}

impl ServiceConfig {
    /// A config rooted at `state_dir` with the socket inside it and
    /// conservative defaults.
    pub fn at(state_dir: &Path) -> ServiceConfig {
        ServiceConfig {
            socket: state_dir.join("adjstreamd.sock"),
            state_dir: state_dir.to_path_buf(),
            workers: 2,
            queue_depth: 16,
            max_jobs: 64,
            memory_budget: None,
            tick: Duration::from_millis(10),
        }
    }
}

/// Daemon-wide counters surfaced by the `metrics` op.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServiceCounters {
    /// Jobs admitted.
    pub submitted: u64,
    /// Submissions rejected with a typed reason.
    pub rejected: u64,
    /// Jobs that reached `Done`.
    pub completed: u64,
    /// Jobs that reached `Failed`.
    pub failed: u64,
    /// Jobs that reached `Degraded`.
    pub degraded: u64,
    /// Suspensions (drain, preemption).
    pub suspended: u64,
    /// Executions that resumed from a checkpoint.
    pub resumed: u64,
    /// Jobs re-queued by the crash-recovery scan.
    pub recovered: u64,
    /// Catalog entries the startup scan dropped as malformed/vanished.
    pub catalog_dropped: u64,
    /// Update-job batches completed.
    pub update_batches: u64,
    /// Invalid update events the guard detected across completed jobs.
    pub guard_detections: u64,
    /// Invalid update events the guard dropped (Repair policy).
    pub guard_dropped: u64,
}

struct JobEntry {
    record: JobRecord,
    evict: Arc<AtomicBool>,
    cancelled: Arc<AtomicBool>,
}

/// Event a worker reports back to the scheduler.
enum WorkerEvent {
    /// The job reached a state the scheduler need not reschedule
    /// (terminal, or suspended for drain).
    Settled(u64),
    /// The job was preempted at a boundary and should be rescheduled.
    Requeue(u64),
}

struct Inner {
    cfg: ServiceConfig,
    catalog: Catalog,
    jobs: Mutex<HashMap<u64, JobEntry>>,
    counters: Mutex<ServiceCounters>,
    metrics: Mutex<MetricsSnapshot>,
    next_id: AtomicU64,
    draining: AtomicBool,
    shutdown_requested: AtomicBool,
    intake_tx: crossbeam::channel::Sender<u64>,
    event_tx: crossbeam::channel::Sender<WorkerEvent>,
}

/// Lock helper immune to poisoning: a worker panic between state updates
/// must not take the whole daemon down with it.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Inner {
    fn job_record(&self, id: u64) -> Option<JobRecord> {
        lock(&self.jobs).get(&id).map(|e| e.record.clone())
    }

    /// Apply and persist a state transition, updating terminal counters.
    fn set_state(&self, id: u64, state: JobState) {
        let mut jobs = lock(&self.jobs);
        let Some(entry) = jobs.get_mut(&id) else {
            return;
        };
        entry.record.state = state;
        let _ = entry.record.persist(&self.cfg.state_dir);
        let record = entry.record.clone();
        drop(jobs);
        let mut c = lock(&self.counters);
        match record.state {
            JobState::Done { .. } => c.completed += 1,
            JobState::Failed { .. } => c.failed += 1,
            JobState::Degraded { .. } => c.degraded += 1,
            JobState::Suspended { .. } => c.suspended += 1,
            _ => {}
        }
    }

    fn absorb_metrics(&self, snap: &MetricsSnapshot) {
        lock(&self.metrics).merge(snap);
    }

    /// Non-terminal job count and summed declared bytes, for admission.
    fn residency(&self) -> (usize, usize) {
        let jobs = lock(&self.jobs);
        let mut count = 0;
        let mut bytes = 0usize;
        for e in jobs.values() {
            if !e.record.state.is_terminal() {
                count += 1;
                bytes = bytes.saturating_add(e.record.spec.budget.max_total_bytes.unwrap_or(0));
            }
        }
        (count, bytes)
    }
}

/// Priority-heap key: higher priority first, then submission order.
#[derive(PartialEq, Eq)]
struct QueuedJob {
    priority: u8,
    id: u64,
}

impl Ord for QueuedJob {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.priority
            .cmp(&other.priority)
            .then(other.id.cmp(&self.id))
    }
}

impl PartialOrd for QueuedJob {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A running daemon; dropping the handle does *not* stop it — call
/// [`ServerHandle::shutdown`].
pub struct ServerHandle {
    inner: Arc<Inner>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// Whether a client asked for shutdown via the `shutdown` op.
    pub fn shutdown_requested(&self) -> bool {
        self.inner.shutdown_requested.load(Ordering::SeqCst)
    }

    /// Current record of a job, for embedded (in-process) callers.
    pub fn job_record(&self, id: JobId) -> Option<JobRecord> {
        self.inner.job_record(id.0)
    }

    /// Current counters snapshot.
    pub fn counters(&self) -> ServiceCounters {
        *lock(&self.inner.counters)
    }

    /// Drain: stop accepting, evict every running job to a checkpoint,
    /// persist everything, join all threads. Returns the final counters
    /// (including suspensions the drain itself caused).
    pub fn shutdown(self) -> ServiceCounters {
        self.inner.draining.store(true, Ordering::SeqCst);
        for t in self.threads {
            let _ = t.join();
        }
        let _ = std::fs::remove_file(&self.inner.cfg.socket);
        *lock(&self.inner.counters)
    }
}

/// The daemon. [`Server::start`] recovers interrupted jobs from the state
/// directory, binds the socket, and spawns the accept/scheduler/worker
/// threads.
pub struct Server;

impl Server {
    /// Start the daemon and return its handle.
    pub fn start(cfg: ServiceConfig) -> std::io::Result<ServerHandle> {
        std::fs::create_dir_all(&cfg.state_dir)?;
        let catalog = Catalog::open(&cfg.state_dir);

        // ---- recovery scan ------------------------------------------------
        let mut recovered: Vec<JobRecord> = Vec::new();
        let mut all_records: Vec<JobRecord> = Vec::new();
        let mut max_id = 0u64;
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&cfg.state_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("job-") && n.ends_with(".json"))
            })
            .collect();
        entries.sort();
        for path in entries {
            let Some(mut rec) = JobRecord::load(&path) else {
                continue;
            };
            max_id = max_id.max(rec.id.0);
            if !rec.state.is_terminal() {
                // A job that was mid-pass when the process died is morally
                // suspended at its last checkpoint (or at pass 0 without one).
                if let JobState::Running { pass } = rec.state {
                    rec.state = JobState::Suspended {
                        pass,
                        reason: "crash".into(),
                    };
                }
                let _ = rec.persist(&cfg.state_dir);
                recovered.push(rec.clone());
            }
            all_records.push(rec);
        }

        let (intake_tx, intake_rx) = crossbeam::channel::bounded::<u64>(cfg.queue_depth.max(1));
        // Rendezvous: try_send succeeds only while a worker is parked in
        // recv — that *is* the free-worker signal.
        let (run_tx, run_rx) = crossbeam::channel::bounded::<u64>(0);
        let (event_tx, event_rx) = crossbeam::channel::bounded::<WorkerEvent>(cfg.max_jobs.max(16));

        let inner = Arc::new(Inner {
            cfg: cfg.clone(),
            catalog,
            jobs: Mutex::new(HashMap::new()),
            counters: Mutex::new(ServiceCounters::default()),
            metrics: Mutex::new(MetricsSnapshot::default()),
            next_id: AtomicU64::new(max_id + 1),
            draining: AtomicBool::new(false),
            shutdown_requested: AtomicBool::new(false),
            intake_tx,
            event_tx,
        });

        {
            let mut jobs = lock(&inner.jobs);
            for rec in all_records {
                jobs.insert(
                    rec.id.0,
                    JobEntry {
                        record: rec,
                        evict: Arc::new(AtomicBool::new(false)),
                        cancelled: Arc::new(AtomicBool::new(false)),
                    },
                );
            }
        }
        {
            let mut c = lock(&inner.counters);
            c.recovered = recovered.len() as u64;
            c.catalog_dropped = inner.catalog.dropped_entries();
        }

        // Recovered jobs pre-seed the scheduler heap directly — they must
        // not compete with live submissions for intake-queue space.
        let initial: Vec<QueuedJob> = recovered
            .iter()
            .map(|r| QueuedJob {
                priority: r.spec.priority,
                id: r.id.0,
            })
            .collect();

        let _ = std::fs::remove_file(&cfg.socket);
        let listener = UnixListener::bind(&cfg.socket)?;
        listener.set_nonblocking(true)?;

        let mut threads = Vec::new();
        {
            let inner = Arc::clone(&inner);
            threads.push(
                std::thread::Builder::new()
                    .name("adjsvc-accept".into())
                    .spawn(move || accept_loop(inner, listener))?,
            );
        }
        {
            let inner = Arc::clone(&inner);
            threads.push(
                std::thread::Builder::new()
                    .name("adjsvc-sched".into())
                    .spawn(move || scheduler_loop(inner, intake_rx, run_tx, event_rx, initial))?,
            );
        }
        let shared_rx = Arc::new(Mutex::new(run_rx));
        for w in 0..cfg.workers.max(1) {
            let inner = Arc::clone(&inner);
            let rx = Arc::clone(&shared_rx);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("adjsvc-worker-{w}"))
                    .spawn(move || worker_loop(inner, rx))?,
            );
        }

        Ok(ServerHandle { inner, threads })
    }
}

// ---------------------------------------------------------------------------
// Accept loop and request handling
// ---------------------------------------------------------------------------

fn accept_loop(inner: Arc<Inner>, listener: UnixListener) {
    loop {
        if inner.draining.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let inner = Arc::clone(&inner);
                let _ = std::thread::Builder::new()
                    .name("adjsvc-conn".into())
                    .spawn(move || {
                        let _ = stream.set_nonblocking(false);
                        handle_connection(&inner, stream);
                    });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
}

fn handle_connection(inner: &Arc<Inner>, stream: UnixStream) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut writer = std::io::BufWriter::new(write_half);
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let response = match parse_request(&line) {
            Ok(req) => dispatch_request(inner, req),
            Err(e) => error_response("bad_request", &e),
        };
        // A client that disconnected mid-response is its own problem: the
        // job it submitted keeps running; we just stop responding.
        if writer
            .write_all(response.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .is_err()
        {
            break;
        }
    }
}

fn dispatch_request(inner: &Arc<Inner>, req: Request) -> String {
    match req {
        Request::Ping => ok_response(vec![("pong", Json::Bool(true))]),
        Request::Register { name, path } => match inner.catalog.register(&name, &path) {
            Ok(entry) => ok_response(vec![
                ("name", Json::Str(entry.name)),
                ("kind", Json::Str(entry.kind.name().into())),
                ("edges", Json::Num(entry.edges as f64)),
                ("items", Json::Num(entry.items as f64)),
                (
                    "checksum64",
                    Json::Str(format!("{:016x}", entry.checksum64)),
                ),
            ]),
            Err(e) => error_response("register_failed", &e.to_string()),
        },
        Request::Traces => {
            let traces: Vec<Json> = inner
                .catalog
                .list()
                .into_iter()
                .map(|e| {
                    obj(vec![
                        ("name", Json::Str(e.name)),
                        ("kind", Json::Str(e.kind.name().into())),
                        ("edges", Json::Num(e.edges as f64)),
                        ("items", Json::Num(e.items as f64)),
                        ("checksum64", Json::Str(format!("{:016x}", e.checksum64))),
                    ])
                })
                .collect();
            ok_response(vec![("traces", Json::Arr(traces))])
        }
        Request::Submit(spec) => submit(inner, *spec),
        Request::Status { id } => status(inner, id),
        Request::Cancel { id } => cancel(inner, id),
        Request::Metrics => metrics(inner),
        Request::Shutdown => {
            inner.shutdown_requested.store(true, Ordering::SeqCst);
            ok_response(vec![("shutting_down", Json::Bool(true))])
        }
    }
}

fn submit(inner: &Arc<Inner>, spec: JobSpec) -> String {
    let reject = |inner: &Arc<Inner>, reason| {
        lock(&inner.counters).rejected += 1;
        reject_response(reason)
    };
    if inner.draining.load(Ordering::SeqCst) {
        return reject(inner, RejectReason::Draining);
    }
    let Some(entry) = inner.catalog.get(&spec.trace) else {
        return reject(inner, RejectReason::UnknownTrace);
    };
    // The job kind must match the trace kind: update jobs consume update
    // traces, every static estimator consumes item traces.
    let wants_update = matches!(spec.kind, JobKind::Update { .. });
    if wants_update != (entry.kind == TraceKind::Update) {
        return reject(inner, RejectReason::KindMismatch);
    }
    // Admission re-verifies the checksum recorded at registration: a
    // trace swapped or corrupted since then is a typed rejection, never
    // an estimate over bytes nobody vetted.
    if inner.catalog.verify_checksum(&spec.trace).is_err() {
        return reject(inner, RejectReason::TraceChanged);
    }
    let (resident, declared_bytes) = inner.residency();
    if resident >= inner.cfg.max_jobs {
        return reject(inner, RejectReason::TooManyJobs);
    }
    if let Some(limit) = inner.cfg.memory_budget {
        let incoming = spec.budget.max_total_bytes.unwrap_or(0);
        if declared_bytes.saturating_add(incoming) > limit {
            return reject(inner, RejectReason::MemoryBudget);
        }
    }
    let id = JobId(inner.next_id.fetch_add(1, Ordering::SeqCst));
    let record = JobRecord {
        id,
        spec,
        state: JobState::Queued,
    };
    if record.persist(&inner.cfg.state_dir).is_err() {
        return error_response("io", "failed to persist job manifest");
    }
    lock(&inner.jobs).insert(
        id.0,
        JobEntry {
            record,
            evict: Arc::new(AtomicBool::new(false)),
            cancelled: Arc::new(AtomicBool::new(false)),
        },
    );
    // Bounded intake: a full queue rolls the admission back and rejects,
    // it never blocks the client or buffers beyond `queue_depth`.
    if inner.intake_tx.try_send(id.0).is_err() {
        lock(&inner.jobs).remove(&id.0);
        let _ = std::fs::remove_file(id.manifest_path(&inner.cfg.state_dir));
        return reject(inner, RejectReason::QueueFull);
    }
    lock(&inner.counters).submitted += 1;
    ok_response(vec![
        ("id", Json::Str(id.to_string())),
        ("state", Json::Str("queued".into())),
    ])
}

fn state_fields(record: &JobRecord) -> Vec<(&'static str, Json)> {
    let mut fields = vec![
        ("id", Json::Str(record.id.to_string())),
        ("trace", Json::Str(record.spec.trace.clone())),
        ("state", Json::Str(record.state.name().into())),
    ];
    match &record.state {
        JobState::Running { pass } => fields.push(("pass", Json::Num(*pass as f64))),
        JobState::Suspended { pass, reason } => {
            fields.push(("pass", Json::Num(*pass as f64)));
            fields.push(("reason", Json::Str(reason.clone())));
        }
        JobState::Degraded {
            survivors,
            required,
        } => {
            fields.push(("survivors", Json::Num(*survivors as f64)));
            fields.push(("required", Json::Num(*required as f64)));
        }
        JobState::Failed { reason, detail } => {
            fields.push(("reason", Json::Str(reason.clone())));
            fields.push(("detail", Json::Str(detail.clone())));
        }
        JobState::Done { result } => {
            fields.push((
                "result",
                obj(vec![
                    ("estimate", Json::Num(result.estimate)),
                    (
                        "estimate_bits",
                        Json::Str(format!("{:016x}", result.estimate_bits)),
                    ),
                    ("survivors", Json::Num(result.survivors as f64)),
                    ("repetitions", Json::Num(result.repetitions as f64)),
                    ("passes", Json::Num(result.passes as f64)),
                    (
                        "resumed_from",
                        match result.resumed_from {
                            Some(p) => Json::Num(p as f64),
                            None => Json::Null,
                        },
                    ),
                ]),
            ));
        }
        JobState::Queued => {}
    }
    fields
}

fn status(inner: &Arc<Inner>, id: Option<JobId>) -> String {
    match id {
        Some(id) => match inner.job_record(id.0) {
            Some(rec) => ok_response(state_fields(&rec)),
            None => error_response("not_found", &format!("no job {id}")),
        },
        None => {
            let jobs = lock(&inner.jobs);
            let mut ids: Vec<u64> = jobs.keys().copied().collect();
            ids.sort_unstable();
            let list: Vec<Json> = ids
                .iter()
                .map(|jid| obj(state_fields(&jobs[jid].record)))
                .collect();
            ok_response(vec![("jobs", Json::Arr(list))])
        }
    }
}

fn cancel(inner: &Arc<Inner>, id: JobId) -> String {
    let jobs = lock(&inner.jobs);
    let Some(entry) = jobs.get(&id.0) else {
        return error_response("not_found", &format!("no job {id}"));
    };
    if entry.record.state.is_terminal() {
        return error_response("already_terminal", entry.record.state.name());
    }
    entry.cancelled.store(true, Ordering::SeqCst);
    // A running worker only looks at flags at pass boundaries; the evict
    // flag makes it look sooner.
    entry.evict.store(true, Ordering::SeqCst);
    drop(jobs);
    ok_response(vec![
        ("id", Json::Str(id.to_string())),
        ("state", Json::Str("cancelling".into())),
    ])
}

fn metrics(inner: &Arc<Inner>) -> String {
    let c = *lock(&inner.counters);
    let snap = lock(&inner.metrics).clone();
    let merged = if snap.runs == 0 {
        Json::Null
    } else {
        // Embed the schema-versioned snapshot document verbatim.
        crate::json::parse(&snap.to_json()).unwrap_or(Json::Null)
    };
    ok_response(vec![
        (
            "counters",
            obj(vec![
                ("submitted", Json::Num(c.submitted as f64)),
                ("rejected", Json::Num(c.rejected as f64)),
                ("completed", Json::Num(c.completed as f64)),
                ("failed", Json::Num(c.failed as f64)),
                ("degraded", Json::Num(c.degraded as f64)),
                ("suspended", Json::Num(c.suspended as f64)),
                ("resumed", Json::Num(c.resumed as f64)),
                ("recovered", Json::Num(c.recovered as f64)),
                ("catalog_dropped", Json::Num(c.catalog_dropped as f64)),
                ("update_batches", Json::Num(c.update_batches as f64)),
                ("guard_detections", Json::Num(c.guard_detections as f64)),
                ("guard_dropped", Json::Num(c.guard_dropped as f64)),
            ]),
        ),
        ("metrics", merged),
    ])
}

// ---------------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------------

fn scheduler_loop(
    inner: Arc<Inner>,
    intake_rx: crossbeam::channel::Receiver<u64>,
    run_tx: crossbeam::channel::Sender<u64>,
    event_rx: crossbeam::channel::Receiver<WorkerEvent>,
    initial: Vec<QueuedJob>,
) {
    let mut heap: BinaryHeap<QueuedJob> = initial.into_iter().collect();
    let mut running: HashMap<u64, u8> = HashMap::new();
    let mut evicting: std::collections::HashSet<u64> = std::collections::HashSet::new();

    loop {
        // Drain worker events first so `running` is current.
        while let Ok(ev) = event_rx.try_recv() {
            match ev {
                WorkerEvent::Settled(id) => {
                    running.remove(&id);
                    evicting.remove(&id);
                }
                WorkerEvent::Requeue(id) => {
                    running.remove(&id);
                    evicting.remove(&id);
                    if let Some(rec) = inner.job_record(id) {
                        heap.push(QueuedJob {
                            priority: rec.spec.priority,
                            id,
                        });
                    }
                }
            }
        }

        if inner.draining.load(Ordering::SeqCst) {
            drain(&inner, &mut running, &event_rx);
            // Dropping `run_tx` here disconnects the workers' shared
            // receiver, ending their loops.
            drop(run_tx);
            return;
        }

        // Pull newly admitted jobs; block briefly on the intake so an idle
        // scheduler wakes immediately on submission.
        match intake_rx.recv_timeout(inner.cfg.tick) {
            Ok(id) => {
                if let Some(rec) = inner.job_record(id) {
                    heap.push(QueuedJob {
                        priority: rec.spec.priority,
                        id,
                    });
                }
                while let Ok(id) = intake_rx.try_recv() {
                    if let Some(rec) = inner.job_record(id) {
                        heap.push(QueuedJob {
                            priority: rec.spec.priority,
                            id,
                        });
                    }
                }
            }
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
        }

        // Dispatch while a worker is free (rendezvous try_send succeeds
        // only when one is parked in recv).
        while let Some(top) = heap.peek() {
            let id = top.id;
            // Cancelled while queued: settle it here, no worker needed.
            let cancelled = lock(&inner.jobs)
                .get(&id)
                .map(|e| e.cancelled.load(Ordering::SeqCst))
                .unwrap_or(true);
            if cancelled {
                heap.pop();
                inner.set_state(
                    id,
                    JobState::Failed {
                        reason: "cancelled".into(),
                        detail: "cancelled while queued".into(),
                    },
                );
                let _ = std::fs::remove_file(JobId(id).checkpoint_path(&inner.cfg.state_dir));
                continue;
            }
            match run_tx.try_send(id) {
                Ok(()) => {
                    let top = heap.pop().expect("peeked");
                    running.insert(top.id, top.priority);
                }
                Err(crossbeam::channel::TrySendError::Full(_)) => {
                    preempt_for(&inner, top.priority, &running, &mut evicting);
                    break;
                }
                Err(crossbeam::channel::TrySendError::Disconnected(_)) => return,
            }
        }
    }
}

/// All workers busy and `waiting_priority` wants in: evict the lowest-
/// priority running job if it is strictly lower-priority than the waiter.
fn preempt_for(
    inner: &Arc<Inner>,
    waiting_priority: u8,
    running: &HashMap<u64, u8>,
    evicting: &mut std::collections::HashSet<u64>,
) {
    let victim = running
        .iter()
        .filter(|(id, _)| !evicting.contains(*id))
        .min_by_key(|(id, prio)| (**prio, u64::MAX - **id))
        .map(|(id, prio)| (*id, *prio));
    if let Some((id, prio)) = victim {
        if prio < waiting_priority {
            if let Some(entry) = lock(&inner.jobs).get(&id) {
                entry.evict.store(true, Ordering::SeqCst);
            }
            evicting.insert(id);
        }
    }
}

/// Drain for shutdown: evict every running job and wait until each has
/// settled (suspended with a checkpoint, or finished on its own).
fn drain(
    inner: &Arc<Inner>,
    running: &mut HashMap<u64, u8>,
    event_rx: &crossbeam::channel::Receiver<WorkerEvent>,
) {
    {
        let jobs = lock(&inner.jobs);
        for id in running.keys() {
            if let Some(entry) = jobs.get(id) {
                entry.evict.store(true, Ordering::SeqCst);
            }
        }
    }
    while !running.is_empty() {
        match event_rx.recv_timeout(Duration::from_millis(100)) {
            Ok(WorkerEvent::Settled(id)) | Ok(WorkerEvent::Requeue(id)) => {
                running.remove(&id);
            }
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break,
        }
    }
}

// ---------------------------------------------------------------------------
// Workers
// ---------------------------------------------------------------------------

fn worker_loop(inner: Arc<Inner>, rx: Arc<Mutex<crossbeam::channel::Receiver<u64>>>) {
    loop {
        // Holding the lock while parked in recv is deliberate: exactly one
        // worker waits at the rendezvous; the others queue on the mutex.
        let job_id = {
            let guard = lock(&rx);
            match guard.recv() {
                Ok(id) => id,
                Err(_) => return, // scheduler dropped run_tx: shutdown
            }
        };
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| execute_job(&inner, job_id)));
        let settled = match outcome {
            Ok(requeue) => !requeue,
            Err(payload) => {
                // A worker panic is a typed terminal state, not a dead pool.
                let detail = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "opaque panic payload".into());
                inner.set_state(
                    job_id,
                    JobState::Failed {
                        reason: "worker_panic".into(),
                        detail,
                    },
                );
                let _ = std::fs::remove_file(JobId(job_id).checkpoint_path(&inner.cfg.state_dir));
                true
            }
        };
        let ev = if settled {
            WorkerEvent::Settled(job_id)
        } else {
            WorkerEvent::Requeue(job_id)
        };
        if inner.event_tx.send(ev).is_err() {
            return;
        }
    }
}

/// What one execution segment of a job produced.
enum Segment {
    Terminal(JobState),
    Suspended {
        pass: usize,
        reason: String,
        requeue: bool,
    },
}

/// Execute one job until it finishes or suspends. Returns `true` when the
/// scheduler should requeue it (preemption).
fn execute_job(inner: &Arc<Inner>, id: u64) -> bool {
    let Some(record) = inner.job_record(id) else {
        return false;
    };
    let spec = record.spec.clone();
    let (evict, cancelled) = {
        let jobs = lock(&inner.jobs);
        let Some(e) = jobs.get(&id) else { return false };
        (Arc::clone(&e.evict), Arc::clone(&e.cancelled))
    };
    // Update jobs run the batched dynamic path; everything else replays a
    // static item trace through the pass-based batch engine.
    if let JobKind::Update {
        batch_size,
        capacity,
        guard,
    } = spec.kind
    {
        let segment = run_update_job(
            inner, id, &spec, &evict, &cancelled, batch_size, capacity, guard,
        );
        return settle_segment(inner, id, segment);
    }

    let trace = match inner.catalog.load_items(&spec.trace) {
        Ok(t) => t,
        Err(e) => {
            inner.set_state(
                id,
                JobState::Failed {
                    reason: "trace_unavailable".into(),
                    detail: e,
                },
            );
            return false;
        }
    };

    let segment = match spec.kind {
        JobKind::Validate => run_validate(&trace),
        JobKind::Triangles { t_lower } if spec.shards > 1 => {
            let budget = triangle_budget(trace.edges(), t_lower, spec.epsilon);
            run_sharded_triangles(inner, id, &spec, &trace, &cancelled, budget)
        }
        JobKind::Triangles { t_lower } => {
            let budget = triangle_budget(trace.edges(), t_lower, spec.epsilon);
            run_estimate(
                inner,
                id,
                &spec,
                &trace,
                &evict,
                &cancelled,
                budget,
                |seed| {
                    TwoPassTriangle::new(TwoPassTriangleConfig {
                        seed,
                        edge_sampling: EdgeSampling::BottomK { k: budget },
                        pair_capacity: budget,
                    })
                },
                |out| out.estimate,
            )
        }
        JobKind::FourCycles { t_lower } => {
            let budget = four_cycle_budget(trace.edges(), t_lower);
            run_estimate(
                inner,
                id,
                &spec,
                &trace,
                &evict,
                &cancelled,
                budget,
                |seed| {
                    TwoPassFourCycle::new(TwoPassFourCycleConfig {
                        seed,
                        edge_sample_size: budget,
                        estimator: FourCycleEstimator::DistinctCycles,
                        max_wedges: None,
                    })
                },
                |out| out.estimate,
            )
        }
        JobKind::Update { .. } => unreachable!("update jobs dispatched above"),
    };

    settle_segment(inner, id, segment)
}

/// Persist a finished/suspended execution segment; returns `true` when
/// the scheduler should requeue the job (preemption).
fn settle_segment(inner: &Arc<Inner>, id: u64, segment: Segment) -> bool {
    match segment {
        Segment::Terminal(state) => {
            let _ = std::fs::remove_file(JobId(id).checkpoint_path(&inner.cfg.state_dir));
            inner.set_state(id, state);
            false
        }
        Segment::Suspended {
            pass,
            reason,
            requeue,
        } => {
            inner.set_state(id, JobState::Suspended { pass, reason });
            requeue
        }
    }
}

fn run_validate(trace: &ItemTrace) -> Segment {
    match validate_stream(trace.items().iter().copied()) {
        Ok(edges) => {
            let estimate = edges as f64;
            Segment::Terminal(JobState::Done {
                result: JobResult {
                    estimate,
                    estimate_bits: estimate.to_bits(),
                    survivors: 1,
                    repetitions: 1,
                    passes: 1,
                    resumed_from: None,
                },
            })
        }
        Err(e) => Segment::Terminal(JobState::Failed {
            reason: "invalid_stream".into(),
            detail: e.to_string(),
        }),
    }
}

/// One completed update batch, as carried in the job checkpoint and the
/// `.batches` sidecar. `estimate_bits` is the exact bit pattern of the
/// post-batch estimate — the recovery chaos test compares these, so
/// "bit-identical per-batch deltas" is literal.
#[derive(Clone, Copy)]
struct BatchRow {
    events: u64,
    inserts: u64,
    ts_end: u64,
    estimate_bits: u64,
    delta_bits: u64,
}

/// Serialize the update-job checkpoint payload: progress cursor, the
/// per-batch ledger so far, then the guarded estimator's own state.
fn encode_update_ckpt(
    next_batch: usize,
    previous: f64,
    rows: &[BatchRow],
    guard: &GuardedUpdate<TriestFd>,
) -> std::io::Result<Vec<u8>> {
    let mut payload = Vec::new();
    write_usize(&mut payload, next_batch)?;
    write_u64(&mut payload, previous.to_bits())?;
    write_usize(&mut payload, rows.len())?;
    for row in rows {
        write_u64(&mut payload, row.events)?;
        write_u64(&mut payload, row.inserts)?;
        write_u64(&mut payload, row.ts_end)?;
        write_u64(&mut payload, row.estimate_bits)?;
        write_u64(&mut payload, row.delta_bits)?;
    }
    guard.save(&mut payload)?;
    Ok(payload)
}

#[allow(clippy::type_complexity)]
fn decode_update_ckpt(
    payload: &[u8],
) -> std::io::Result<(usize, f64, Vec<BatchRow>, GuardedUpdate<TriestFd>)> {
    let r = &mut &payload[..];
    let next_batch = read_usize(r)?;
    let previous = f64::from_bits(read_u64(r)?);
    let n = read_usize(r)?;
    let mut rows = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        rows.push(BatchRow {
            events: read_u64(r)?,
            inserts: read_u64(r)?,
            ts_end: read_u64(r)?,
            estimate_bits: read_u64(r)?,
            delta_bits: read_u64(r)?,
        });
    }
    let guard = GuardedUpdate::<TriestFd>::restore(r)?;
    Ok((next_batch, previous, rows, guard))
}

/// Write the per-batch sidecar an update job leaves next to its manifest:
/// one JSON document with every batch's estimate bits and the guard's
/// final tallies. Atomic (tmp + rename), same as manifests.
fn write_batches_sidecar(
    path: &Path,
    id: JobId,
    trace: &str,
    rows: &[BatchRow],
    guard: &GuardedUpdate<TriestFd>,
) {
    let batches: Vec<Json> = rows
        .iter()
        .enumerate()
        .map(|(i, row)| {
            obj(vec![
                ("batch", Json::Num(i as f64)),
                ("events", Json::Num(row.events as f64)),
                ("inserts", Json::Num(row.inserts as f64)),
                (
                    "deletes",
                    Json::Num(row.events.saturating_sub(row.inserts) as f64),
                ),
                ("ts_end", Json::Num(row.ts_end as f64)),
                (
                    "estimate_bits",
                    Json::Str(format!("{:016x}", row.estimate_bits)),
                ),
                ("delta_bits", Json::Str(format!("{:016x}", row.delta_bits))),
            ])
        })
        .collect();
    let stats = guard.stats();
    let doc = obj(vec![
        ("id", Json::Str(id.to_string())),
        ("trace", Json::Str(trace.to_string())),
        ("policy", Json::Str(guard.policy().to_string())),
        ("batches", Json::Arr(batches)),
        (
            "guard",
            obj(vec![
                ("events", Json::Num(stats.events as f64)),
                ("detections", Json::Num(stats.detections as f64)),
                (
                    "duplicate_inserts",
                    Json::Num(stats.duplicate_inserts as f64),
                ),
                ("dead_deletes", Json::Num(stats.dead_deletes as f64)),
                ("ts_regressions", Json::Num(stats.ts_regressions as f64)),
                ("dropped", Json::Num(stats.dropped as f64)),
                ("repaired_ts", Json::Num(stats.repaired_ts as f64)),
            ]),
        ),
    ]);
    let tmp = path.with_extension("batches.tmp");
    if std::fs::write(&tmp, format!("{doc}\n")).is_ok() {
        let _ = std::fs::rename(&tmp, path);
    }
}

/// Execute (or resume) a batched TRIÈST-FD update job. Every batch
/// boundary is a checkpoint: eviction, drain, and `kill -9` all land on
/// one, so the resumed run's remaining per-batch estimates are
/// bit-identical to an uninterrupted run's.
#[allow(clippy::too_many_arguments)]
fn run_update_job(
    inner: &Arc<Inner>,
    id: u64,
    spec: &JobSpec,
    evict: &AtomicBool,
    cancelled: &AtomicBool,
    batch_size: usize,
    capacity: usize,
    policy: GuardPolicy,
) -> Segment {
    let stream = match inner.catalog.load_updates(&spec.trace) {
        Ok(s) => s,
        Err(e) => {
            return Segment::Terminal(JobState::Failed {
                reason: "trace_unavailable".into(),
                detail: e,
            })
        }
    };
    let events = stream.events();
    let batch_size = batch_size.max(1);
    let total_batches = events.len().div_ceil(batch_size);
    let ckpt = JobId(id).checkpoint_path(&inner.cfg.state_dir);

    // Resume from the batch-boundary checkpoint when one survived; a
    // truncated or corrupt file is discarded and the job recomputes from
    // scratch — seeded determinism makes both roads produce identical
    // bits.
    let mut resumed_from = None;
    let (mut next_batch, mut previous, mut rows, mut guard) = match read_checkpoint_file(&ckpt)
        .ok()
        .and_then(|payload| decode_update_ckpt(&payload).ok())
    {
        Some(state) => {
            lock(&inner.counters).resumed += 1;
            resumed_from = Some(state.0);
            state
        }
        None => {
            let _ = std::fs::remove_file(&ckpt);
            let guard = GuardedUpdate::new(TriestFd::new(spec.seed, capacity), policy);
            let previous = guard.estimate();
            (0, previous, Vec::new(), guard)
        }
    };

    let deadline = spec
        .budget
        .deadline_ms
        .map(|ms| Instant::now() + Duration::from_millis(ms));

    while next_batch < total_batches {
        inner.set_state(id, JobState::Running { pass: next_batch });

        if cancelled.load(Ordering::SeqCst) {
            let _ = std::fs::remove_file(&ckpt);
            return Segment::Terminal(JobState::Failed {
                reason: "cancelled".into(),
                detail: format!("cancelled before batch {next_batch}"),
            });
        }
        if evict.swap(false, Ordering::SeqCst) {
            match encode_update_ckpt(next_batch, previous, &rows, &guard)
                .map_err(adjstream_stream::CheckpointError::Io)
                .and_then(|payload| write_checkpoint_file(&ckpt, &payload))
            {
                Ok(()) => {}
                Err(e) => {
                    return Segment::Terminal(JobState::Failed {
                        reason: "checkpoint".into(),
                        detail: e.to_string(),
                    })
                }
            }
            let draining = inner.draining.load(Ordering::SeqCst);
            return Segment::Suspended {
                pass: next_batch,
                reason: if draining { "drain" } else { "preempted" }.into(),
                requeue: !draining,
            };
        }

        // Chaos: widen the batch with a delay (sliced so drain/evict
        // during the sleep still suspends at this boundary).
        let mut remaining = spec.chaos.delay_ms_per_pass;
        while remaining > 0 {
            let slice = remaining.min(10);
            std::thread::sleep(Duration::from_millis(slice));
            remaining -= slice;
            if evict.load(Ordering::SeqCst) || cancelled.load(Ordering::SeqCst) {
                break;
            }
        }
        if cancelled.load(Ordering::SeqCst) {
            let _ = std::fs::remove_file(&ckpt);
            return Segment::Terminal(JobState::Failed {
                reason: "cancelled".into(),
                detail: format!("cancelled before batch {next_batch}"),
            });
        }
        if evict.swap(false, Ordering::SeqCst) {
            match encode_update_ckpt(next_batch, previous, &rows, &guard)
                .map_err(adjstream_stream::CheckpointError::Io)
                .and_then(|payload| write_checkpoint_file(&ckpt, &payload))
            {
                Ok(()) => {}
                Err(e) => {
                    return Segment::Terminal(JobState::Failed {
                        reason: "checkpoint".into(),
                        detail: e.to_string(),
                    })
                }
            }
            let draining = inner.draining.load(Ordering::SeqCst);
            return Segment::Suspended {
                pass: next_batch,
                reason: if draining { "drain" } else { "preempted" }.into(),
                requeue: !draining,
            };
        }

        // Chaos: simulated worker crash before this batch, caught by the
        // pool's unwind barrier and mapped to `Failed{worker_panic}`.
        if spec.chaos.panic_in_pass == Some(next_batch) {
            panic!("chaos: injected worker panic before batch {next_batch}");
        }

        if deadline.is_some_and(|d| Instant::now() >= d) {
            let _ = std::fs::remove_file(&ckpt);
            return Segment::Terminal(JobState::Failed {
                reason: "deadline".into(),
                detail: format!(
                    "deadline of {} ms expired before batch {next_batch}",
                    spec.budget.deadline_ms.unwrap_or(0)
                ),
            });
        }

        let start = next_batch * batch_size;
        let chunk = &events[start..events.len().min(start + batch_size)];
        let mut inserts = 0u64;
        for ev in chunk {
            if ev.op == adjstream_stream::update::UpdateOp::Insert {
                inserts += 1;
            }
            // Under Strict the first invalid event is a typed terminal
            // failure; Repair/Observe never return an error here.
            if let Err(v) = guard.apply_event(ev) {
                let _ = std::fs::remove_file(&ckpt);
                return Segment::Terminal(JobState::Failed {
                    reason: "guard_violation".into(),
                    detail: v.to_string(),
                });
            }
        }
        if let Some(limit) = spec.budget.max_total_bytes {
            let used = guard.space_bytes();
            if used > limit {
                let _ = std::fs::remove_file(&ckpt);
                return Segment::Terminal(JobState::Failed {
                    reason: "space_budget".into(),
                    detail: format!("update state used {used} bytes, limit {limit}"),
                });
            }
        }
        let estimate = guard.estimate();
        rows.push(BatchRow {
            events: chunk.len() as u64,
            inserts,
            ts_end: chunk.last().map(|e| e.ts).unwrap_or(0),
            estimate_bits: estimate.to_bits(),
            delta_bits: (estimate - previous).to_bits(),
        });
        previous = estimate;
        next_batch += 1;
        lock(&inner.counters).update_batches += 1;

        if next_batch < total_batches {
            match encode_update_ckpt(next_batch, previous, &rows, &guard)
                .map_err(adjstream_stream::CheckpointError::Io)
                .and_then(|payload| write_checkpoint_file(&ckpt, &payload))
            {
                Ok(()) => {}
                Err(e) => {
                    return Segment::Terminal(JobState::Failed {
                        reason: "checkpoint".into(),
                        detail: e.to_string(),
                    })
                }
            }
        }
    }

    let stats = guard.stats();
    {
        let mut c = lock(&inner.counters);
        c.guard_detections += stats.detections as u64;
        c.guard_dropped += stats.dropped as u64;
    }
    write_batches_sidecar(
        &JobId(id).batches_path(&inner.cfg.state_dir),
        JobId(id),
        &spec.trace,
        &rows,
        &guard,
    );
    let estimate = guard.estimate();
    Segment::Terminal(JobState::Done {
        result: JobResult {
            estimate,
            estimate_bits: estimate.to_bits(),
            survivors: 1,
            repetitions: 1,
            passes: total_batches,
            resumed_from,
        },
    })
}

/// Map a batch-engine error onto the job's typed failure vocabulary.
fn failure_from(e: &RunError) -> JobState {
    let reason = match e {
        RunError::DeadlineExceeded { .. } => "deadline",
        RunError::SpaceBudgetExceeded { .. } => "space_budget",
        RunError::Checkpoint { .. } => "checkpoint",
        _ => "run_error",
    };
    JobState::Failed {
        reason: reason.into(),
        detail: e.to_string(),
    }
}

#[allow(clippy::too_many_arguments)]
/// Graph-sharded execution of a triangles job (`spec.shards > 1`): each
/// repetition partitions the trace by list-owner vertex and runs the
/// shard-mergeable three-pass estimator, one worker thread per shard,
/// merging per-shard state at every pass boundary. The median over
/// repetitions amplifies confidence exactly as in the unsharded path.
///
/// Sharded repetitions run to completion: cancellation is honored at
/// repetition boundaries, and preemption/chaos hooks are not observed
/// mid-pass (the per-repetition work is bounded, so the scheduler regains
/// control quickly). `max_instance_bytes` is enforced against each
/// repetition's merged peak: an over-budget repetition is quarantined,
/// mirroring the batch engine's per-instance kill.
fn run_sharded_triangles(
    inner: &Arc<Inner>,
    id: u64,
    spec: &JobSpec,
    trace: &ItemTrace,
    cancelled: &AtomicBool,
    budget: usize,
) -> Segment {
    let reps = repetitions_for_confidence(spec.delta);
    let required = spec
        .min_survivors
        .unwrap_or_else(|| quorum(reps))
        .clamp(1, reps);
    let plan = ShardPlan::build(trace.items(), spec.shards);
    let sink = Metrics::from_flag(spec.collect_metrics);
    let mut runs: Vec<Option<f64>> = Vec::with_capacity(reps);
    for i in 0..reps {
        if cancelled.load(Ordering::SeqCst) {
            return Segment::Terminal(JobState::Failed {
                reason: "cancelled".into(),
                detail: format!("cancelled before repetition {i}"),
            });
        }
        inner.set_state(id, JobState::Running { pass: 0 });
        let cfg = ShardedTriangleConfig {
            seed: spec.seed.wrapping_add(i as u64),
            edge_sampling: EdgeSampling::BottomK { k: budget },
            pair_capacity: budget,
        };
        match run_sharded(ShardedTriangle::new(cfg), &plan, trace.items(), &sink) {
            Ok((out, report)) => {
                let over = spec
                    .budget
                    .max_instance_bytes
                    .is_some_and(|limit| report.peak_state_bytes > limit);
                runs.push((!over).then_some(out.estimate));
            }
            Err(e) => {
                return Segment::Terminal(JobState::Failed {
                    reason: "shard_failed".into(),
                    detail: e.to_string(),
                });
            }
        }
    }
    if let Some(snap) = sink.snapshot() {
        inner.absorb_metrics(&snap);
    }
    let survivors = runs.iter().flatten().count();
    match median_of_survivors(&runs, required) {
        Ok(report) => Segment::Terminal(JobState::Done {
            result: JobResult {
                estimate: report.median,
                estimate_bits: report.median.to_bits(),
                survivors,
                repetitions: reps,
                passes: 3,
                resumed_from: None,
            },
        }),
        Err(d) => Segment::Terminal(JobState::Degraded {
            survivors: d.survivors,
            required: d.required,
        }),
    }
}

#[allow(clippy::too_many_arguments)]
fn run_estimate<A, F, X>(
    inner: &Arc<Inner>,
    id: u64,
    spec: &JobSpec,
    trace: &ItemTrace,
    evict: &AtomicBool,
    cancelled: &AtomicBool,
    _sample_budget: usize,
    make: F,
    extract: X,
) -> Segment
where
    A: MultiPassAlgorithm + Checkpoint + Send,
    A::Output: Send,
    F: Fn(u64) -> A,
    X: Fn(&A::Output) -> f64,
{
    let reps = repetitions_for_confidence(spec.delta);
    let required = spec
        .min_survivors
        .unwrap_or_else(|| quorum(reps))
        .clamp(1, reps);
    let cfg = BatchConfig {
        budget: Budget {
            max_bytes_per_instance: spec.budget.max_instance_bytes,
            max_total_bytes: spec.budget.max_total_bytes,
            deadline: spec.budget.deadline_ms.map(Duration::from_millis),
        },
        metrics: spec.collect_metrics,
        ..BatchConfig::with_threads(1)
    };
    let ckpt = JobId(id).checkpoint_path(&inner.cfg.state_dir);

    // Restore from the job's checkpoint when one survived; a truncated or
    // corrupt file is discarded and the job recomputes from scratch —
    // seeded determinism makes both roads produce identical bits.
    let mut job: BatchJob<A> = if ckpt.exists() {
        match BatchJob::restore_from_file(&ckpt, &cfg) {
            Ok(job) => {
                lock(&inner.counters).resumed += 1;
                job
            }
            Err(_) => {
                let _ = std::fs::remove_file(&ckpt);
                match BatchJob::new(
                    (0..reps)
                        .map(|i| make(spec.seed.wrapping_add(i as u64)))
                        .collect(),
                    &cfg,
                ) {
                    Ok(job) => job,
                    Err(e) => return Segment::Terminal(failure_from(&e)),
                }
            }
        }
    } else {
        match BatchJob::new(
            (0..reps)
                .map(|i| make(spec.seed.wrapping_add(i as u64)))
                .collect(),
            &cfg,
        ) {
            Ok(job) => job,
            Err(e) => return Segment::Terminal(failure_from(&e)),
        }
    };

    // The engine re-arms `Budget::deadline` per segment; this outer clock
    // additionally covers chaos delays and suspension-free stretches.
    let deadline = spec
        .budget
        .deadline_ms
        .map(|ms| Instant::now() + Duration::from_millis(ms));
    let mut generations = 0usize;

    while !job.is_complete() {
        let pass = job.completed_passes();
        inner.set_state(id, JobState::Running { pass });

        if cancelled.load(Ordering::SeqCst) {
            let _ = std::fs::remove_file(&ckpt);
            return Segment::Terminal(JobState::Failed {
                reason: "cancelled".into(),
                detail: format!("cancelled before pass {pass}"),
            });
        }
        if evict.swap(false, Ordering::SeqCst) {
            if let Err(e) = job.write_checkpoint(&ckpt) {
                return Segment::Terminal(failure_from(&e));
            }
            let draining = inner.draining.load(Ordering::SeqCst);
            return Segment::Suspended {
                pass,
                reason: if draining { "drain" } else { "preempted" }.into(),
                requeue: !draining,
            };
        }

        // Chaos: widen the pass with a delay (sliced so drain/evict during
        // the sleep still suspends at this boundary, not a pass later).
        let mut remaining = spec.chaos.delay_ms_per_pass;
        while remaining > 0 {
            let slice = remaining.min(10);
            std::thread::sleep(Duration::from_millis(slice));
            remaining -= slice;
            if evict.load(Ordering::SeqCst) || cancelled.load(Ordering::SeqCst) {
                break;
            }
        }
        if cancelled.load(Ordering::SeqCst) {
            let _ = std::fs::remove_file(&ckpt);
            return Segment::Terminal(JobState::Failed {
                reason: "cancelled".into(),
                detail: format!("cancelled before pass {pass}"),
            });
        }
        if evict.swap(false, Ordering::SeqCst) {
            if let Err(e) = job.write_checkpoint(&ckpt) {
                return Segment::Terminal(failure_from(&e));
            }
            let draining = inner.draining.load(Ordering::SeqCst);
            return Segment::Suspended {
                pass,
                reason: if draining { "drain" } else { "preempted" }.into(),
                requeue: !draining,
            };
        }

        // Chaos: simulated worker crash, caught by the pool's unwind
        // barrier and mapped to `Failed{worker_panic}`.
        if spec.chaos.panic_in_pass == Some(pass) {
            panic!("chaos: injected worker panic before pass {pass}");
        }

        if deadline.is_some_and(|d| Instant::now() >= d) {
            let _ = std::fs::remove_file(&ckpt);
            return Segment::Terminal(JobState::Failed {
                reason: "deadline".into(),
                detail: format!(
                    "deadline of {} ms expired before pass {pass}",
                    spec.budget.deadline_ms.unwrap_or(0)
                ),
            });
        }

        if let Err(e) = job.run_pass(trace.items()) {
            let _ = std::fs::remove_file(&ckpt);
            return Segment::Terminal(failure_from(&e));
        }
        generations += 1;
        job.set_source_generations(generations);

        if !job.is_complete() {
            if let Err(e) = job.write_checkpoint(&ckpt) {
                return Segment::Terminal(failure_from(&e));
            }
        }
    }

    let resumed_from = job.resumed_from();
    let out = job.finish();
    if let Some(snap) = &out.report.metrics {
        inner.absorb_metrics(snap);
    }
    let runs: Vec<Option<f64>> = out
        .outputs
        .iter()
        .map(|o| o.as_ref().map(&extract))
        .collect();
    let survivors = runs.iter().flatten().count();
    match median_of_survivors(&runs, required) {
        Ok(report) => Segment::Terminal(JobState::Done {
            result: JobResult {
                estimate: report.median,
                estimate_bits: report.median.to_bits(),
                survivors,
                repetitions: reps,
                passes: out.report.passes,
                resumed_from,
            },
        }),
        Err(d) => Segment::Terminal(JobState::Degraded {
            survivors: d.survivors,
            required: d.required,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queued_job_ordering_prefers_priority_then_fifo() {
        let mut heap = BinaryHeap::new();
        heap.push(QueuedJob { priority: 4, id: 1 });
        heap.push(QueuedJob { priority: 9, id: 2 });
        heap.push(QueuedJob { priority: 4, id: 0 });
        assert_eq!(heap.pop().unwrap().id, 2, "highest priority first");
        assert_eq!(heap.pop().unwrap().id, 0, "FIFO within a priority");
        assert_eq!(heap.pop().unwrap().id, 1);
    }

    #[test]
    fn failure_mapping_is_typed() {
        let s = failure_from(&RunError::DeadlineExceeded { limit_ms: 5 });
        assert!(matches!(s, JobState::Failed { ref reason, .. } if reason == "deadline"));
        let s = failure_from(&RunError::SpaceBudgetExceeded { used: 9, limit: 1 });
        assert!(matches!(s, JobState::Failed { ref reason, .. } if reason == "space_budget"));
    }
}

//! Offline stand-in for the `crossbeam` crate.
//!
//! The workspace only uses `crossbeam::thread::scope` for structured
//! fork/join parallelism, which `std::thread::scope` (Rust ≥ 1.63) covers
//! directly. This shim adapts std's scope to crossbeam's signature: the
//! spawned closure receives the scope (so it could spawn recursively), and
//! `scope` returns `Err` instead of unwinding when a child thread panics.

#![warn(missing_docs)]

/// Scoped threads.
pub mod thread {
    use std::any::Any;

    /// The error payload of a panicked scope: the panic value of one of its
    /// threads.
    pub type PanicPayload = Box<dyn Any + Send + 'static>;

    /// A scope handle; crossbeam passes this to every spawned closure.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread guaranteed to join before the scope ends. The
        /// closure receives the scope, mirroring crossbeam's API.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Run `f` with a scope in which threads borrowing from the environment
    /// can be spawned; all of them join before `scope` returns. Returns
    /// `Err` with the panic payload if any spawned thread panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let mut data = vec![0u64; 8];
        super::thread::scope(|scope| {
            for (i, slot) in data.iter_mut().enumerate() {
                scope.spawn(move |_| {
                    *slot = i as u64 + 1;
                });
            }
        })
        .unwrap();
        assert_eq!(data, (1..=8).collect::<Vec<_>>());
    }

    #[test]
    fn child_panic_becomes_err() {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let r = super::thread::scope(|scope| {
            scope.spawn(|_| panic!("boom"));
        });
        std::panic::set_hook(prev);
        assert!(r.is_err());
    }
}

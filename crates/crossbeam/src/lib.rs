//! Offline stand-in for the `crossbeam` crate.
//!
//! The workspace uses `crossbeam::thread::scope` for structured fork/join
//! parallelism and `crossbeam::channel::bounded` for backpressured fan-out,
//! both of which the standard library covers directly (`std::thread::scope`
//! on Rust ≥ 1.63, `std::sync::mpsc::sync_channel`). This shim adapts std's
//! primitives to crossbeam's signatures: the spawned closure receives the
//! scope (so it could spawn recursively), `scope` returns `Err` instead of
//! unwinding when a child thread panics, and `channel::bounded` returns a
//! cloneable blocking sender plus a receiver.

#![warn(missing_docs)]

/// Bounded multi-producer channels.
pub mod channel {
    use std::sync::mpsc;

    /// The send half of a bounded channel. `send` blocks while the channel
    /// is full — that blocking is the backpressure the batch engine relies
    /// on — and fails only when the receiver is gone.
    pub struct Sender<T>(mpsc::SyncSender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    /// Error returned by [`Sender::send`] when the receiving side has been
    /// dropped; carries the unsent value back.
    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Sender::try_send`]: either the channel is at
    /// capacity or the receiving side has been dropped. Carries the unsent
    /// value back in both cases.
    #[derive(Debug)]
    pub enum TrySendError<T> {
        /// The channel buffer is full (or, for a rendezvous channel, no
        /// receiver is currently blocked in `recv`).
        Full(T),
        /// The receiving side has been dropped.
        Disconnected(T),
    }

    /// Error returned by [`Receiver::recv`] when every sender is gone and
    /// the buffer is drained.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No value arrived within the timeout.
        Timeout,
        /// Every sender is gone and the buffer is drained.
        Disconnected,
    }

    impl<T> Sender<T> {
        /// Send `value`, blocking while the channel is at capacity.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }

        /// Attempt to send `value` without blocking; fails immediately with
        /// [`TrySendError::Full`] when the channel is at capacity. This is
        /// the primitive behind typed backpressure: a full intake queue is
        /// reported to the caller instead of buffered without bound.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            self.0.try_send(value).map_err(|e| match e {
                mpsc::TrySendError::Full(v) => TrySendError::Full(v),
                mpsc::TrySendError::Disconnected(v) => TrySendError::Disconnected(v),
            })
        }
    }

    /// The receive half of a bounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Receive the next value, blocking until one is available or every
        /// sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Receive the next value, blocking for at most `timeout`.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Receive a value only if one is already buffered; never blocks.
        pub fn try_recv(&self) -> Result<T, RecvTimeoutError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => RecvTimeoutError::Timeout,
                mpsc::TryRecvError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Blocking iterator over received values; ends when every sender
        /// is dropped.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.0.iter()
        }
    }

    /// Create a bounded channel holding at most `cap` in-flight values
    /// (`cap = 0` makes every send a rendezvous).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }
}

/// Scoped threads.
pub mod thread {
    use std::any::Any;

    /// The error payload of a panicked scope: the panic value of one of its
    /// threads.
    pub type PanicPayload = Box<dyn Any + Send + 'static>;

    /// A scope handle; crossbeam passes this to every spawned closure.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread guaranteed to join before the scope ends. The
        /// closure receives the scope, mirroring crossbeam's API.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Run `f` with a scope in which threads borrowing from the environment
    /// can be spawned; all of them join before `scope` returns. Returns
    /// `Err` with the panic payload if any spawned thread panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn bounded_channel_delivers_in_order_and_closes() {
        let (tx, rx) = super::channel::bounded(2);
        let tx2 = tx.clone();
        super::thread::scope(|scope| {
            scope.spawn(move |_| {
                for i in 0..50u32 {
                    tx.send(i).unwrap();
                }
            });
            scope.spawn(move |_| {
                for i in 50..100u32 {
                    tx2.send(i).unwrap();
                }
            });
            let mut got: Vec<u32> = rx.iter().collect();
            got.sort_unstable();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        })
        .unwrap();
    }

    #[test]
    fn send_to_dropped_receiver_errors() {
        let (tx, rx) = super::channel::bounded::<u8>(1);
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn recv_after_senders_dropped_errors() {
        let (tx, rx) = super::channel::bounded::<u8>(4);
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(super::channel::RecvError));
    }

    #[test]
    fn try_send_reports_full_without_blocking() {
        let (tx, rx) = super::channel::bounded::<u8>(1);
        assert!(tx.try_send(1).is_ok());
        match tx.try_send(2) {
            Err(super::channel::TrySendError::Full(2)) => {}
            other => panic!("expected Full(2), got {other:?}"),
        }
        drop(rx);
        match tx.try_send(3) {
            Err(super::channel::TrySendError::Disconnected(3)) => {}
            other => panic!("expected Disconnected(3), got {other:?}"),
        }
    }

    #[test]
    fn recv_timeout_times_out_and_delivers() {
        let (tx, rx) = super::channel::bounded::<u8>(1);
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_millis(5)),
            Err(super::channel::RecvTimeoutError::Timeout)
        );
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(std::time::Duration::from_millis(5)), Ok(9));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_millis(5)),
            Err(super::channel::RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn scoped_threads_borrow_and_join() {
        let mut data = vec![0u64; 8];
        super::thread::scope(|scope| {
            for (i, slot) in data.iter_mut().enumerate() {
                scope.spawn(move |_| {
                    *slot = i as u64 + 1;
                });
            }
        })
        .unwrap();
        assert_eq!(data, (1..=8).collect::<Vec<_>>());
    }

    #[test]
    fn child_panic_becomes_err() {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let r = super::thread::scope(|scope| {
            scope.spawn(|_| panic!("boom"));
        });
        std::panic::set_hook(prev);
        assert!(r.is_err());
    }
}

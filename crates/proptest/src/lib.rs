//! Offline stand-in for the `proptest` crate.
//!
//! Supplies the subset of proptest's API this workspace uses — the
//! [`Strategy`] trait, range / tuple / collection strategies, [`any`],
//! `prop_map`, the [`proptest!`] macro, and `prop_assert*` — backed by a
//! deterministic SplitMix64 generator. Each test case's seed is derived
//! from the test's name and case index, so failures are reproducible run
//! to run. Unlike real proptest there is **no shrinking**: a failing case
//! reports its inputs via the assertion message only.

#![warn(missing_docs)]

/// Deterministic generator handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed a generator.
    pub fn seed_from_u64(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next pseudo-random word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound || low >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// FNV-1a over a test's name, mixed with the case index: the per-case seed.
pub fn case_seed(name: &str, case: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// How many cases a `proptest!` block runs.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `pred`, retrying a bounded number of
    /// times (panics if the predicate is too restrictive).
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            pred,
            reason,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    pred: F,
    reason: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 candidates: {}", self.reason);
    }
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u64) - (start as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + rng.below(span + 1) as $t
            }
        }
    )*};
}

int_strategies!(u8, u16, u32, u64, usize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategies {
    ($(($($s:ident : $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

/// Strategy for [`Arbitrary`] types; see [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The unconstrained strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Combinator namespace mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};

        /// Strategy for `Vec<S::Value>` with length drawn from `len`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            len: std::ops::Range<usize>,
        }

        /// A vector whose length is uniform in `len` and whose elements come
        /// from `element`.
        pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = if self.len.start >= self.len.end {
                    self.len.start
                } else {
                    self.len.start + rng.below((self.len.end - self.len.start) as u64) as usize
                };
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Everything a `use proptest::prelude::*;` consumer expects in scope.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary,
        ProptestConfig, Strategy,
    };
}

/// Assert inside a property: plain `assert!` (no shrinking to report).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Define `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports the subset of real proptest syntax the workspace uses: an
/// optional `#![proptest_config(expr)]` header followed by test functions
/// with `pattern in strategy` parameters.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for __case in 0..config.cases as u64 {
                    let mut __rng = $crate::TestRng::seed_from_u64(
                        $crate::case_seed(concat!(module_path!(), "::", stringify!($name)), __case),
                    );
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vecs_respect_bounds() {
        let mut rng = crate::TestRng::seed_from_u64(1);
        let s = prop::collection::vec((0u32..10, 0u32..10), 0..5);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v.len() < 5);
            assert!(v.iter().all(|&(a, b)| a < 10 && b < 10));
        }
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = crate::TestRng::seed_from_u64(2);
        let s = (0u32..5).prop_map(|x| x * 2);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!(v % 2 == 0 && v < 10);
        }
    }

    #[test]
    fn case_seeds_differ_between_tests_and_cases() {
        assert_ne!(crate::case_seed("a", 0), crate::case_seed("b", 0));
        assert_ne!(crate::case_seed("a", 0), crate::case_seed("a", 1));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_draws_all_params(x in 0u64..100, (a, b) in (0u32..4, 0u32..4), mut v in prop::collection::vec(any::<bool>(), 0..6)) {
            prop_assert!(x < 100);
            prop_assert!(a < 4 && b < 4);
            v.push(true);
            prop_assert!(v.len() <= 6);
        }
    }
}

//! Integration tests of the batched shared-pass engine against the
//! sequential drivers, through the public facade API: order-contract error
//! paths, engine agreement at every level of the stack, the restored
//! pass-optimality of guess-and-verify, and a proptest that both engines
//! report identical guard statistics on fault-injected streams.

use adjstream::algo::common::EdgeSampling;
use adjstream::algo::estimate::{estimate_triangles, estimate_triangles_auto, Accuracy, Engine};
use adjstream::algo::triangle::{TwoPassTriangle, TwoPassTriangleConfig};
use adjstream::graph::{gen, Graph};
use adjstream::stream::batch::{BatchConfig, BatchRunner};
use adjstream::stream::trace::ItemTrace;
use adjstream::stream::{
    run_item_passes, run_slice_passes, AdjListStream, FaultKind, FaultPlan, GuardPolicy, Guarded,
    PassOrders, RunError, StreamOrder, ValidatorMode,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn er_graph(seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    gen::gnm(120, 600, &mut rng)
}

fn triangle_instances(reps: usize, base_seed: u64, budget: usize) -> Vec<TwoPassTriangle> {
    (0..reps)
        .map(|i| {
            TwoPassTriangle::new(TwoPassTriangleConfig {
                seed: base_seed.wrapping_add(i as u64),
                edge_sampling: EdgeSampling::BottomK { k: budget },
                pair_capacity: budget,
            })
        })
        .collect()
}

#[test]
fn batched_engine_rejects_wrong_order_count() {
    let g = er_graph(1);
    let err = BatchRunner::try_run(
        &g,
        triangle_instances(3, 9, 64),
        &PassOrders::PerPass(vec![StreamOrder::natural(120)]),
        &BatchConfig::default(),
    )
    .unwrap_err();
    assert_eq!(
        err,
        RunError::WrongOrderCount {
            expected: 2,
            got: 1
        }
    );
}

#[test]
fn batched_engine_rejects_order_mismatch_for_order_sensitive_algorithms() {
    let g = er_graph(2);
    // TwoPassTriangle requires identical pass orders.
    let err = BatchRunner::try_run(
        &g,
        triangle_instances(3, 9, 64),
        &PassOrders::PerPass(vec![StreamOrder::natural(120), StreamOrder::reversed(120)]),
        &BatchConfig::default(),
    )
    .unwrap_err();
    assert_eq!(err, RunError::OrderMismatch);
    // Equal PerPass entries satisfy the contract, exactly as with Runner.
    let order = StreamOrder::shuffled(120, 5);
    assert!(BatchRunner::try_run(
        &g,
        triangle_instances(3, 9, 64),
        &PassOrders::PerPass(vec![order.clone(), order]),
        &BatchConfig::default(),
    )
    .is_ok());
}

#[test]
fn driver_runs_vectors_are_engine_invariant() {
    let g = er_graph(3);
    let order = StreamOrder::shuffled(g.vertex_count(), 17);
    let base = Accuracy {
        epsilon: 0.4,
        delta: 0.25,
        seed: 77,
        threads: 1,
        engine: Engine::Sequential,
        ..Accuracy::default()
    };
    let seq = estimate_triangles(&g, &order, 50, base);
    for threads in [1, 4] {
        let bat = estimate_triangles(
            &g,
            &order,
            50,
            Accuracy {
                threads,
                engine: Engine::Batched,
                ..base
            },
        );
        assert_eq!(seq.report.runs, bat.report.runs, "threads = {threads}");
        assert_eq!(seq.count, bat.count);
        assert_eq!(seq.report.nan_runs, bat.report.nan_runs);
    }
}

#[test]
fn auto_driver_is_pass_optimal_under_the_batched_engine() {
    let g = gen::disjoint_cliques(8, 10).disjoint_union(&er_graph(4));
    let order = StreamOrder::shuffled(g.vertex_count(), 6);
    let acc = Accuracy {
        epsilon: 0.35,
        delta: 0.2,
        seed: 31,
        threads: 2,
        engine: Engine::Batched,
        ..Accuracy::default()
    };
    let est = estimate_triangles_auto(&g, &order, acc);
    assert_eq!(est.stream_passes, 2, "all guess levels share one execution");
    let batch = est.batch.expect("batched engine attaches its report");
    assert_eq!(batch.stream_generations, 1);
    assert!(batch.instances > est.repetitions, "many levels resident");
    let seq = estimate_triangles_auto(
        &g,
        &order,
        Accuracy {
            engine: Engine::Sequential,
            ..acc
        },
    );
    assert!(seq.stream_passes >= 2 * seq.repetitions);
    assert_eq!(seq.report.runs, est.report.runs, "same accepted level");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Batched and sequential executions of guarded ingestion must agree on
    /// the guard's fault counters for any injected fault mix: the shared
    /// validator sees the same corrupted item sequence either way.
    #[test]
    fn engines_agree_on_guard_stats_under_faults(
        graph_seed in 0u64..500,
        fault_seed in 0u64..500,
        dropped in 0usize..3,
        duplicated in 0usize..3,
        self_loops in 0usize..2,
        threads in 1usize..5,
    ) {
        let mut rng = StdRng::seed_from_u64(graph_seed);
        let g = gen::gnm(40, 150, &mut rng);
        let items = AdjListStream::new(&g, StreamOrder::shuffled(40, graph_seed)).collect_items();
        let corrupted = FaultPlan::new(fault_seed)
            .with(FaultKind::DropDirection, dropped)
            .with(FaultKind::DuplicateItem, duplicated)
            .with(FaultKind::InjectSelfLoop, self_loops)
            .apply(&items);

        // Sequential reference: one guarded instance driven by the shared
        // single-instance loop.
        let (_, seq_report) = run_item_passes(
            Guarded::new(
                TwoPassTriangle::new(TwoPassTriangleConfig {
                    seed: 3,
                    edge_sampling: EdgeSampling::BottomK { k: 32 },
                    pair_capacity: 32,
                }),
                GuardPolicy::Repair,
            ),
            |p| corrupted.items_for_pass(p).to_vec(),
        )
        .expect("repair policy never aborts on these fault kinds");
        let want = seq_report.guard.expect("guarded run publishes stats");

        // Batched run: several instances behind ONE shared validator.
        let out = BatchRunner::try_run_items(
            triangle_instances(5, 3, 32),
            |p| corrupted.items_for_pass(p).to_vec(),
            &BatchConfig {
                threads,
                guard: Some((GuardPolicy::Repair, ValidatorMode::Exact)),
                ..BatchConfig::default()
            },
        )
        .expect("repair policy never aborts on these fault kinds");
        let got = out.report.guard.expect("shared guard publishes stats");

        // Seeded hashing makes the validator's map capacities — and so its
        // peak bytes — a pure function of the stream, so the whole stats
        // struct is the deterministic contract.
        prop_assert_eq!(got, want);
        // Every instance consumed the identical repaired stream.
        let per_items: Vec<usize> =
            out.report.per_instance.iter().map(|r| r.items).collect();
        prop_assert!(per_items.iter().all(|&i| i == per_items[0]));
    }

    /// Slice-batched dispatch is a pure performance change: estimates
    /// (bit for bit), peak byte meters, and guard statistics must be
    /// identical to per-item dispatch across the sequential drivers and
    /// both batched-engine configurations at 1 and 4 threads — including
    /// on fault-injected streams behind a repair guard.
    #[test]
    fn slice_dispatch_is_bit_identical_to_per_item(
        graph_seed in 0u64..300,
        algo_seed in 0u64..100,
        dropped in 0usize..3,
        self_loops in 0usize..2,
    ) {
        let mut rng = StdRng::seed_from_u64(graph_seed);
        let g = gen::gnm(40, 160, &mut rng);
        let items = AdjListStream::new(&g, StreamOrder::shuffled(40, graph_seed)).collect_items();
        let corrupted = FaultPlan::new(graph_seed ^ 0xFA)
            .with(FaultKind::DropDirection, dropped)
            .with(FaultKind::InjectSelfLoop, self_loops)
            .apply(&items);
        let algo = |seed: u64| {
            TwoPassTriangle::new(TwoPassTriangleConfig {
                seed,
                edge_sampling: EdgeSampling::BottomK { k: 48 },
                pair_capacity: 48,
            })
        };

        // Sequential per-item reference.
        let (ref_est, ref_report) = run_item_passes(
            Guarded::new(algo(algo_seed), GuardPolicy::Repair),
            |p| corrupted.items_for_pass(p).to_vec(),
        )
        .expect("repair policy never aborts on these fault kinds");
        let ref_guard = ref_report.guard.expect("guarded run publishes stats");

        // Sequential slice driver.
        let (slice_est, slice_report) = run_slice_passes(
            Guarded::new(algo(algo_seed), GuardPolicy::Repair),
            |p| corrupted.items_for_pass(p).to_vec(),
        )
        .expect("same stream, same policy");
        prop_assert_eq!(slice_est.estimate.to_bits(), ref_est.estimate.to_bits());
        prop_assert_eq!(slice_est, ref_est);
        prop_assert_eq!(slice_report.peak_state_bytes, ref_report.peak_state_bytes);
        prop_assert_eq!(slice_report.items_processed, ref_report.items_processed);
        prop_assert_eq!(
            slice_report.guard.expect("guarded run publishes stats"),
            ref_guard
        );

        // Batched engine, slice dispatch on and off, single- and
        // multi-threaded: all must reproduce the reference run of each
        // instance seed exactly.
        for threads in [1usize, 4] {
            for slice_dispatch in [true, false] {
                let out = BatchRunner::try_run_items(
                    (0..3).map(|i| algo(algo_seed.wrapping_add(i))).collect::<Vec<_>>(),
                    |p| corrupted.items_for_pass(p).to_vec(),
                    &BatchConfig {
                        threads,
                        slice_dispatch,
                        guard: Some((GuardPolicy::Repair, ValidatorMode::Exact)),
                        ..BatchConfig::default()
                    },
                )
                .expect("repair policy never aborts on these fault kinds");
                let (want, _) = run_item_passes(
                    Guarded::new(algo(algo_seed), GuardPolicy::Repair),
                    |p| corrupted.items_for_pass(p).to_vec(),
                )
                .unwrap();
                let got = out.outputs[0].as_ref().expect("instance finished");
                prop_assert_eq!(
                    got.estimate.to_bits(),
                    want.estimate.to_bits(),
                    "threads {} slice {}",
                    threads,
                    slice_dispatch
                );
                let stats = out.report.guard.expect("shared guard publishes stats");
                prop_assert_eq!(stats.faults_detected, ref_guard.faults_detected);
                prop_assert_eq!(stats.items_repaired, ref_guard.items_repaired);
            }
        }
    }

    /// A trace serialized to the binary container and loaded back (through
    /// format sniffing) is item-for-item identical to its text form, and
    /// flipping any payload byte is rejected by the checksum.
    #[test]
    fn binary_trace_roundtrip_matches_text(
        graph_seed in 0u64..500,
        order_seed in 0u64..100,
        flip_at in 0usize..10_000,
    ) {
        let mut rng = StdRng::seed_from_u64(graph_seed);
        let g = gen::gnm(30, 120, &mut rng);
        let items = AdjListStream::new(&g, StreamOrder::shuffled(30, order_seed)).collect_items();

        // Text form.
        let mut text = String::new();
        for it in &items {
            text.push_str(&format!("{} {}\n", it.src, it.dst));
        }
        let from_text = ItemTrace::read(text.as_bytes()).expect("generated stream is valid");

        // Binary round trip.
        let mut bytes = Vec::new();
        from_text.write_adjb(&mut bytes).unwrap();
        let from_bin = ItemTrace::read(bytes.as_slice()).expect("own writer output is valid");
        prop_assert_eq!(from_bin.items(), from_text.items());
        prop_assert_eq!(from_bin.edges(), from_text.edges());

        // Corruption in the checksummed region (anything after magic +
        // version) must be rejected with a typed error, never mis-parsed.
        let at = 12 + flip_at % (bytes.len() - 12);
        bytes[at] ^= 0x10;
        prop_assert!(ItemTrace::read(bytes.as_slice()).is_err());
    }
}

//! Corruption tolerance: seeded fault injection, online validation parity
//! with the offline checker, and graceful degradation of the two-pass
//! triangle estimator under the guard policies.

use std::collections::HashMap;

use adjstream::algo::common::EdgeSampling;
use adjstream::algo::triangle::{TwoPassTriangle, TwoPassTriangleConfig};
use adjstream::graph::{exact, gen, GraphBuilder};
use adjstream::stream::trace::ItemTrace;
use adjstream::stream::{
    validate_online, validate_stream, AdjListStream, FaultKind, FaultPlan, GuardPolicy, Guarded,
    OnlineValidator, RunError, StreamItem, StreamOrder,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn stream_items(n: usize, m: usize, seed: u64) -> Vec<StreamItem> {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = gen::gnm(n, m, &mut rng);
    AdjListStream::new(&g, StreamOrder::shuffled(n, seed ^ 0xF00D)).collect_items()
}

/// The stream-level fault kinds (everything except `ReorderPass`, which
/// only manifests across passes).
const STREAM_FAULTS: [FaultKind; 6] = [
    FaultKind::DropDirection,
    FaultKind::DuplicateItem,
    FaultKind::SplitList,
    FaultKind::InjectSelfLoop,
    FaultKind::CorruptVertex,
    FaultKind::TruncateTail,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The exact online validator agrees with the offline reference checker
    /// decision-for-decision — same `Ok` edge count on valid streams, same
    /// error variant, payload, and (earliest detectable) position on
    /// corrupted ones — across random graphs, orders, and fault seeds.
    #[test]
    fn online_exact_matches_offline_validator(
        n in 8usize..48,
        m_raw in 8usize..160,
        gseed in proptest::prelude::any::<u64>(),
        fseed in proptest::prelude::any::<u64>(),
        fault_ix in 0usize..8,
    ) {
        let m = m_raw.min(n * (n - 1) / 2);
        let items = stream_items(n, m, gseed);
        // fault_ix ≥ STREAM_FAULTS.len() leaves the stream clean, so the
        // Ok path is exercised too.
        let corrupted = match STREAM_FAULTS.get(fault_ix) {
            Some(&kind) => FaultPlan::new(fseed).with(kind, 1).apply(&items).items().to_vec(),
            None => items,
        };
        let offline = validate_stream(corrupted.iter().copied());
        let mut v = OnlineValidator::exact();
        let online = validate_online(&mut v, corrupted.iter().copied());
        prop_assert_eq!(offline, online);
    }

    /// Composed multi-fault plans still keep the two validators in
    /// agreement (the first detectable violation wins in both).
    #[test]
    fn online_offline_agree_under_composed_faults(
        gseed in proptest::prelude::any::<u64>(),
        fseed in proptest::prelude::any::<u64>(),
    ) {
        let items = stream_items(30, 100, gseed);
        let corrupted = FaultPlan::new(fseed)
            .with(FaultKind::DropDirection, 2)
            .with(FaultKind::DuplicateItem, 1)
            .with(FaultKind::InjectSelfLoop, 1)
            .apply(&items);
        let offline = validate_stream(corrupted.items().iter().copied());
        let mut v = OnlineValidator::exact();
        let online = validate_online(&mut v, corrupted.items().iter().copied());
        prop_assert!(offline.is_err());
        prop_assert_eq!(offline, online);
    }
}

#[test]
fn strict_policy_rejects_every_fault_class() {
    let items = stream_items(30, 120, 77);
    let cfg = TwoPassTriangleConfig {
        seed: 5,
        edge_sampling: EdgeSampling::Threshold { p: 1.0 },
        pair_capacity: usize::MAX,
    };
    // Every stream-level fault class, plus the cross-pass reorder fault
    // (TwoPassTriangle requires identical pass orders).
    for kind in [
        FaultKind::DropDirection,
        FaultKind::DuplicateItem,
        FaultKind::SplitList,
        FaultKind::InjectSelfLoop,
        FaultKind::CorruptVertex,
        FaultKind::TruncateTail,
        FaultKind::ReorderPass,
    ] {
        for seed in 0..3u64 {
            let c = FaultPlan::new(seed).with(kind, 1).apply(&items);
            assert!(c.skipped().is_empty(), "{kind} skipped at seed {seed}");
            let guarded = Guarded::new(TwoPassTriangle::new(cfg), GuardPolicy::Strict);
            let err = c
                .try_run(guarded)
                .expect_err(&format!("strict guard must reject {kind} (seed {seed})"));
            assert!(
                matches!(err, RunError::Invalid { .. }),
                "{kind} seed {seed}: {err:?}"
            );
        }
    }
    // And the clean stream sails through.
    let guarded = Guarded::new(TwoPassTriangle::new(cfg), GuardPolicy::Strict);
    let trace = ItemTrace::new_unchecked(items);
    let (_, report) = trace.try_run(guarded).unwrap();
    assert_eq!(report.guard.unwrap().faults_detected, 0);
}

#[test]
fn repair_policy_degrades_gracefully_under_edge_drops() {
    // 20 disjoint K10s: 2400 triangles over 900 edges, so each dropped
    // edge costs exactly the 8 triangles through it (≤ 1% total here).
    let g = gen::disjoint_cliques(10, 20);
    let truth = exact::count_triangles(&g) as f64;
    let items = AdjListStream::new(&g, StreamOrder::shuffled(g.vertex_count(), 5)).collect_items();
    let drops = 3;
    let c = FaultPlan::new(11)
        .with(FaultKind::DropDirection, drops)
        .apply(&items);
    assert!(c.skipped().is_empty());
    let cfg = TwoPassTriangleConfig {
        seed: 9,
        edge_sampling: EdgeSampling::Threshold { p: 1.0 },
        pair_capacity: usize::MAX,
    };
    let guarded = Guarded::new(TwoPassTriangle::new(cfg), GuardPolicy::Repair);
    let (est, report) = c.try_run(guarded).unwrap();

    // Accounting: every injected fault shows up in the report, nothing else.
    let stats = report.guard.unwrap();
    assert_eq!(stats.faults_detected, drops);
    assert_eq!(stats.faults_detected, c.expected_detections());
    assert_eq!(stats.edges_quarantined, drops);
    assert_eq!(stats.items_repaired, 0); // missing reverses are not item drops
    assert!(stats.validator_peak_bytes > 0);

    // Accuracy: the repaired run sees the graph minus the dropped edges, so
    // at full budget the estimate must land between that graph's exact
    // count and the original truth — well within 2ε for ε = 5%.
    let mut dir: HashMap<u64, usize> = HashMap::new();
    for it in c.items() {
        let (a, b) = (it.src.0.min(it.dst.0), it.src.0.max(it.dst.0));
        *dir.entry(((a as u64) << 32) | b as u64).or_insert(0) += 1;
    }
    let surviving = dir
        .iter()
        .filter(|&(_, &cnt)| cnt == 2)
        .map(|(&key, _)| ((key >> 32) as u32, key as u32));
    let repaired = GraphBuilder::from_edges(g.vertex_count(), surviving).unwrap();
    let repaired_truth = exact::count_triangles(&repaired) as f64;
    assert!(repaired_truth < truth);
    let rel = (est.estimate - truth).abs() / truth;
    assert!(
        rel <= 0.10,
        "estimate {} vs truth {truth} (rel {rel})",
        est.estimate
    );
    assert!(
        est.estimate >= repaired_truth - 1e-9 && est.estimate <= truth + 1e-9,
        "estimate {} outside [{repaired_truth}, {truth}]",
        est.estimate
    );
}

#[test]
fn observe_policy_reports_without_altering_the_run() {
    let items = stream_items(40, 160, 21);
    let c = FaultPlan::new(13)
        .with(FaultKind::DuplicateItem, 2)
        .with(FaultKind::InjectSelfLoop, 1)
        .apply(&items);
    assert!(c.skipped().is_empty());
    let cfg = TwoPassTriangleConfig {
        seed: 3,
        edge_sampling: EdgeSampling::Threshold { p: 1.0 },
        pair_capacity: usize::MAX,
    };
    let guarded = Guarded::new(TwoPassTriangle::new(cfg), GuardPolicy::Observe);
    let (_, report) = c.try_run(guarded).unwrap();
    let stats = report.guard.unwrap();
    assert_eq!(stats.faults_detected, c.expected_detections());
    assert_eq!(stats.items_repaired, 0);
    assert_eq!(stats.edges_quarantined, 0);
}

#[test]
fn malformed_input_never_panics_through_the_fallible_paths() {
    // A grab-bag of hostile streams: none may panic, all must produce a
    // typed error (or a clean repair) through try_run.
    let hostile: Vec<Vec<StreamItem>> = vec![
        vec![],
        ItemTrace::read_unchecked("0 0\n".as_bytes())
            .unwrap()
            .items()
            .to_vec(),
        ItemTrace::read_unchecked("0 1\n0 1\n0 1\n".as_bytes())
            .unwrap()
            .items()
            .to_vec(),
        ItemTrace::read_unchecked("0 1\n1 0\n0 2\n2 0\n".as_bytes())
            .unwrap()
            .items()
            .to_vec(),
        ItemTrace::read_unchecked("4294967295 0\n".as_bytes())
            .unwrap()
            .items()
            .to_vec(),
    ];
    let cfg = TwoPassTriangleConfig {
        seed: 1,
        edge_sampling: EdgeSampling::Threshold { p: 1.0 },
        pair_capacity: usize::MAX,
    };
    for (i, items) in hostile.into_iter().enumerate() {
        let trace = ItemTrace::new_unchecked(items);
        for policy in [
            GuardPolicy::Strict,
            GuardPolicy::Repair,
            GuardPolicy::Observe,
        ] {
            let guarded = Guarded::new(TwoPassTriangle::new(cfg), policy);
            // Err is fine; panicking is not.
            let _ = trace.try_run(guarded);
            let _ = (i, policy);
        }
    }
}

//! Crash-recovery drill for `adjstreamd`: SIGKILL the daemon mid-pass with
//! three in-flight jobs, restart it over the same state directory, and
//! require every resumed estimate to be bit-for-bit identical to an
//! uninterrupted run of the same job spec.
//!
//! This is the no-warning variant of the drain test: `kill -9` gives the
//! daemon no chance to checkpoint or mark anything, so recovery must work
//! from whatever the pass-boundary checkpoints and manifests already on
//! disk say.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use adjstream::graph::gen;
use adjstream::service::job::{JobId, JobRecord, JobResult, JobSpec, JobState};
use adjstream::service::json::{parse, Json};
use adjstream::stream::trace::ItemTrace;
use adjstream::stream::{AdjListStream, StreamOrder};

const SEEDS: [u64; 3] = [101, 202, 303];

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("adjstreamd-rec-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_trace(dir: &Path) -> PathBuf {
    let g = gen::disjoint_cliques(4, 6);
    let items = AdjListStream::new(&g, StreamOrder::natural(g.vertex_count())).collect_items();
    let trace = ItemTrace::new(items).unwrap();
    let path = dir.join("g.adjb");
    let mut buf = Vec::new();
    trace.write_adjb(&mut buf).unwrap();
    std::fs::write(&path, buf).unwrap();
    path
}

// Every caller kills and waits on the child; the only escape is a test
// panic, which tears the process down anyway.
#[allow(clippy::zombie_processes)]
fn spawn_daemon(state_dir: &Path) -> (Child, PathBuf) {
    let child = Command::new(env!("CARGO_BIN_EXE_adjstreamd"))
        .args([
            "--state-dir",
            &state_dir.display().to_string(),
            "--workers",
            "3",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("adjstreamd binary spawns");
    let socket = state_dir.join("adjstreamd.sock");
    // Readiness: the listener accepts connections.
    let start = Instant::now();
    loop {
        if UnixStream::connect(&socket).is_ok() {
            return (child, socket);
        }
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "daemon never became ready"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn req(socket: &Path, line: &str) -> Json {
    let stream = UnixStream::connect(socket).expect("daemon accepts connections");
    let mut w = stream.try_clone().unwrap();
    writeln!(w, "{line}").unwrap();
    w.flush().unwrap();
    let mut reply = String::new();
    BufReader::new(stream).read_line(&mut reply).unwrap();
    parse(reply.trim()).expect("daemon speaks valid JSON")
}

fn register(socket: &Path, trace: &Path) {
    let reply = req(
        socket,
        &format!(
            "{{\"op\":\"register\",\"name\":\"g\",\"path\":\"{}\"}}",
            trace.display()
        ),
    );
    assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "{reply}");
}

fn submit(socket: &Path, seed: u64, delay_ms: u64) -> String {
    let reply = req(
        socket,
        &format!(
            "{{\"op\":\"submit\",\"trace\":\"g\",\"t_lower\":10,\"seed\":{seed},\
             \"delay_ms_per_pass\":{delay_ms}}}"
        ),
    );
    reply
        .str_field("id")
        .unwrap_or_else(|| panic!("submit reply has an id: {reply}"))
        .to_string()
}

fn wait_done(socket: &Path, id: &str) -> Json {
    let start = Instant::now();
    loop {
        let reply = req(socket, &format!("{{\"op\":\"status\",\"id\":\"{id}\"}}"));
        match reply.str_field("state") {
            Some("done") => return reply,
            Some("degraded" | "failed") => panic!("job {id} settled badly: {reply}"),
            _ => {
                assert!(
                    start.elapsed() < Duration::from_secs(120),
                    "job {id} never finished: {reply}"
                );
                std::thread::sleep(Duration::from_millis(25));
            }
        }
    }
}

fn estimate_bits(reply: &Json) -> String {
    reply
        .get("result")
        .and_then(|r| r.str_field("estimate_bits"))
        .unwrap_or_else(|| panic!("done status carries estimate_bits: {reply}"))
        .to_string()
}

/// Regression (issue 7): the startup GC used to treat *any* sibling
/// manifest as live, so checkpoints of completed jobs were never
/// collected. The predicate now parses the manifest state: a terminal
/// job's old checkpoint goes, a fresh one stays (retention), an orphan
/// goes, and an unparseable manifest keeps its checkpoint.
#[test]
fn startup_gc_collects_terminal_job_checkpoints() {
    let dir = tmp_dir("gc");
    let persist = |id: u64, state: JobState| {
        let rec = JobRecord {
            id: JobId(id),
            spec: JobSpec::default(),
            state,
        };
        rec.persist(&dir).unwrap();
        let ckpt = rec.id.checkpoint_path(&dir);
        std::fs::write(&ckpt, b"ckpt").unwrap();
        ckpt
    };
    let done_state = || JobState::Done {
        result: JobResult {
            estimate: 6.0,
            estimate_bits: 6.0f64.to_bits(),
            survivors: 9,
            repetitions: 9,
            passes: 2,
            resumed_from: None,
        },
    };
    let done_old = persist(1, done_state());
    let failed_old = persist(
        2,
        JobState::Failed {
            reason: "deadline".into(),
            detail: String::new(),
        },
    );
    let orphan_old = dir.join(format!("job-{}.ckpt", JobId(3)));
    std::fs::write(&orphan_old, b"ckpt").unwrap();
    let garbage_old = dir.join(format!("job-{}.ckpt", JobId(4)));
    std::fs::write(&garbage_old, b"ckpt").unwrap();
    std::fs::write(dir.join(format!("job-{}.json", JobId(4))), b"{not json").unwrap();
    // Age everything past the 1-second retention window, then add one
    // *fresh* terminal checkpoint that retention must protect.
    std::thread::sleep(Duration::from_millis(1400));
    let done_fresh = persist(5, done_state());

    let child = Command::new(env!("CARGO_BIN_EXE_adjstreamd"))
        .args([
            "--state-dir",
            &dir.display().to_string(),
            "--checkpoint-retention-secs",
            "1",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("adjstreamd binary spawns");
    // GC runs before the listener opens, so readiness means it finished.
    let socket = dir.join("adjstreamd.sock");
    let start = Instant::now();
    let mut child = child;
    while UnixStream::connect(&socket).is_err() {
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "daemon never became ready"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    child.kill().unwrap();
    child.wait().unwrap();

    assert!(
        !done_old.exists(),
        "terminal job's old checkpoint collected"
    );
    assert!(
        !failed_old.exists(),
        "failed job's old checkpoint collected"
    );
    assert!(!orphan_old.exists(), "orphaned checkpoint collected");
    assert!(
        garbage_old.exists(),
        "unparseable manifest keeps checkpoint"
    );
    assert!(done_fresh.exists(), "retention protects fresh checkpoints");
    // Manifests themselves are never GC targets.
    assert!(JobId(1).manifest_path(&dir).exists());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn kill9_with_three_inflight_jobs_recovers_bit_identical() {
    // Uninterrupted baselines: same trace, same seeds, no chaos delay.
    let base_dir = tmp_dir("baseline");
    let trace = write_trace(&base_dir);
    let (mut child, socket) = spawn_daemon(&base_dir);
    register(&socket, &trace);
    let baselines: Vec<String> = SEEDS
        .iter()
        .map(|&seed| {
            let id = submit(&socket, seed, 0);
            estimate_bits(&wait_done(&socket, &id))
        })
        .collect();
    child.kill().unwrap();
    child.wait().unwrap();

    // Crash run: three slow jobs in flight on three workers. Wait for all
    // three pass-boundary checkpoints, then SIGKILL with no warning.
    let crash_dir = tmp_dir("crash");
    let trace = write_trace(&crash_dir);
    let (mut child, socket) = spawn_daemon(&crash_dir);
    register(&socket, &trace);
    let ids: Vec<String> = SEEDS.iter().map(|&s| submit(&socket, s, 400)).collect();
    let start = Instant::now();
    while !ids
        .iter()
        .all(|id| crash_dir.join(format!("job-{id}.ckpt")).exists())
    {
        assert!(
            start.elapsed() < Duration::from_secs(60),
            "pass-boundary checkpoints never appeared"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    child.kill().unwrap(); // SIGKILL
    child.wait().unwrap();

    // Restart over the same state dir: the recovery scan must requeue all
    // three and every resumed estimate must match its baseline exactly.
    let (mut child, socket) = spawn_daemon(&crash_dir);
    for (id, want) in ids.iter().zip(&baselines) {
        let done = wait_done(&socket, id);
        assert_eq!(
            &estimate_bits(&done),
            want,
            "job {id} diverged after kill -9"
        );
        let resumed_from = done
            .get("result")
            .and_then(|r| r.f64_field("resumed_from"))
            .map(|p| p as usize);
        assert_eq!(
            resumed_from,
            Some(1),
            "job {id} should resume from the pass-1 checkpoint: {done}"
        );
    }
    child.kill().unwrap();
    child.wait().unwrap();
    let _ = std::fs::remove_dir_all(&base_dir);
    let _ = std::fs::remove_dir_all(&crash_dir);
}

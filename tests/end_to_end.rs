//! Cross-crate integration tests: generate → order → stream → estimate →
//! compare to exact, through the public facade API only.

use adjstream::algo::amplify::median_of_runs;
use adjstream::algo::common::EdgeSampling;
use adjstream::algo::exact_stream::{ExactKind, ExactStreamCounter};
use adjstream::algo::fourcycle::{FourCycleEstimator, TwoPassFourCycle, TwoPassFourCycleConfig};
use adjstream::algo::triangle::{
    OnePassTriangle, TriangleDistinguisher, TwoPassTriangle, TwoPassTriangleConfig,
};
use adjstream::graph::{exact, gen, Graph};
use adjstream::stream::{validate_stream, AdjListStream, PassOrders, Runner, StreamOrder};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn mixed_graph(seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let bg = gen::gnm(300, 1500, &mut rng);
    bg.disjoint_union(&gen::disjoint_cliques(6, 8))
}

#[test]
fn generated_streams_always_satisfy_the_promise() {
    let g = mixed_graph(1);
    let n = g.vertex_count();
    for order in [
        StreamOrder::natural(n),
        StreamOrder::reversed(n),
        StreamOrder::shuffled(n, 42),
    ] {
        let s = AdjListStream::new(&g, order);
        assert_eq!(validate_stream(s.items()), Ok(g.edge_count()));
    }
}

#[test]
fn two_pass_triangle_pipeline_matches_exact_at_full_budget() {
    let g = mixed_graph(2);
    let truth = exact::count_triangles(&g) as f64;
    let cfg = TwoPassTriangleConfig {
        seed: 9,
        edge_sampling: EdgeSampling::Threshold { p: 1.0 },
        pair_capacity: usize::MAX,
    };
    let (est, report) = Runner::run(
        &g,
        TwoPassTriangle::new(cfg),
        &PassOrders::Same(StreamOrder::shuffled(g.vertex_count(), 4)),
    );
    assert_eq!(est.estimate, truth);
    assert_eq!(report.passes, 2);
    assert_eq!(report.items_processed, 4 * g.edge_count());
}

#[test]
fn amplified_two_pass_estimate_concentrates_at_paper_budget() {
    let g = mixed_graph(3);
    let truth = exact::count_triangles(&g) as f64;
    let m = g.edge_count();
    let budget = ((8.0 * m as f64 / truth.powf(2.0 / 3.0)).ceil() as usize).min(m);
    let rep = median_of_runs(11, 5, 2, |seed| {
        let cfg = TwoPassTriangleConfig {
            seed,
            edge_sampling: EdgeSampling::BottomK { k: budget },
            pair_capacity: budget,
        };
        let (est, _) = Runner::run(
            &g,
            TwoPassTriangle::new(cfg),
            &PassOrders::Same(StreamOrder::shuffled(g.vertex_count(), seed)),
        );
        est.estimate
    });
    let rel = (rep.median - truth).abs() / truth;
    assert!(
        rel < 0.3,
        "median {} vs truth {truth} (rel {rel})",
        rep.median
    );
}

#[test]
fn one_and_two_pass_agree_with_exact_stream_counter() {
    let g = mixed_graph(4);
    let n = g.vertex_count();
    let order = PassOrders::Same(StreamOrder::shuffled(n, 8));
    let (exact_t, _) = Runner::run(&g, ExactStreamCounter::new(ExactKind::Triangles), &order);
    let (one, _) = Runner::run(
        &g,
        OnePassTriangle::new(1, EdgeSampling::Threshold { p: 1.0 }),
        &order,
    );
    assert_eq!(one.estimate, exact_t as f64);
    assert_eq!(exact_t, exact::count_triangles(&g));
}

#[test]
fn four_cycle_pipeline_exact_at_full_budget_across_orders() {
    let mut rng = StdRng::seed_from_u64(5);
    let g = gen::bipartite_gnm(40, 40, 320, &mut rng);
    let truth = exact::count_four_cycles(&g);
    let n = g.vertex_count();
    let cfg = TwoPassFourCycleConfig {
        seed: 3,
        edge_sample_size: g.edge_count(),
        estimator: FourCycleEstimator::DistinctCycles,
        max_wedges: None,
    };
    let (est, _) = Runner::run(
        &g,
        TwoPassFourCycle::new(cfg),
        &PassOrders::PerPass(vec![StreamOrder::shuffled(n, 1), StreamOrder::reversed(n)]),
    );
    assert_eq!(est.estimate, truth as f64);
}

#[test]
fn distinguisher_one_sided_error_end_to_end() {
    // No: bipartite. Yes: same plus one planted triangle.
    let mut rng = StdRng::seed_from_u64(6);
    let no = gen::bipartite_gnm(50, 50, 600, &mut rng);
    let yes = no.disjoint_union(&gen::disjoint_triangles(1));
    for seed in 0..10u64 {
        let (v, _) = Runner::run(
            &no,
            TriangleDistinguisher::new(seed, 100),
            &PassOrders::Same(StreamOrder::shuffled(no.vertex_count(), seed)),
        );
        assert!(!v.found_triangle, "false positive, seed {seed}");
    }
    // Full budget always finds the planted triangle.
    let (v, _) = Runner::run(
        &yes,
        TriangleDistinguisher::new(0, yes.edge_count()),
        &PassOrders::Same(StreamOrder::shuffled(yes.vertex_count(), 0)),
    );
    assert!(v.found_triangle);
}

#[test]
fn space_reported_tracks_budget() {
    let g = mixed_graph(7);
    let n = g.vertex_count();
    let run = |k: usize| {
        let cfg = TwoPassTriangleConfig {
            seed: 2,
            edge_sampling: EdgeSampling::BottomK { k },
            pair_capacity: k,
        };
        let (_, r) = Runner::run(
            &g,
            TwoPassTriangle::new(cfg),
            &PassOrders::Same(StreamOrder::natural(n)),
        );
        r.peak_state_bytes
    };
    let small = run(20);
    let large = run(1200);
    assert!(small * 4 < large, "small {small} large {large}");
}

#[test]
fn two_pass_is_exact_under_adversarial_orders() {
    use adjstream::stream::adversarial;
    let g = mixed_graph(11);
    let truth = exact::count_triangles(&g) as f64;
    let targets = g.edge_vec();
    for order in [
        adversarial::hubs_first(&g),
        adversarial::hubs_last(&g),
        adversarial::apexes_before_edges(&g, &targets[..targets.len().min(40)]),
    ] {
        let cfg = TwoPassTriangleConfig {
            seed: 13,
            edge_sampling: EdgeSampling::Threshold { p: 1.0 },
            pair_capacity: usize::MAX,
        };
        let (est, _) = Runner::run(&g, TwoPassTriangle::new(cfg), &PassOrders::Same(order));
        assert_eq!(est.estimate, truth);
    }
}

#[test]
fn apexes_before_edges_forces_pass_two_discoveries() {
    use adjstream::graph::{EdgeKey, VertexId};
    use adjstream::stream::adversarial;
    // Book graph with the spine as the target: every page (apex) streams
    // before the spine endpoints, so all spine-pair discoveries happen in
    // pass 2 — and the count is still exact.
    let g = gen::book(10);
    let spine = EdgeKey::new(VertexId(0), VertexId(1));
    let order = adversarial::apexes_before_edges(&g, &[spine]);
    let pos = order.positions();
    assert!((2..12).all(|p| pos[p] < pos[0] && pos[p] < pos[1]));
    let cfg = TwoPassTriangleConfig {
        seed: 3,
        edge_sampling: EdgeSampling::Threshold { p: 1.0 },
        pair_capacity: usize::MAX,
    };
    let (est, _) = Runner::run(&g, TwoPassTriangle::new(cfg), &PassOrders::Same(order));
    assert_eq!(est.estimate, 10.0);
    assert_eq!(est.pairs_discovered, 30);
}

#[test]
fn transitivity_pipeline_end_to_end() {
    use adjstream::algo::transitivity::TransitivityTwoPass;
    let g = mixed_graph(15);
    let truth_t = exact::count_triangles(&g) as f64;
    let truth_k = 3.0 * truth_t / g.wedge_count() as f64;
    let cfg = TwoPassTriangleConfig {
        seed: 8,
        edge_sampling: EdgeSampling::Threshold { p: 1.0 },
        pair_capacity: usize::MAX,
    };
    let (est, _) = Runner::run(
        &g,
        TransitivityTwoPass::new(cfg),
        &PassOrders::Same(StreamOrder::shuffled(g.vertex_count(), 2)),
    );
    assert!((est.transitivity - truth_k).abs() < 1e-12);
}

#[test]
fn io_roundtrip_preserves_stream_estimates() {
    use adjstream::graph::io::{read_edge_list, write_edge_list};
    let g = mixed_graph(16);
    let mut buf = Vec::new();
    write_edge_list(&g, &mut buf).unwrap();
    let loaded = read_edge_list(&buf[..]).unwrap().graph;
    assert_eq!(exact::count_triangles(&loaded), exact::count_triangles(&g));
    assert_eq!(loaded.edge_count(), g.edge_count());
}

/// Moderate-scale smoke: a ~30k-edge stream through the full two-pass
/// machinery in one test, checking both the estimate and that space stays
/// far below linear.
#[test]
fn moderate_scale_smoke() {
    let mut rng = StdRng::seed_from_u64(20);
    let g = gen::gnm(5_000, 28_000, &mut rng).disjoint_union(&gen::disjoint_cliques(8, 24));
    let truth = exact::count_triangles(&g) as f64; // >= 24·56
    let m = g.edge_count();
    let budget = ((8.0 * m as f64 / truth.powf(2.0 / 3.0)).ceil() as usize).min(m);
    let mut peak_at_budget = 0usize;
    let rep = {
        let peak = std::sync::Mutex::new(&mut peak_at_budget);
        median_of_runs(5, 3, 4, |seed| {
            let cfg = TwoPassTriangleConfig {
                seed,
                edge_sampling: EdgeSampling::BottomK { k: budget },
                pair_capacity: budget,
            };
            let (est, r) = Runner::run(
                &g,
                TwoPassTriangle::new(cfg),
                &PassOrders::Same(StreamOrder::shuffled(g.vertex_count(), seed)),
            );
            let mut p = peak.lock().unwrap();
            **p = (**p).max(r.peak_state_bytes);
            est.estimate
        })
    };
    let rel = (rep.median - truth).abs() / truth;
    assert!(rel < 0.35, "median {} vs {truth}", rep.median);
    // Space scales with the budget, not the graph: a full-budget run costs
    // several times more state than the paper-budget run.
    let full = {
        let cfg = TwoPassTriangleConfig {
            seed: 1,
            edge_sampling: EdgeSampling::BottomK { k: m },
            pair_capacity: m,
        };
        let (_, r) = Runner::run(
            &g,
            TwoPassTriangle::new(cfg),
            &PassOrders::Same(StreamOrder::shuffled(g.vertex_count(), 1)),
        );
        r.peak_state_bytes
    };
    assert!(
        peak_at_budget * 3 < full,
        "budget peak {peak_at_budget} vs full {full}"
    );
}

//! Metrics-parity suite: collecting observability data must never change
//! what a run computes.
//!
//! The contract under test is the one the drivers document — turning
//! metrics on (or moving between the sequential and batched engines, or
//! changing the batch thread count) leaves estimates, peak byte counts,
//! and guard statistics bit-for-bit identical; only the `metrics` field
//! gains content. Wall-clock fields inside a snapshot are nondeterministic
//! and are never compared.

use adjstream::algo::common::EdgeSampling;
use adjstream::algo::estimate::{
    try_estimate_triangles, try_estimate_triangles_checkpointed, Accuracy, Engine,
};
use adjstream::algo::triangle::{TwoPassTriangle, TwoPassTriangleConfig};
use adjstream::graph::{gen, Graph, GraphBuilder};
use adjstream::stream::{
    run_slice_passes, run_slice_passes_observed, AdjListStream, FaultKind, FaultPlan, GuardPolicy,
    Guarded, Metrics, PassOrders, Runner, StreamOrder, METRICS_SCHEMA_VERSION,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fixture_graph(seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    gen::gnm(150, 1200, &mut rng).disjoint_union(&gen::disjoint_cliques(4, 7))
}

fn triangle_algo(seed: u64, budget: usize) -> TwoPassTriangle {
    TwoPassTriangle::new(TwoPassTriangleConfig {
        seed,
        edge_sampling: EdgeSampling::BottomK { k: budget },
        pair_capacity: budget,
    })
}

/// The estimate-level parity check: same accuracy contract with metrics
/// off and on must agree on every deterministic field; the on-side must
/// actually carry a snapshot whose deterministic fields are consistent.
fn assert_estimate_parity(g: &Graph, acc: Accuracy) {
    let order = StreamOrder::shuffled(g.vertex_count(), acc.seed);
    let t_lower = 50;
    let off = try_estimate_triangles(
        g,
        &order,
        t_lower,
        Accuracy {
            collect_metrics: false,
            ..acc
        },
    )
    .expect("metrics-off estimate");
    let on = try_estimate_triangles(
        g,
        &order,
        t_lower,
        Accuracy {
            collect_metrics: true,
            ..acc
        },
    )
    .expect("metrics-on estimate");
    assert_eq!(off.count.to_bits(), on.count.to_bits());
    assert_eq!(off.budget, on.budget);
    assert_eq!(off.repetitions, on.repetitions);
    assert_eq!(off.stream_passes, on.stream_passes);
    assert_eq!(off.report.median.to_bits(), on.report.median.to_bits());
    assert_eq!(off.report.variance.to_bits(), on.report.variance.to_bits());
    assert_eq!(off.report.dead_runs, on.report.dead_runs);
    assert!(off.metrics.is_none(), "metrics-off must not collect");
    let snap = on.metrics.expect("metrics-on must collect");
    assert_eq!(snap.schema, METRICS_SCHEMA_VERSION);
    assert_eq!(snap.runs as usize, on.repetitions);
    assert!(snap.counters.admissions > 0, "sampler never admitted?");
    assert!(!snap.passes.is_empty());
}

#[test]
fn estimate_parity_holds_across_engines_and_thread_counts() {
    let g = fixture_graph(1);
    for (engine, threads) in [
        (Engine::Sequential, 1),
        (Engine::Batched, 1),
        (Engine::Batched, 4),
    ] {
        assert_estimate_parity(
            &g,
            Accuracy {
                engine,
                threads,
                seed: 77,
                ..Accuracy::default()
            },
        );
    }
}

#[test]
fn batched_thread_count_never_changes_the_estimate() {
    let g = fixture_graph(2);
    let order = StreamOrder::shuffled(g.vertex_count(), 5);
    let run = |threads: usize, collect: bool| {
        try_estimate_triangles(
            &g,
            &order,
            50,
            Accuracy {
                threads,
                collect_metrics: collect,
                ..Accuracy::default()
            },
        )
        .expect("estimate")
    };
    let reference = run(1, false);
    for threads in [2, 4] {
        for collect in [false, true] {
            let est = run(threads, collect);
            assert_eq!(
                reference.count.to_bits(),
                est.count.to_bits(),
                "threads {threads}, metrics {collect}"
            );
            assert_eq!(reference.report.dead_runs, est.report.dead_runs);
        }
    }
}

#[test]
fn runner_observed_reproduces_unobserved_reports_exactly() {
    let g = fixture_graph(3);
    let orders = PassOrders::Same(StreamOrder::shuffled(g.vertex_count(), 9));
    let (plain_est, plain_rep) =
        Runner::try_run(&g, triangle_algo(11, 200), &orders).expect("plain run");
    let sink = Metrics::enabled();
    let (obs_est, obs_rep) =
        Runner::try_run_observed(&g, triangle_algo(11, 200), &orders, &sink).expect("observed run");
    assert_eq!(plain_est.estimate.to_bits(), obs_est.estimate.to_bits());
    assert_eq!(plain_rep.peak_state_bytes, obs_rep.peak_state_bytes);
    assert_eq!(plain_rep.items_processed, obs_rep.items_processed);
    assert_eq!(plain_rep.passes, obs_rep.passes);
    assert_eq!(plain_rep.guard, obs_rep.guard);
    assert!(plain_rep.metrics.is_none());
    let snap = obs_rep.metrics.expect("observed run carries metrics");
    // The snapshot's byte peak is the same number the report carries.
    assert_eq!(snap.peak_state_bytes as usize, obs_rep.peak_state_bytes);
    assert_eq!(snap.items_processed as usize, obs_rep.items_processed);
    assert_eq!(snap.passes.len(), obs_rep.passes);
    // The sink absorbed the same snapshot.
    let absorbed = sink.snapshot().expect("sink collected");
    assert_eq!(absorbed.peak_state_bytes, snap.peak_state_bytes);
    assert_eq!(absorbed.counters, snap.counters);
}

#[test]
fn parity_holds_under_injected_faults_for_every_guard_policy() {
    let g = fixture_graph(4);
    let items = AdjListStream::new(&g, StreamOrder::shuffled(g.vertex_count(), 21)).collect_items();
    let plan = FaultPlan::new(13)
        .with(FaultKind::DropDirection, 3)
        .with(FaultKind::InjectSelfLoop, 2)
        .with(FaultKind::DuplicateItem, 2);
    let corrupted = plan.apply(&items);
    for policy in [GuardPolicy::Repair, GuardPolicy::Observe] {
        let run_once = |sink: &Metrics| {
            run_slice_passes_observed(
                Guarded::new(triangle_algo(7, 150), policy),
                |pass| corrupted.items_for_pass(pass),
                sink,
            )
            .expect("guarded run survives under repair/observe")
        };
        let (plain_est, plain_rep) =
            run_slice_passes(Guarded::new(triangle_algo(7, 150), policy), |pass| {
                corrupted.items_for_pass(pass)
            })
            .expect("plain guarded run");
        let (off_est, off_rep) = run_once(&Metrics::disabled());
        let sink = Metrics::enabled();
        let (on_est, on_rep) = run_once(&sink);
        assert_eq!(plain_est.estimate.to_bits(), off_est.estimate.to_bits());
        assert_eq!(off_est.estimate.to_bits(), on_est.estimate.to_bits());
        assert_eq!(plain_rep.peak_state_bytes, on_rep.peak_state_bytes);
        assert_eq!(off_rep.peak_state_bytes, on_rep.peak_state_bytes);
        let guard = on_rep.guard.expect("guarded run reports stats");
        assert_eq!(off_rep.guard, Some(guard));
        assert!(guard.faults_detected > 0, "plan injected faults");
        // The snapshot sees the same guard stats the report does.
        let snap = sink.snapshot().expect("sink collected");
        assert_eq!(snap.guard, Some(guard));
    }
}

#[test]
fn checkpointed_estimates_record_checkpoint_metrics_without_changing_results() {
    let g = fixture_graph(5);
    let order = StreamOrder::shuffled(g.vertex_count(), 3);
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let run = |collect: bool, tag: &str| {
        let path = dir.join(format!("adjstream-obs-ckpt-{tag}-{pid}.ckpt"));
        let est = try_estimate_triangles_checkpointed(
            &g,
            &order,
            50,
            Accuracy {
                collect_metrics: collect,
                ..Accuracy::default()
            },
            &path,
            false,
        )
        .expect("checkpointed estimate");
        std::fs::remove_file(&path).ok();
        est
    };
    let off = run(false, "off");
    let on = run(true, "on");
    assert_eq!(off.count.to_bits(), on.count.to_bits());
    let snap = on.metrics.expect("metrics-on collects");
    assert!(snap.checkpoint.writes > 0, "boundary hook never fired?");
    assert!(snap.checkpoint.write_bytes > 0);
    assert_eq!(snap.checkpoint.restores, 0, "no resume in this run");
}

#[test]
fn snapshot_json_is_schema_versioned_and_single_line() {
    let g = fixture_graph(6);
    let order = StreamOrder::shuffled(g.vertex_count(), 2);
    let est = try_estimate_triangles(
        &g,
        &order,
        50,
        Accuracy {
            collect_metrics: true,
            ..Accuracy::default()
        },
    )
    .expect("estimate");
    let json = est.metrics.expect("metrics collected").to_json();
    assert!(json.starts_with("{\"schema\": 1,"), "{json}");
    assert!(!json.contains('\n'), "must be one line");
    for key in [
        "\"runs\"",
        "\"peak_state_bytes\"",
        "\"passes\"",
        "\"sampler\"",
        "\"guard\"",
        "\"checkpoint\"",
        "\"retry\"",
    ] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Observation parity is not a property of friendly fixtures: on
    /// arbitrary small graphs, any seed, any budget, the observed run
    /// reproduces the plain run bit for bit.
    #[test]
    fn observed_runs_match_plain_runs_on_arbitrary_graphs(
        pairs in prop::collection::vec((0u32..20, 0u32..20), 0..60),
        seed in 0u64..1000,
        budget in 1usize..64,
    ) {
        let mut b = GraphBuilder::new(20);
        for (u, v) in pairs {
            if u != v {
                b.add_edge(u.into(), v.into()).unwrap();
            }
        }
        let g = b.build().unwrap();
        let orders = PassOrders::Same(StreamOrder::shuffled(g.vertex_count(), seed));
        let (plain_est, plain_rep) =
            Runner::try_run(&g, triangle_algo(seed, budget), &orders).expect("plain");
        let sink = Metrics::enabled();
        let (obs_est, obs_rep) =
            Runner::try_run_observed(&g, triangle_algo(seed, budget), &orders, &sink)
                .expect("observed");
        prop_assert_eq!(plain_est.estimate.to_bits(), obs_est.estimate.to_bits());
        prop_assert_eq!(plain_rep.peak_state_bytes, obs_rep.peak_state_bytes);
        prop_assert_eq!(plain_rep.items_processed, obs_rep.items_processed);
        let snap = obs_rep.metrics.expect("observed run carries metrics");
        prop_assert_eq!(snap.peak_state_bytes as usize, plain_rep.peak_state_bytes);
    }
}

//! End-to-end reduction tests: communication problems are solved through
//! real streaming algorithms run as protocols over the Figure-1 gadgets.

use adjstream::algo::common::EdgeSampling;
use adjstream::algo::exact_stream::{ExactKind, ExactStreamCounter};
use adjstream::algo::fourcycle::{FourCycleEstimator, TwoPassFourCycle, TwoPassFourCycleConfig};
use adjstream::algo::triangle::{TwoPassTriangle, TwoPassTriangleConfig};
use adjstream::lowerbound::experiment::distinguishing_success;
use adjstream::lowerbound::gadgets::{
    disj3_triangle_gadget, disj_four_cycle_gadget, disj_long_cycle_gadget, index_four_cycle_gadget,
    pj3_triangle_gadget, random_disj_instance_for_plane, random_index_instance_for_plane,
};
use adjstream::lowerbound::problems::{Disj3Instance, DisjInstance, Pj3Instance};
use adjstream::lowerbound::protocol::run_protocol;
use adjstream::stream::order::WithinListOrder;

/// INDEX bits are recovered through the Theorem 5.3 gadget by an exact
/// counter — the reduction is sound.
#[test]
fn index_bit_recovered_through_fig1c() {
    for seed in 0..8 {
        let answer = seed % 2 == 0;
        let inst = random_index_instance_for_plane(3, answer, seed);
        let g = index_four_cycle_gadget(&inst, 3, 4);
        let (count, _) = run_protocol(
            &g,
            ExactStreamCounter::new(ExactKind::FourCycles),
            WithinListOrder::Sorted,
        );
        assert_eq!(count > 0, answer, "seed {seed}");
    }
}

/// 3-PJ solved through Figure 1a by the paper's own two-pass triangle
/// algorithm at its upper-bound budget.
#[test]
fn pj3_solved_by_two_pass_triangle_at_budget() {
    let build = |answer: bool, seed: u64| {
        pj3_triangle_gadget(&Pj3Instance::random_with_answer(24, answer, seed), 6)
    };
    let probe = build(true, 0);
    let m = probe.graph.edge_count();
    let t = probe.promised_cycles as f64;
    let budget = ((8.0 * m as f64 / t.powf(2.0 / 3.0)).ceil() as usize).min(m);
    let rep = distinguishing_success(10, build, |g, seed| {
        let cfg = TwoPassTriangleConfig {
            seed,
            edge_sampling: EdgeSampling::BottomK { k: budget },
            pair_capacity: budget,
        };
        let (est, _) = run_protocol(g, TwoPassTriangle::new(cfg), WithinListOrder::Sorted);
        est.estimate
    });
    assert!(
        rep.success_rate() >= 0.85,
        "success {} at budget {budget} (m = {m})",
        rep.success_rate()
    );
}

/// 3-DISJ solved through Figure 1b likewise.
#[test]
fn disj3_solved_by_two_pass_triangle_at_budget() {
    let build = |answer: bool, seed: u64| {
        disj3_triangle_gadget(&Disj3Instance::random_promise(24, 0.3, answer, seed), 4)
    };
    let probe = build(true, 0);
    let m = probe.graph.edge_count();
    let t = probe.promised_cycles as f64;
    let budget = ((8.0 * m as f64 / t.powf(2.0 / 3.0)).ceil() as usize).min(m);
    let rep = distinguishing_success(10, build, |g, seed| {
        let cfg = TwoPassTriangleConfig {
            seed,
            edge_sampling: EdgeSampling::BottomK { k: budget },
            pair_capacity: budget,
        };
        let (est, _) = run_protocol(g, TwoPassTriangle::new(cfg), WithinListOrder::Sorted);
        est.estimate
    });
    assert!(rep.success_rate() >= 0.85, "success {}", rep.success_rate());
}

/// DISJ solved through Figure 1d by the two-pass 4-cycle algorithm.
#[test]
fn disj_solved_by_two_pass_fourcycle() {
    let build = |answer: bool, seed: u64| {
        disj_four_cycle_gadget(&random_disj_instance_for_plane(2, 0.3, answer, seed), 2, 2)
    };
    let probe = build(true, 0);
    let m = probe.graph.edge_count();
    let rep = distinguishing_success(10, build, |g, seed| {
        let cfg = TwoPassFourCycleConfig {
            seed,
            edge_sample_size: m / 2,
            estimator: FourCycleEstimator::DistinctCycles,
            max_wedges: None,
        };
        let (est, _) = run_protocol(g, TwoPassFourCycle::new(cfg), WithinListOrder::Sorted);
        est.estimate
    });
    assert!(rep.success_rate() >= 0.85, "success {}", rep.success_rate());
}

/// The Figure 1e promise gap survives protocol streaming for every ℓ: the
/// exact counter run as a protocol reports exactly T or 0.
#[test]
fn long_cycle_gadget_counts_survive_protocol() {
    for ell in 5..=7usize {
        for (answer, seed) in [(true, 1u64), (false, 2)] {
            let inst = DisjInstance::random_promise(20, 0.3, answer, seed);
            let g = disj_long_cycle_gadget(&inst, ell, 5);
            let (count, report) = run_protocol(
                &g,
                ExactStreamCounter::new(ExactKind::Cycles(ell)),
                WithinListOrder::Sorted,
            );
            assert_eq!(count, if answer { 5 } else { 0 }, "ell {ell}");
            assert_eq!(report.passes, 1);
            assert_eq!(report.message_bytes.len(), 1);
        }
    }
}

/// Protocol handoffs: a 2-pass algorithm over a 3-player gadget produces
/// 3·2 − 1 = 5 messages.
#[test]
fn handoff_arithmetic() {
    let inst = Disj3Instance::random_promise(6, 0.3, true, 3);
    let g = disj3_triangle_gadget(&inst, 2);
    let cfg = TwoPassTriangleConfig {
        seed: 1,
        edge_sampling: EdgeSampling::Threshold { p: 1.0 },
        pair_capacity: usize::MAX,
    };
    let (est, report) = run_protocol(&g, TwoPassTriangle::new(cfg), WithinListOrder::Sorted);
    assert_eq!(est.estimate, 8.0); // k³ = 2³
    assert_eq!(report.message_bytes.len(), 5);
    assert_eq!(report.passes, 2);
    assert!(report.max_message > 0);
    assert_eq!(
        report.total_bytes,
        report.message_bytes.iter().sum::<usize>()
    );
}

//! Property-based tests (proptest) over the core invariants:
//! exact-counter agreement, stream-promise preservation, estimator
//! exactness under exhaustive sampling, and gadget cycle gaps.

use adjstream::algo::common::EdgeSampling;
use adjstream::algo::fourcycle::{FourCycleEstimator, TwoPassFourCycle, TwoPassFourCycleConfig};
use adjstream::algo::triangle::{TwoPassTriangle, TwoPassTriangleConfig};
use adjstream::graph::{exact, Graph, GraphBuilder};
use adjstream::lowerbound::gadgets::{disj3_triangle_gadget, disj_long_cycle_gadget};
use adjstream::lowerbound::problems::{Disj3Instance, DisjInstance};
use adjstream::stream::{validate_stream, AdjListStream, PassOrders, Runner, StreamOrder};
use proptest::prelude::*;

/// Strategy: a random simple graph with up to `n` vertices as an edge list.
fn small_graph(n: u32, max_edges: usize) -> impl Strategy<Value = Graph> {
    prop::collection::vec((0..n, 0..n), 0..max_edges).prop_map(move |pairs| {
        let mut b = GraphBuilder::new(n as usize);
        for (u, v) in pairs {
            if u != v {
                b.add_edge(u.into(), v.into()).unwrap();
            }
        }
        b.build().unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn forward_triangle_count_matches_brute_force(g in small_graph(24, 80)) {
        prop_assert_eq!(
            exact::count_triangles(&g),
            exact::count_triangles_brute(&g)
        );
    }

    #[test]
    fn cycle_counter_agrees_with_specialized_counters(g in small_graph(14, 36)) {
        prop_assert_eq!(exact::count_cycles(&g, 3), exact::count_triangles(&g));
        prop_assert_eq!(exact::count_cycles(&g, 4), exact::count_four_cycles(&g));
    }

    #[test]
    fn every_stream_order_satisfies_the_promise(
        g in small_graph(20, 60),
        seed in 0u64..1000,
    ) {
        let n = g.vertex_count();
        let s = AdjListStream::new(&g, StreamOrder::shuffled(n, seed));
        prop_assert_eq!(validate_stream(s.items()), Ok(g.edge_count()));
    }

    #[test]
    fn two_pass_triangle_exact_under_exhaustive_sampling(
        g in small_graph(18, 60),
        seed in 0u64..1000,
    ) {
        let truth = exact::count_triangles(&g) as f64;
        let cfg = TwoPassTriangleConfig {
            seed,
            edge_sampling: EdgeSampling::Threshold { p: 1.0 },
            pair_capacity: usize::MAX,
        };
        let (est, _) = Runner::run(
            &g,
            TwoPassTriangle::new(cfg),
            &PassOrders::Same(StreamOrder::shuffled(g.vertex_count(), seed)),
        );
        prop_assert_eq!(est.estimate, truth);
    }

    #[test]
    fn two_pass_fourcycle_exact_under_exhaustive_sampling(
        g in small_graph(16, 48),
        seed in 0u64..1000,
    ) {
        let truth = exact::count_four_cycles(&g) as f64;
        let n = g.vertex_count();
        let cfg = TwoPassFourCycleConfig {
            seed,
            edge_sample_size: g.edge_count().max(1),
            estimator: FourCycleEstimator::DistinctCycles,
            max_wedges: None,
        };
        let (est, _) = Runner::run(
            &g,
            TwoPassFourCycle::new(cfg),
            &PassOrders::PerPass(vec![
                StreamOrder::shuffled(n, seed),
                StreamOrder::shuffled(n, seed ^ 0xF00),
            ]),
        );
        prop_assert_eq!(est.estimate, truth);
    }

    #[test]
    fn disj3_gadget_gap_holds_for_random_instances(
        seed in 0u64..500,
        r in 2usize..10,
        k in 1usize..4,
        answer in any::<bool>(),
    ) {
        let inst = Disj3Instance::random_promise(r, 0.4, answer, seed);
        let g = disj3_triangle_gadget(&inst, k);
        let expect = if answer { (k * k * k) as u64 } else { 0 };
        prop_assert_eq!(exact::count_triangles(&g.graph), expect);
    }

    #[test]
    fn long_cycle_gadget_gap_holds_for_random_instances(
        seed in 0u64..500,
        r in 2usize..12,
        t in 1usize..5,
        ell in 5usize..8,
        answer in any::<bool>(),
    ) {
        let inst = DisjInstance::random_promise(r, 0.3, answer, seed);
        let g = disj_long_cycle_gadget(&inst, ell, t);
        let expect = if answer { t as u64 } else { 0 };
        prop_assert_eq!(exact::count_cycles(&g.graph, ell), expect);
    }

    #[test]
    fn wedge_count_identity(g in small_graph(20, 60)) {
        // Σ_v C(d_v, 2) equals the number of enumerated wedges.
        let mut n = 0u64;
        exact::enumerate_wedges(&g, |_| n += 1);
        prop_assert_eq!(n, g.wedge_count());
    }

    #[test]
    fn edge_incidence_identities(g in small_graph(18, 56)) {
        // Per-edge triangle counts sum to 3T; per-edge 4-cycle counts to 4T.
        let idx = exact::EdgeIndexMap::new(&g);
        let (tri, t3) = exact::triangle_edge_counts(&g, &idx);
        prop_assert_eq!(tri.iter().sum::<u64>(), 3 * t3);
        let (c4, t4) = exact::four_cycle_edge_counts(&g, &idx);
        prop_assert_eq!(c4.iter().sum::<u64>(), 4 * t4);
    }
}

/// Brute-force model of the pair watcher, for equivalence testing.
mod watcher_model {
    use adjstream::algo::common::{pack_pair, PairWatcher};
    use adjstream::graph::VertexId;
    use proptest::prelude::*;
    use std::collections::HashSet;

    /// A script: pairs to watch, then a sequence of lists to scan.
    fn script() -> impl Strategy<Value = (Vec<(u32, u32)>, Vec<Vec<u32>>)> {
        (
            prop::collection::vec((0u32..12, 0u32..12), 0..10),
            prop::collection::vec(prop::collection::vec(0u32..12, 0..8), 0..6),
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn watcher_matches_brute_force((pairs, lists) in script()) {
            let mut w = PairWatcher::new();
            let mut watched: HashSet<u64> = HashSet::new();
            for &(a, b) in &pairs {
                if a != b {
                    w.watch(VertexId(a), VertexId(b));
                    watched.insert(pack_pair(VertexId(a), VertexId(b)));
                }
            }
            for list in &lists {
                // Deduplicate the list (the model promises no duplicate
                // neighbors; the validator enforces it upstream).
                let mut dedup = Vec::new();
                let mut seen = HashSet::new();
                for &x in list {
                    if seen.insert(x) {
                        dedup.push(x);
                    }
                }
                // Brute force: a watched pair completes iff both endpoints
                // occur in the list.
                let set: HashSet<u32> = dedup.iter().copied().collect();
                let mut expect: Vec<u64> = watched
                    .iter()
                    .copied()
                    .filter(|&p| {
                        let (a, b) = adjstream::algo::common::unpack_pair(p);
                        set.contains(&a.0) && set.contains(&b.0)
                    })
                    .collect();
                expect.sort_unstable();
                let mut got = Vec::new();
                w.begin_list();
                for &x in &dedup {
                    w.on_item(VertexId(x), |k| got.push(k));
                }
                got.sort_unstable();
                prop_assert_eq!(got, expect);
            }
        }
    }
}

/// Sampler laws that every algorithm depends on.
mod sampler_model {
    use adjstream::stream::sampling::{BottomKSampler, Reservoir, ThresholdSampler};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn threshold_decisions_are_stable(seed in any::<u64>(), p in 0.0f64..1.0, keys in prop::collection::vec(any::<u64>(), 0..50)) {
            let s = ThresholdSampler::new(seed, p);
            for &k in &keys {
                prop_assert_eq!(s.accepts(k), s.accepts(k));
            }
        }

        #[test]
        fn bottomk_size_never_exceeds_k(seed in any::<u64>(), k in 0usize..20, keys in prop::collection::vec(any::<u64>(), 0..100)) {
            let mut s = BottomKSampler::new(seed, k);
            for &key in &keys {
                s.offer(key);
                prop_assert!(s.len() <= k);
            }
            let distinct: std::collections::HashSet<u64> = keys.iter().copied().collect();
            prop_assert_eq!(s.len(), distinct.len().min(k));
        }

        #[test]
        fn bottomk_is_order_independent(seed in any::<u64>(), k in 1usize..10, mut keys in prop::collection::vec(any::<u64>(), 0..60)) {
            let run = |ks: &[u64]| {
                let mut s = BottomKSampler::new(seed, k);
                for &key in ks {
                    s.offer(key);
                }
                let mut out: Vec<u64> = s.keys().collect();
                out.sort_unstable();
                out
            };
            let forward = run(&keys);
            keys.reverse();
            let backward = run(&keys);
            prop_assert_eq!(forward, backward);
        }

        #[test]
        fn reservoir_len_is_min_of_seen_and_cap(seed in any::<u64>(), cap in 0usize..20, n in 0u64..100) {
            let mut r: Reservoir<u64> = Reservoir::new(seed, cap);
            for x in 0..n {
                r.offer(x);
            }
            prop_assert_eq!(r.len() as u64, n.min(cap as u64));
            prop_assert_eq!(r.seen(), n);
            // Everything held was offered.
            prop_assert!(r.items().iter().all(|&x| x < n));
        }
    }
}

/// TRIÈST with a full reservoir is an exact counter — in the *arbitrary*
/// order model, for any edge order.
mod triest_model {
    use adjstream::algo::triangle::TriestBase;
    use adjstream::graph::{exact, GraphBuilder};
    use adjstream::stream::arbitrary::{run_edge_stream, ArbitraryOrderStream};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn full_reservoir_exact(
            pairs in prop::collection::vec((0u32..15, 0u32..15), 0..40),
            seed in any::<u64>(),
        ) {
            let mut b = GraphBuilder::new(15);
            for (u, v) in pairs {
                if u != v {
                    b.add_edge(u.into(), v.into()).unwrap();
                }
            }
            let g = b.build().unwrap();
            let s = ArbitraryOrderStream::new(&g, seed);
            let (est, _) = run_edge_stream(&s, TriestBase::new(seed, g.edge_count().max(2)));
            prop_assert_eq!(est.estimate, exact::count_triangles(&g) as f64);
        }
    }
}

/// Remaining gadget families: gap property for random instances.
mod gadget_gaps {
    use adjstream::graph::exact;
    use adjstream::lowerbound::gadgets::{
        disj_four_cycle_gadget, index_four_cycle_gadget, pj3_triangle_gadget,
        random_disj_instance_for_plane, random_index_instance_for_plane,
    };
    use adjstream::lowerbound::problems::Pj3Instance;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn pj3_gadget_gap(
            seed in 0u64..500,
            r in 2usize..12,
            k in 1usize..5,
            answer in any::<bool>(),
        ) {
            let inst = Pj3Instance::random_with_answer(r, answer, seed);
            let g = pj3_triangle_gadget(&inst, k);
            let expect = if answer { (k * k) as u64 } else { 0 };
            prop_assert_eq!(exact::count_triangles(&g.graph), expect);
            prop_assert!(g.players_partition_vertices());
        }

        #[test]
        fn index_gadget_gap(seed in 0u64..500, k in 1usize..5, answer in any::<bool>()) {
            let inst = random_index_instance_for_plane(2, answer, seed);
            let g = index_four_cycle_gadget(&inst, 2, k);
            let expect = if answer { k as u64 } else { 0 };
            prop_assert_eq!(exact::count_four_cycles(&g.graph), expect);
        }

        #[test]
        fn disj_fourcycle_gadget_gap(seed in 0u64..500, answer in any::<bool>()) {
            let inst = random_disj_instance_for_plane(2, 0.3, answer, seed);
            let g = disj_four_cycle_gadget(&inst, 2, 2);
            let expect = if answer { 21 } else { 0 };
            prop_assert_eq!(exact::count_four_cycles(&g.graph), expect);
        }
    }
}

//! Corruption tolerance for the dynamic side: checksummed `.adjbu`
//! update-trace round trips and typed rejection of damaged containers,
//! plus the full dynamic fault matrix under the guard policies — Strict
//! rejects every class with a typed position, Repair keeps TRIÈST-FD's
//! invariants intact batch after batch.

use adjstream::algo::triangle::TriestFd;
use adjstream::graph::{gen, EdgeKey, VertexId};
use adjstream::stream::update::{churn, ChurnConfig, UpdateEvent, UpdateOp, UpdateStream};
use adjstream::stream::{
    is_adjbu, parse_update_bytes, run_guarded_updates, write_adjbu, GuardPolicy, GuardedUpdate,
    UpdateAlgorithm, UpdateFaultKind, UpdateFaultPlan, UpdateTraceError, ADJBU_MAGIC,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a raw edge script over a tiny vertex universe — booleans pick
/// insert vs delete. `materialize` keeps only the valid steps, so long
/// scripts still produce long mixed streams (same shape as
/// `tests/dynamic_streams.rs`).
fn update_script(n: u32, len: usize) -> impl Strategy<Value = Vec<(bool, u32, u32)>> {
    prop::collection::vec((any::<bool>(), 0..n, 0..n), 1..len)
}

fn materialize(script: &[(bool, u32, u32)]) -> UpdateStream {
    let mut live = std::collections::BTreeSet::new();
    let mut events = Vec::new();
    for (i, &(insert, u, v)) in script.iter().enumerate() {
        if u == v {
            continue;
        }
        let edge = EdgeKey::new(VertexId(u), VertexId(v));
        let valid = if insert {
            live.insert(edge.pack())
        } else {
            live.remove(&edge.pack())
        };
        if valid {
            events.push(UpdateEvent {
                op: if insert {
                    UpdateOp::Insert
                } else {
                    UpdateOp::Delete
                },
                edge,
                ts: i as u64,
            });
        }
    }
    UpdateStream::new(events)
}

/// A churned update stream rich enough for every fault kind's
/// preconditions: live deletions (DeleteDead, CorruptEndpoint), inserts
/// (DuplicateInsert, OpFlip), and strictly increasing timestamps
/// (SwapAdjacent, TimestampRegression).
fn churn_stream(seed: u64) -> UpdateStream {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = gen::gnm(30, 90, &mut rng);
    let base = churn(
        &g,
        &ChurnConfig {
            churn_events: 260,
            delete_fraction: 0.45,
            seed: seed ^ 0xBEEF,
        },
    );
    // Churn may re-insert everything it deletes; CorruptEndpoint needs a
    // deletion that is its edge's *final* event, so retire a few live
    // edges at the tail.
    let mut events = base.events().to_vec();
    let next_ts = events.last().map_or(0, |e| e.ts) + 1;
    for (ts, edge) in (next_ts..).zip(base.final_edges().into_iter().take(4)) {
        events.push(UpdateEvent {
            op: UpdateOp::Delete,
            edge,
            ts,
        });
    }
    UpdateStream::new(events)
}

fn encode(stream: &UpdateStream) -> Vec<u8> {
    let mut bytes = Vec::new();
    write_adjbu(stream, &mut bytes).unwrap();
    bytes
}

/// Header layout of the container: magic (8) + version (4) + count (8),
/// then 17-byte events, then the u64 checksum trailer. The checksum
/// covers count + events, so those offsets partition the file into
/// regions with distinct rejection modes.
const HEADER: usize = 8 + 4 + 8;
const EVENT_BYTES: usize = 17;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Lossless round trip: text → binary → text. The `.adjbu` encoding of
    /// any valid update stream sniffs as binary and decodes to the exact
    /// same event sequence, and the re-rendered text form parses back to
    /// it too.
    #[test]
    fn adjbu_round_trips_any_valid_stream(script in update_script(12, 220)) {
        let stream = materialize(&script);
        let bytes = encode(&stream);
        prop_assert!(is_adjbu(&bytes));
        prop_assert!(bytes.starts_with(&ADJBU_MAGIC));
        let back = parse_update_bytes(&bytes).expect("own encoding decodes");
        prop_assert_eq!(back.events(), stream.events());

        let mut text = Vec::new();
        stream.write_text(&mut text).unwrap();
        prop_assert!(!is_adjbu(&text));
        let from_text = parse_update_bytes(&text).expect("own text decodes");
        prop_assert_eq!(from_text.events(), stream.events());
    }

    /// Every single-bit flip anywhere in a non-empty container is caught:
    /// flips inside the checksummed region (count + events + trailer)
    /// surface as `ChecksumMismatch` or `Truncated` (when the count field
    /// itself is damaged), a flipped version byte is
    /// `UnsupportedVersion`, and a flipped magic byte demotes the file to
    /// the text path, which rejects the binary payload.
    #[test]
    fn bit_flips_never_decode(
        script in update_script(10, 120),
        byte_seed in any::<u64>(),
        bit in 0u8..8,
    ) {
        let stream = materialize(&script);
        if stream.is_empty() {
            return;
        }
        let mut bytes = encode(&stream);
        let pos = byte_seed as usize % bytes.len();
        bytes[pos] ^= 1 << bit;
        let err = parse_update_bytes(&bytes)
            .expect_err("flipped container must not decode");
        let events_end = HEADER + stream.len() * EVENT_BYTES;
        if (HEADER..events_end).contains(&pos) {
            prop_assert!(
                matches!(err, UpdateTraceError::ChecksumMismatch { .. }),
                "event-region flip at {} gave {:?}",
                pos,
                err
            );
        } else if pos >= events_end {
            // Trailer flip: the stored checksum no longer matches.
            prop_assert!(
                matches!(err, UpdateTraceError::ChecksumMismatch { .. }),
                "trailer flip at {} gave {:?}",
                pos,
                err
            );
        } else if (8..12).contains(&pos) {
            prop_assert!(
                matches!(err, UpdateTraceError::UnsupportedVersion { .. }),
                "version flip at {} gave {:?}",
                pos,
                err
            );
        }
        // Magic flips (0..8) and count flips (12..20) reject with
        // format-dependent variants; `expect_err` above is the contract.
    }

    /// Every truncation that preserves the magic is `Truncated`: whatever
    /// the cut removes — version bytes, the count, event bytes, or part
    /// of the checksum trailer — the reader refuses with the typed error
    /// rather than decoding a prefix.
    #[test]
    fn truncations_are_typed(
        script in update_script(10, 120),
        cut_seed in any::<u64>(),
    ) {
        let stream = materialize(&script);
        let bytes = encode(&stream);
        // Keep the magic so the binary path is taken; cut anywhere after.
        let cut = 8 + cut_seed as usize % (bytes.len() - 8);
        let err = parse_update_bytes(&bytes[..cut])
            .expect_err("truncated container must not decode");
        prop_assert!(
            matches!(err, UpdateTraceError::Truncated),
            "cut at {} gave {:?}",
            cut,
            err
        );
    }
}

/// An unknown container version is rejected as `UnsupportedVersion`
/// carrying both the found and the supported version — not mis-decoded,
/// not mistaken for corruption.
#[test]
fn future_version_is_rejected_with_both_versions() {
    let bytes = {
        let mut b = encode(&churn_stream(7));
        b[8..12].copy_from_slice(&2u32.to_le_bytes());
        b
    };
    match parse_update_bytes(&bytes) {
        Err(UpdateTraceError::UnsupportedVersion { found, supported }) => {
            assert_eq!(found, 2);
            assert_eq!(supported, 1);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

/// A damaged magic falls back to the text parser, which rejects the
/// binary payload — the file never silently decodes as the wrong format.
#[test]
fn bad_magic_demotes_to_text_and_fails() {
    let mut bytes = encode(&churn_stream(8));
    bytes[0] ^= 0xFF;
    assert!(!is_adjbu(&bytes));
    assert!(parse_update_bytes(&bytes).is_err());
}

/// Strict guarding rejects every dynamic fault class with a typed
/// violation at exactly the injected position — the full 7-kind matrix,
/// across seeds, driving a real TRIÈST-FD instance.
#[test]
fn strict_guard_rejects_every_dynamic_fault_class() {
    for kind in UpdateFaultKind::ALL {
        for seed in 0..4u64 {
            let stream = churn_stream(seed);
            let corrupted = UpdateFaultPlan::new(seed ^ 0xD15EA5E)
                .with(kind, 1)
                .apply(&stream);
            assert!(
                corrupted.skipped().is_empty(),
                "{kind} seed {seed}: churn stream lacked preconditions"
            );
            let mut guard = GuardedUpdate::new(TriestFd::new(seed, 64), GuardPolicy::Strict);
            let violation = run_guarded_updates(corrupted.events(), 32, &mut guard)
                .expect_err(&format!("{kind} seed {seed}: strict must reject"));
            assert_eq!(
                Some(violation.position()),
                corrupted.first_position(),
                "{kind} seed {seed}: violation {violation} at wrong position"
            );
            assert_eq!(
                guard.fatal().map(|v| v.position()),
                Some(violation.position())
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Repair absorbs a mixed fault barrage while keeping TRIÈST-FD's
    /// structural invariants intact after *every* batch: detections
    /// reconcile exactly against the injection ledger, and the repaired
    /// stream leaves the estimator with a live-edge count equal to the
    /// clean stream's (every injected semantic violation is dropped).
    #[test]
    fn repair_preserves_triest_fd_invariants_per_batch(
        seed in 0u64..500,
        faults in prop::collection::vec(0usize..7, 1..5),
    ) {
        let stream = churn_stream(seed);
        let mut plan = UpdateFaultPlan::new(seed.wrapping_mul(0x9E3779B9));
        for &ix in &faults {
            plan = plan.with(UpdateFaultKind::ALL[ix], 1);
        }
        let corrupted = plan.apply(&stream);
        let mut guard = GuardedUpdate::new(TriestFd::new(seed, 48), GuardPolicy::Repair);
        for chunk in corrupted.events().chunks(24) {
            for ev in chunk {
                guard.apply_event(ev).expect("repair never aborts");
            }
            guard.inner_ref().assert_invariants();
        }
        let stats = guard.stats();
        prop_assert_eq!(stats.events, corrupted.events().len());
        prop_assert_eq!(stats.detections, corrupted.expected_detections());

        // Reference run over the clean stream with the same seed: Repair's
        // drop-and-clamp must leave the same set of live edges behind.
        let mut clean = TriestFd::new(seed, 48);
        for ev in stream.events() {
            clean.apply(ev);
        }
        // OpFlip and CorruptEndpoint remove a real event (a flipped final
        // op, a rewired deletion), so the live set legitimately shifts;
        // compare only when neither was injected.
        if !faults.contains(&3) && !faults.contains(&4) {
            prop_assert_eq!(guard.inner_ref().live_edges(), clean.live_edges());
        }
    }
}

//! Statistical conformance suite for the paper's accuracy guarantees.
//!
//! These tests treat the estimation drivers as black boxes and check the
//! *statements* of the theorems, not implementation internals:
//!
//! * **Theorem 3.7** — `estimate_triangles` is a `(1 ± ε)`-approximation
//!   with failure probability at most `δ`. We run many independently
//!   seeded trials and require the empirical success rate to clear
//!   `1 − δ` minus three binomial standard errors — a bound loose enough
//!   to be seed-stable but tight enough that a broken estimator (wrong
//!   scaling, correlated repetitions, biased sampler) fails it.
//! * **Theorem 4.6** — the 4-cycle estimator is a constant-factor
//!   approximation. We check a fixed factor-8 envelope per trial, the same
//!   way, and separately that girth-6 inputs (projective-plane incidence
//!   graphs, which also have no triangles) report exactly zero.
//! * **Oracle cross-check** — `graph::exact` counters agree with naive
//!   references implemented here from scratch over the raw edge list, so a
//!   bug in the shared CSR adjacency structure cannot hide in both sides.
//!
//! Trial counts default to 200 and can be reduced for CI smoke runs with
//! `GUARANTEE_TRIALS=50`; failing seeds are printed so any flake is
//! reproducible with a one-line test.

use adjstream::algo::estimate::{
    try_estimate_four_cycles, try_estimate_triangles, Accuracy, Engine,
};
use adjstream::graph::{exact, gen, Graph, GraphBuilder, VertexId};
use adjstream::stream::StreamOrder;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Trials per statistical test: `GUARANTEE_TRIALS` env override, else 200.
/// The statistical tests are `#[ignore]`d in debug builds (un-optimized
/// samplers are 30-50× slower, which would dominate a plain `cargo test`);
/// run them with `cargo test --release --test guarantees`, or in debug via
/// `-- --ignored` with a small `GUARANTEE_TRIALS`.
fn trials() -> usize {
    let default = 200;
    std::env::var("GUARANTEE_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Lower confidence bound for an empirical success rate that should be at
/// least `p`: `p` minus three binomial standard errors at `trials` samples.
/// Three sigma keeps the false-alarm rate of the *test itself* below ~0.2%
/// while still catching estimators whose real failure rate exceeds `δ`.
fn rate_floor(p: f64, trials: usize) -> f64 {
    p - 3.0 * (p * (1.0 - p) / trials as f64).sqrt()
}

/// Run `trials` independently seeded estimates, count successes, and
/// assert the empirical rate clears the floor, printing failing seeds.
fn assert_conformance(name: &str, trials: usize, floor: f64, mut trial: impl FnMut(u64) -> bool) {
    let mut failures = Vec::new();
    for seed in 0..trials as u64 {
        if !trial(seed) {
            failures.push(seed);
        }
    }
    let rate = (trials - failures.len()) as f64 / trials as f64;
    assert!(
        rate >= floor,
        "{name}: empirical success rate {rate:.3} below floor {floor:.3} \
         ({}/{trials} failures; failing seeds: {failures:?})",
        failures.len(),
    );
}

/// Theorem 3.7 conformance on a given graph: each trial estimates with a
/// fresh master seed and succeeds iff `|T̂ − T| ≤ ε·T`.
fn triangle_conformance(name: &str, g: &Graph, epsilon: f64, delta: f64) {
    let truth = exact::count_triangles(g) as f64;
    assert!(truth > 0.0, "{name}: conformance graph must have triangles");
    let trials = trials();
    assert_conformance(name, trials, rate_floor(1.0 - delta, trials), |seed| {
        let order = StreamOrder::shuffled(g.vertex_count(), seed);
        let acc = Accuracy {
            epsilon,
            delta,
            seed: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1),
            ..Accuracy::default()
        };
        let est = try_estimate_triangles(g, &order, truth as u64, acc).expect("estimate runs");
        (est.count - truth).abs() <= epsilon * truth
    });
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "statistical conformance runs optimized: use `cargo test --release --test guarantees`"
)]
fn theorem_3_7_holds_on_planted_triangles() {
    let mut rng = StdRng::seed_from_u64(37);
    // Triangle-free bipartite background with 64 planted triangles: the
    // exact count is dominated by the plant, and the background supplies
    // the edge mass the sampler has to survive.
    let g = gen::planted_triangles_on_bipartite(100, 100, 2000, 64, &mut rng);
    triangle_conformance("thm3.7/planted", &g, 0.25, 0.1);
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "statistical conformance runs optimized: use `cargo test --release --test guarantees`"
)]
fn theorem_3_7_holds_on_gnm() {
    let mut rng = StdRng::seed_from_u64(38);
    let g = gen::gnm(250, 3000, &mut rng);
    triangle_conformance("thm3.7/gnm", &g, 0.25, 0.1);
}

/// Theorem 4.6 conformance: each trial's estimate must land inside a fixed
/// constant-factor envelope of the truth. The theorem promises *some*
/// constant; factor 8 is far above the observed ratios (the ablation table
/// puts them under 4) yet far below what a mis-scaled estimator produces.
fn four_cycle_conformance(name: &str, g: &Graph, factor: f64) {
    let truth = exact::count_four_cycles(g) as f64;
    assert!(truth > 0.0, "{name}: conformance graph must have 4-cycles");
    let trials = trials();
    // The driver amplifies internally at δ = 0.1; use the same rate floor.
    assert_conformance(name, trials, rate_floor(0.9, trials), |seed| {
        let n = g.vertex_count();
        let o1 = StreamOrder::shuffled(n, seed);
        let o2 = StreamOrder::shuffled(n, seed ^ 0xC4C4);
        let acc = Accuracy {
            seed: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1),
            ..Accuracy::default()
        };
        let est =
            try_estimate_four_cycles(g, [&o1, &o2], truth as u64, acc).expect("estimate runs");
        est.count >= truth / factor && est.count <= truth * factor
    });
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "statistical conformance runs optimized: use `cargo test --release --test guarantees`"
)]
fn theorem_4_6_holds_on_gnm() {
    let mut rng = StdRng::seed_from_u64(46);
    let g = gen::gnm(200, 2400, &mut rng);
    four_cycle_conformance("thm4.6/gnm", &g, 8.0);
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "statistical conformance runs optimized: use `cargo test --release --test guarantees`"
)]
fn theorem_4_6_holds_on_planted_four_cycles() {
    // Triangle components contribute zero 4-cycles, so truth = 64 exactly.
    let g = gen::disjoint_triangles(500).disjoint_union(&gen::disjoint_four_cycles(64));
    assert_eq!(exact::count_four_cycles(&g), 64);
    four_cycle_conformance("thm4.6/planted", &g, 8.0);
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "statistical conformance runs optimized: use `cargo test --release --test guarantees`"
)]
fn theorem_4_6_reports_zero_on_girth_six_incidence_graphs() {
    // Projective-plane incidence graphs have girth 6: no 4-cycles and no
    // triangles. The zero case must not degrade into a small positive
    // estimate — the estimator's unbiasedness makes 0 exact here.
    for q in [3u32, 5, 7] {
        let g = gen::projective_plane_incidence(q);
        assert_eq!(exact::count_four_cycles(&g), 0, "q = {q}");
        assert!(exact::girth::has_girth_at_least(&g, 6), "q = {q}");
        let n = g.vertex_count();
        for seed in 0..20u64 {
            let o1 = StreamOrder::shuffled(n, seed);
            let o2 = StreamOrder::shuffled(n, seed ^ 0xC4C4);
            let acc = Accuracy {
                seed: seed.wrapping_add(1),
                ..Accuracy::default()
            };
            let est = try_estimate_four_cycles(&g, [&o1, &o2], 1, acc).expect("estimate runs");
            assert_eq!(est.count, 0.0, "q = {q}, seed {seed}: {}", est.count);
        }
    }
}

/// Sequential and batched engines satisfy the same guarantee — the
/// conformance statement is engine-independent. A reduced-trial run keeps
/// the sequential engine (2 passes per repetition) affordable.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "statistical conformance runs optimized: use `cargo test --release --test guarantees`"
)]
fn theorem_3_7_holds_under_the_sequential_engine() {
    let mut rng = StdRng::seed_from_u64(39);
    let g = gen::gnm(150, 1500, &mut rng);
    let truth = exact::count_triangles(&g) as f64;
    assert!(truth > 0.0);
    let trials = trials().min(60);
    assert_conformance(
        "thm3.7/sequential",
        trials,
        rate_floor(0.9, trials),
        |seed| {
            let order = StreamOrder::shuffled(g.vertex_count(), seed);
            let acc = Accuracy {
                epsilon: 0.25,
                delta: 0.1,
                seed: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1),
                engine: Engine::Sequential,
                threads: 2,
                ..Accuracy::default()
            };
            let est = try_estimate_triangles(&g, &order, truth as u64, acc).expect("estimate runs");
            (est.count - truth).abs() <= 0.25 * truth
        },
    );
}

// ---------------------------------------------------------------------------
// Oracle cross-check: `graph::exact` vs from-scratch naive counters.
// ---------------------------------------------------------------------------

/// Dense adjacency matrix built from the raw edge list only — shares no
/// code with the CSR structure the `exact` counters traverse.
fn adjacency_matrix(g: &Graph) -> Vec<Vec<bool>> {
    let n = g.vertex_count();
    let mut adj = vec![vec![false; n]; n];
    for e in g.edge_vec() {
        let (u, v) = (e.lo().index(), e.hi().index());
        adj[u][v] = true;
        adj[v][u] = true;
    }
    adj
}

/// O(n³) triangle count over the matrix. Index-based on purpose: the
/// oracle should read like the textbook triple loop, not like the code
/// under test.
#[allow(clippy::needless_range_loop)]
fn naive_triangles(adj: &[Vec<bool>]) -> u64 {
    let n = adj.len();
    let mut count = 0u64;
    for i in 0..n {
        for j in i + 1..n {
            if !adj[i][j] {
                continue;
            }
            for k in j + 1..n {
                if adj[i][k] && adj[j][k] {
                    count += 1;
                }
            }
        }
    }
    count
}

/// 4-cycle count via codegrees: `Σ_{u<v} C(codeg(u,v), 2)` counts each
/// 4-cycle once at its two non-adjacent diagonal pairs... each cycle
/// `a-b-c-d` has diagonals `{a,c}` and `{b,d}`, each contributing one
/// wedge pair, so the sum counts every cycle exactly twice — divide by 2.
fn naive_four_cycles(adj: &[Vec<bool>]) -> u64 {
    let n = adj.len();
    let mut twice = 0u64;
    for u in 0..n {
        for v in u + 1..n {
            let codeg = (0..n).filter(|&w| adj[u][w] && adj[v][w]).count() as u64;
            twice += codeg * codeg.saturating_sub(1) / 2;
        }
    }
    twice / 2
}

/// Wedge (path of length 2) count: `Σ_v C(deg(v), 2)` from the matrix.
fn naive_wedges(adj: &[Vec<bool>]) -> u64 {
    adj.iter()
        .map(|row| {
            let d = row.iter().filter(|&&b| b).count() as u64;
            d * d.saturating_sub(1) / 2
        })
        .sum()
}

/// Strategy: a random simple graph with up to `n` vertices.
fn small_graph(n: u32, max_edges: usize) -> impl Strategy<Value = Graph> {
    prop::collection::vec((0..n, 0..n), 0..max_edges).prop_map(move |pairs| {
        let mut b = GraphBuilder::new(n as usize);
        for (u, v) in pairs {
            if u != v {
                b.add_edge(u.into(), v.into()).unwrap();
            }
        }
        b.build().unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn exact_counters_match_independent_naive_references(g in small_graph(30, 120)) {
        let adj = adjacency_matrix(&g);
        prop_assert_eq!(exact::count_triangles(&g), naive_triangles(&adj));
        prop_assert_eq!(exact::count_four_cycles(&g), naive_four_cycles(&adj));
        prop_assert_eq!(g.wedge_count(), naive_wedges(&adj));
        prop_assert_eq!(exact::wedge_count(&g), naive_wedges(&adj));
    }

    #[test]
    fn codegree_matches_matrix_reference(
        g in small_graph(20, 60),
        u in 0u32..20,
        v in 0u32..20,
    ) {
        let n = g.vertex_count() as u32;
        if u < n && v < n && u != v {
            let adj = adjacency_matrix(&g);
            let expect = (0..n as usize)
                .filter(|&w| adj[u as usize][w] && adj[v as usize][w])
                .count();
            prop_assert_eq!(g.codegree(VertexId(u), VertexId(v)), expect);
        }
    }
}

//! Property-based tests over the dynamic-streams subsystem: TRIÈST
//! reservoir ↔ adjacency bijection under long insert/delete streams
//! (with duplicate arrivals), TRIÈST-FD exactness and unbiasedness
//! against exact recounts, per-batch delta cross-checks, and sliding-
//! window semantics.

use adjstream::algo::dynamic::{windowed_estimates, ExactDynamicTriangles, WindowConfig};
use adjstream::algo::estimate::Accuracy;
use adjstream::algo::triangle::{TriestBase, TriestFd};
use adjstream::graph::{exact, gen, EdgeKey, Graph, GraphBuilder, VertexId};
use adjstream::stream::arbitrary::EdgeStreamAlgorithm;
use adjstream::stream::update::{
    churn, run_update_batches, ChurnConfig, UpdateAlgorithm, UpdateEvent, UpdateOp, UpdateStream,
};
use proptest::prelude::*;

/// Strategy: a raw edge script over a tiny vertex universe — booleans pick
/// insert vs delete. Turned into a *valid* update stream (deletes target
/// live edges, inserts target dead ones) by `materialize`; invalid steps
/// are skipped, so long scripts still produce long mixed streams.
fn update_script(n: u32, len: usize) -> impl Strategy<Value = Vec<(bool, u32, u32)>> {
    prop::collection::vec((any::<bool>(), 0..n, 0..n), 1..len)
}

fn materialize(script: &[(bool, u32, u32)]) -> UpdateStream {
    let mut live = std::collections::BTreeSet::new();
    let mut events = Vec::new();
    for (i, &(insert, u, v)) in script.iter().enumerate() {
        if u == v {
            continue;
        }
        let edge = EdgeKey::new(VertexId(u), VertexId(v));
        let valid = if insert {
            live.insert(edge.pack())
        } else {
            live.remove(&edge.pack())
        };
        if valid {
            events.push(UpdateEvent {
                op: if insert {
                    UpdateOp::Insert
                } else {
                    UpdateOp::Delete
                },
                edge,
                ts: i as u64,
            });
        }
    }
    UpdateStream::new(events)
}

fn final_graph(stream: &UpdateStream) -> Graph {
    let edges = stream.final_edges();
    let n = edges
        .iter()
        .map(|e| e.hi().0 as usize + 1)
        .max()
        .unwrap_or(0);
    GraphBuilder::from_edges(n, edges.iter().map(|e| (e.lo().0, e.hi().0))).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// TRIÈST-base under arbitrary-order *multigraph* streams: duplicate
    /// edge arrivals are legal input, and after every prefix the sampled
    /// adjacency must remain the exact multiset of reservoir edges.
    #[test]
    fn triest_base_bijection_survives_duplicates(
        edges in prop::collection::vec((0u32..12, 0u32..12), 1..200),
        capacity in 2usize..40,
        seed in 0u64..1000,
    ) {
        let mut alg = TriestBase::new(seed, capacity);
        for (u, v) in edges {
            if u != v {
                alg.edge(EdgeKey::new(VertexId(u), VertexId(v)));
            }
        }
        alg.assert_invariants();
    }

    /// TRIÈST-FD structural invariants hold after any valid insert/delete
    /// stream: reservoir ↔ index bijection, reservoir ↔ adjacency
    /// bijection, and `τ` equal to the sampled subgraph's triangle count.
    #[test]
    fn triest_fd_invariants_hold_after_any_valid_stream(
        script in update_script(12, 250),
        capacity in 3usize..40,
        seed in 0u64..1000,
    ) {
        let stream = materialize(&script);
        let mut alg = TriestFd::new(seed, capacity);
        for ev in stream.events() {
            alg.apply(ev);
        }
        alg.assert_invariants();
        prop_assert_eq!(alg.live_edges(), stream.final_edges().len() as u64);
    }

    /// Full-reservoir-is-exact, extended to deletion streams: with
    /// capacity ≥ every insertion the estimate equals the exact triangle
    /// count of the final graph — per batch, not just at the end.
    #[test]
    fn full_reservoir_batches_match_exact_recount(
        script in update_script(14, 220),
        seed in 0u64..1000,
    ) {
        let stream = materialize(&script);
        let mut fd = TriestFd::new(seed, stream.len().max(3));
        let report = run_update_batches(&stream, 16, &mut fd);
        let mut exact_alg = ExactDynamicTriangles::new();
        for (b, events) in stream.batches(16).enumerate() {
            events.iter().for_each(|ev| exact_alg.apply(ev));
            prop_assert_eq!(
                report.batches[b].estimate,
                exact_alg.estimate(),
                "batch {} delta diverged from exact recount",
                b
            );
        }
        fd.assert_invariants();
        prop_assert_eq!(fd.estimate(), exact::count_triangles(&final_graph(&stream)) as f64);
    }

    /// The exact incremental counter agrees with a from-scratch recount on
    /// every prefix boundary.
    #[test]
    fn exact_dynamic_tracks_recount_at_batch_boundaries(
        script in update_script(10, 160),
    ) {
        let stream = materialize(&script);
        let mut alg = ExactDynamicTriangles::new();
        for events in stream.batches(20) {
            events.iter().for_each(|ev| alg.apply(ev));
        }
        prop_assert_eq!(alg.triangles(), exact::count_triangles(&final_graph(&stream)));
    }

    /// Window-local semantics: each window's exact estimate equals an
    /// independent replay of just that window's events.
    #[test]
    fn window_estimates_are_window_local(
        script in update_script(10, 160),
        width in 1u64..80,
        stride in 1u64..80,
    ) {
        let stream = materialize(&script);
        if stream.is_empty() {
            return;
        }
        let cfg = WindowConfig {
            width,
            stride,
            acc: Accuracy::default(),
            exact: true,
        };
        for w in windowed_estimates(&stream, &cfg) {
            let mut replay = ExactDynamicTriangles::new();
            for ev in stream.slice_ts(w.ts_start, w.ts_end) {
                replay.apply(ev);
            }
            prop_assert_eq!(*w.estimate.as_ref().unwrap(), replay.estimate());
            prop_assert_eq!(w.edges, replay.edges());
        }
    }
}

/// TRIÈST-FD unbiasedness against the exact recount on a small dynamic
/// graph: sub-sampled estimates (capacity ≪ live edges) averaged across
/// seeds land within a tight band of the truth.
#[test]
fn triest_fd_subsampled_mean_matches_exact_recount() {
    let g = gen::disjoint_cliques(6, 10);
    let stream = churn(
        &g,
        &ChurnConfig {
            churn_events: 350,
            delete_fraction: 0.5,
            seed: 31,
        },
    );
    let truth = exact::count_triangles(&final_graph(&stream)) as f64;
    assert!(truth > 0.0, "churn kept some triangles alive");
    let reps = 250;
    let mean: f64 = (0..reps)
        .map(|seed| {
            let mut fd = TriestFd::new(seed, 80);
            run_update_batches(&stream, 50, &mut fd);
            fd.estimate()
        })
        .sum::<f64>()
        / reps as f64;
    assert!(
        (mean - truth).abs() < 0.15 * truth,
        "mean {mean} vs exact recount {truth}"
    );
}

/// The update driver's per-batch deltas telescope: summing them
/// reproduces the final estimate bit-for-bit, on both estimators.
#[test]
fn batch_deltas_telescope_to_final_estimate() {
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(3);
    let g = gen::gnm(60, 240, &mut rng);
    let stream = churn(
        &g,
        &ChurnConfig {
            churn_events: 500,
            delete_fraction: 0.5,
            seed: 8,
        },
    );
    let mut fd = TriestFd::new(5, 64);
    let fd_report = run_update_batches(&stream, 100, &mut fd);
    let sum: f64 = fd_report.batches.iter().map(|b| b.delta).sum();
    assert_eq!(sum, fd.estimate());
    let mut exact_alg = ExactDynamicTriangles::new();
    let exact_report = run_update_batches(&stream, 100, &mut exact_alg);
    let sum: f64 = exact_report.batches.iter().map(|b| b.delta).sum();
    assert_eq!(sum, exact_alg.estimate());
    assert_eq!(fd_report.events, stream.len());
    assert!(fd_report.peak_state_bytes > 0);
    // The sub-sampled estimator's state must be far below the exact
    // counter's full-graph state.
    assert!(fd_report.peak_state_bytes < exact_report.peak_state_bytes);
}

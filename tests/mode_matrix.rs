//! Differential conformance across every execution mode, on random
//! inputs — the property-test generalization of the gnm-only checks in
//! `crates/core/tests/shard_equivalence.rs` and the proptest twin of the
//! `scenario_matrix` corpus harness.
//!
//! Two contracts:
//!
//! * the shard-mergeable Theorem 3.7 estimator returns **bit-identical**
//!   outputs under sequential replay, the batched engine (1 and 4
//!   threads), graph sharding (1/2/4/8 shards), and zero-copy mmap
//!   replay of the serialized `.adjb` trace;
//! * the high-level triangle driver returns bit-identical
//!   [`CountEstimate`]s under `Engine::Sequential` and `Engine::Batched`
//!   at any thread count.

use adjstream::algo::common::EdgeSampling;
use adjstream::algo::estimate::{try_estimate_triangles, Accuracy, Engine};
use adjstream::algo::triangle::{ShardedTriangle, ShardedTriangleConfig};
use adjstream::graph::{gen, VertexId};
use adjstream::stream::batch::{BatchConfig, BatchRunner};
use adjstream::stream::mmapfile::MappedTrace;
use adjstream::stream::runner::run_slice_passes;
use adjstream::stream::shard::{run_sharded, ShardPlan};
use adjstream::stream::trace::ItemTrace;
use adjstream::stream::{Metrics, StreamItem, StreamOrder};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Tiny deterministic generator for building workloads from a drawn seed.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

/// A promise-valid adjacency-list trace of a random simple graph.
fn random_trace(seed: u64, n: u32, target_edges: usize) -> Vec<StreamItem> {
    let mut mix = Mix(seed);
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n as usize];
    let mut edges = std::collections::BTreeSet::new();
    for _ in 0..target_edges * 2 {
        if edges.len() >= target_edges {
            break;
        }
        let u = mix.below(n as u64) as u32;
        let v = mix.below(n as u64) as u32;
        if u != v && edges.insert((u.min(v), u.max(v))) {
            adj[u as usize].push(v);
            adj[v as usize].push(u);
        }
    }
    let mut items = Vec::new();
    for (u, nbrs) in adj.iter().enumerate() {
        for &v in nbrs {
            items.push(StreamItem::new(VertexId(u as u32), VertexId(v)));
        }
    }
    items
}

fn config(seed: u64, items: usize) -> ShardedTriangleConfig {
    ShardedTriangleConfig {
        seed,
        edge_sampling: EdgeSampling::BottomK {
            k: (items / 8).max(8),
        },
        pair_capacity: (items / 8).max(8),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Sequential vs batched×{1,4} vs sharded×{1,2,4,8} vs mmap: one
    /// estimator, seven more executions, zero bits of daylight.
    #[test]
    fn all_execution_modes_agree_bit_for_bit(
        seed in any::<u64>(),
        n in 6u32..40,
        density in 1usize..5,
    ) {
        let items = random_trace(seed, n, n as usize * density);
        let cfg = config(seed ^ 0x51AD, items.len().max(1));
        let (want, _) = run_slice_passes(ShardedTriangle::new(cfg), |_pass| &items[..])
            .expect("sequential run");

        for threads in [1usize, 4] {
            let outcome = BatchRunner::try_run_items(
                vec![ShardedTriangle::new(cfg)],
                |_pass| items.clone(),
                &BatchConfig::with_threads(threads),
            )
            .expect("batched run");
            let got = outcome.outputs[0].as_ref().expect("instance survived");
            prop_assert_eq!(
                got.estimate.to_bits(), want.estimate.to_bits(),
                "batched diverged at {} threads", threads
            );
            prop_assert_eq!(got, &want);
        }

        for shards in [1usize, 2, 4, 8] {
            let plan = ShardPlan::build(&items, shards);
            let (got, _) =
                run_sharded(ShardedTriangle::new(cfg), &plan, &items, &Metrics::disabled())
                    .expect("sharded run");
            prop_assert_eq!(
                got.estimate.to_bits(), want.estimate.to_bits(),
                "sharded diverged at {} shards", shards
            );
            prop_assert_eq!(got, want.clone());
        }

        // Serialize, reopen zero-copy, replay: still the same bits.
        let path = std::env::temp_dir().join(format!(
            "mode-matrix-{}-{seed:x}.adjb",
            std::process::id()
        ));
        let trace = ItemTrace::new_unchecked(items.clone());
        let mut f = std::fs::File::create(&path).expect("create temp trace");
        trace.write_adjb(&mut f).expect("serialize");
        drop(f);
        let mut mapped = MappedTrace::open(&path).expect("mmap");
        mapped.verify_all(1 << 16).expect("windowed checksum");
        let (got, _) = run_slice_passes(ShardedTriangle::new(cfg), |_pass| mapped.items())
            .expect("mmap run");
        drop(mapped);
        let _ = std::fs::remove_file(&path);
        prop_assert_eq!(got.estimate.to_bits(), want.estimate.to_bits(), "mmap diverged");
        prop_assert_eq!(got, want);
    }

    /// The high-level driver: `CountEstimate`s are engine- and
    /// thread-count-invariant on random graphs.
    #[test]
    fn count_estimates_are_engine_invariant(
        seed in any::<u64>(),
        n in 12usize..48,
        m_factor in 2usize..5,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = gen::gnm(n, n * m_factor, &mut rng);
        let order = StreamOrder::shuffled(g.vertex_count(), seed ^ 0x0DDE);
        let acc = |engine: Engine, threads: usize| Accuracy {
            epsilon: 0.5,
            delta: 0.2,
            seed: seed ^ 0xACC,
            threads,
            engine,
            ..Accuracy::default()
        };
        let want = try_estimate_triangles(&g, &order, 1, acc(Engine::Sequential, 1))
            .expect("sequential estimate");
        for threads in [1usize, 2, 4] {
            let got = try_estimate_triangles(&g, &order, 1, acc(Engine::Batched, threads))
                .expect("batched estimate");
            prop_assert_eq!(
                got.count.to_bits(), want.count.to_bits(),
                "CountEstimate diverged: batched×{} {} vs sequential {}",
                threads, got.count, want.count
            );
            prop_assert_eq!(got.budget, want.budget);
            prop_assert_eq!(got.repetitions, want.repetitions);
        }
    }
}

//! Crash-recovery drill for *update jobs*: SIGKILL the daemon while a
//! batched TRIÈST-FD job is mid-trace, restart it over the same state
//! directory, and require the resumed job's per-batch estimate ledger —
//! the `.batches` sidecar — to be bit-for-bit identical to an
//! uninterrupted run of the same spec. Also exercises the admission-time
//! kind checks: a static estimate job against an `.adjbu` trace is a
//! typed `kind_mismatch` rejection, and a trace that changes on disk
//! after registration is a typed `trace_changed` rejection.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use adjstream::graph::gen;
use adjstream::service::json::{parse, Json};
use adjstream::stream::update::{churn, ChurnConfig};
use adjstream::stream::write_adjbu;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SEED: u64 = 4242;
const BATCH_SIZE: usize = 64;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("adjstreamd-upd-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_update_trace(dir: &Path) -> PathBuf {
    let mut rng = StdRng::seed_from_u64(9);
    let g = gen::gnm(60, 200, &mut rng);
    let stream = churn(
        &g,
        &ChurnConfig {
            churn_events: 600,
            delete_fraction: 0.4,
            seed: 17,
        },
    );
    let path = dir.join("u.adjbu");
    let mut buf = Vec::new();
    write_adjbu(&stream, &mut buf).unwrap();
    std::fs::write(&path, buf).unwrap();
    path
}

// Every caller kills and waits on the child; the only escape is a test
// panic, which tears the process down anyway.
#[allow(clippy::zombie_processes)]
fn spawn_daemon(state_dir: &Path) -> (Child, PathBuf) {
    let child = Command::new(env!("CARGO_BIN_EXE_adjstreamd"))
        .args(["--state-dir", &state_dir.display().to_string()])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("adjstreamd binary spawns");
    let socket = state_dir.join("adjstreamd.sock");
    let start = Instant::now();
    loop {
        if UnixStream::connect(&socket).is_ok() {
            return (child, socket);
        }
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "daemon never became ready"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn req(socket: &Path, line: &str) -> Json {
    let stream = UnixStream::connect(socket).expect("daemon accepts connections");
    let mut w = stream.try_clone().unwrap();
    writeln!(w, "{line}").unwrap();
    w.flush().unwrap();
    let mut reply = String::new();
    BufReader::new(stream).read_line(&mut reply).unwrap();
    parse(reply.trim()).expect("daemon speaks valid JSON")
}

fn register(socket: &Path, trace: &Path) -> Json {
    let reply = req(
        socket,
        &format!(
            "{{\"op\":\"register\",\"name\":\"u\",\"path\":\"{}\"}}",
            trace.display()
        ),
    );
    assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "{reply}");
    reply
}

fn submit_update(socket: &Path, delay_ms: u64) -> String {
    let reply = req(
        socket,
        &format!(
            "{{\"op\":\"submit\",\"trace\":\"u\",\"kind\":\"update\",\"seed\":{SEED},\
             \"batch_size\":{BATCH_SIZE},\"capacity\":128,\"guard\":\"repair\",\
             \"delay_ms_per_pass\":{delay_ms}}}"
        ),
    );
    reply
        .str_field("id")
        .unwrap_or_else(|| panic!("submit reply has an id: {reply}"))
        .to_string()
}

fn wait_done(socket: &Path, id: &str) -> Json {
    let start = Instant::now();
    loop {
        let reply = req(socket, &format!("{{\"op\":\"status\",\"id\":\"{id}\"}}"));
        match reply.str_field("state") {
            Some("done") => return reply,
            Some("degraded" | "failed") => panic!("job {id} settled badly: {reply}"),
            _ => {
                assert!(
                    start.elapsed() < Duration::from_secs(120),
                    "job {id} never finished: {reply}"
                );
                std::thread::sleep(Duration::from_millis(25));
            }
        }
    }
}

/// The per-batch ledger the daemon writes next to the manifest at
/// completion, stripped of the run-specific job id.
fn sidecar_ledger(state_dir: &Path, id: &str) -> (Json, Json) {
    let bytes = std::fs::read(state_dir.join(format!("job-{id}.batches")))
        .expect("completed update job wrote its .batches sidecar");
    let doc = parse(std::str::from_utf8(&bytes).unwrap().trim()).unwrap();
    let batches = doc.get("batches").expect("sidecar has batches").clone();
    let guard = doc.get("guard").expect("sidecar has guard stats").clone();
    (batches, guard)
}

#[test]
fn update_job_kill9_resumes_bit_identical_batches() {
    // Uninterrupted baseline.
    let base_dir = tmp_dir("baseline");
    let trace = write_update_trace(&base_dir);
    let (mut child, socket) = spawn_daemon(&base_dir);
    let reg = register(&socket, &trace);
    assert_eq!(reg.str_field("kind"), Some("update"), "{reg}");

    // Admission-time kind check: a static triangles job against the
    // `.adjbu` trace is refused with the typed reason, not run.
    let mismatch = req(
        &socket,
        &format!("{{\"op\":\"submit\",\"trace\":\"u\",\"t_lower\":10,\"seed\":{SEED}}}"),
    );
    assert_eq!(
        mismatch.str_field("reason"),
        Some("kind_mismatch"),
        "{mismatch}"
    );

    let base_id = submit_update(&socket, 0);
    let done = wait_done(&socket, &base_id);
    let base_bits = done
        .get("result")
        .and_then(|r| r.str_field("estimate_bits"))
        .expect("done status carries estimate_bits")
        .to_string();
    let (base_batches, base_guard) = sidecar_ledger(&base_dir, &base_id);
    child.kill().unwrap();
    child.wait().unwrap();

    // Crash run: slow the job down (the chaos delay is sliced across each
    // batch), wait for the first batch-boundary checkpoint, then SIGKILL.
    let crash_dir = tmp_dir("crash");
    let trace = write_update_trace(&crash_dir);
    let (mut child, socket) = spawn_daemon(&crash_dir);
    register(&socket, &trace);
    let id = submit_update(&socket, 300);
    let ckpt = crash_dir.join(format!("job-{id}.ckpt"));
    let start = Instant::now();
    while !ckpt.exists() {
        assert!(
            start.elapsed() < Duration::from_secs(60),
            "batch-boundary checkpoint never appeared"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    child.kill().unwrap(); // SIGKILL — no drain, no warning.
    child.wait().unwrap();

    // Restart over the same state dir: recovery requeues the job, the
    // worker resumes from the checkpointed batch, and both the final
    // estimate and the complete per-batch ledger match the baseline
    // bit-for-bit.
    let (mut child, socket) = spawn_daemon(&crash_dir);
    let done = wait_done(&socket, &id);
    let result = done.get("result").expect("done status has result");
    assert_eq!(
        result.str_field("estimate_bits"),
        Some(base_bits.as_str()),
        "resumed update job diverged after kill -9: {done}"
    );
    let resumed_from = result.f64_field("resumed_from").map(|p| p as usize);
    assert!(
        resumed_from.is_some_and(|b| b >= 1),
        "job should resume from a batch-boundary checkpoint: {done}"
    );
    let (batches, guard) = sidecar_ledger(&crash_dir, &id);
    assert_eq!(batches, base_batches, "per-batch ledger diverged");
    assert_eq!(guard, base_guard, "guard stats diverged");
    child.kill().unwrap();
    child.wait().unwrap();
    let _ = std::fs::remove_dir_all(&base_dir);
    let _ = std::fs::remove_dir_all(&crash_dir);
}

/// A registered trace rewritten on disk no longer matches its recorded
/// checksum: admission refuses the job with `trace_changed` instead of
/// running against bytes nobody vetted.
#[test]
fn swapped_trace_is_rejected_at_admission() {
    let dir = tmp_dir("swap");
    let trace = write_update_trace(&dir);
    let (mut child, socket) = spawn_daemon(&dir);
    register(&socket, &trace);
    // Rewrite the file with different (still valid) contents.
    let mut rng = StdRng::seed_from_u64(99);
    let g = gen::gnm(20, 40, &mut rng);
    let other = churn(
        &g,
        &ChurnConfig {
            churn_events: 50,
            delete_fraction: 0.3,
            seed: 1,
        },
    );
    let mut buf = Vec::new();
    write_adjbu(&other, &mut buf).unwrap();
    std::fs::write(&trace, buf).unwrap();
    let reply = req(
        &socket,
        &format!(
            "{{\"op\":\"submit\",\"trace\":\"u\",\"kind\":\"update\",\"seed\":{SEED},\
             \"batch_size\":{BATCH_SIZE},\"capacity\":128}}"
        ),
    );
    assert_eq!(reply.str_field("reason"), Some("trace_changed"), "{reply}");
    child.kill().unwrap();
    child.wait().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

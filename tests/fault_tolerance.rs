//! Integration tests of the fault-tolerance layer through the public
//! facade: panic isolation with survivor quorums (the ISSUE's R = 15
//! acceptance scenario), pass-boundary checkpoint/resume of the real
//! Theorem 3.7 algorithm, typed budget failures at the driver level, and a
//! proptest matrix checking that guard statistics and survivor medians are
//! engine-invariant under every [`FaultKind`].

use adjstream::algo::amplify::{median_of_survivors, quorum, DegradedRun};
use adjstream::algo::common::EdgeSampling;
use adjstream::algo::estimate::{try_estimate_triangles, Accuracy, Engine, EstimateError};
use adjstream::algo::triangle::{TwoPassTriangle, TwoPassTriangleConfig};
use adjstream::graph::{gen, Graph, VertexId};
use adjstream::stream::batch::{BatchConfig, BatchRunner, Budget, InstanceOutcome};
use adjstream::stream::{
    run_item_passes, AdjListStream, FaultKind, FaultPlan, GuardPolicy, Guarded, MultiPassAlgorithm,
    PassOrders, RunError, SpaceUsage, StreamOrder, ValidatorMode,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn er_graph(seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    gen::gnm(60, 300, &mut rng).disjoint_union(&gen::disjoint_cliques(5, 6))
}

fn triangle_instances(reps: usize, base_seed: u64, budget: usize) -> Vec<TwoPassTriangle> {
    (0..reps)
        .map(|i| {
            TwoPassTriangle::new(TwoPassTriangleConfig {
                seed: base_seed.wrapping_add(i as u64),
                edge_sampling: EdgeSampling::BottomK { k: budget },
                pair_capacity: budget,
            })
        })
        .collect()
}

/// Run a closure with the default panic hook silenced, so injected panics
/// don't spray backtraces over test output.
fn quietly<T>(f: impl FnOnce() -> T) -> T {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    let _guard = LOCK.lock().unwrap();
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(prev);
    out
}

/// A two-pass probe that digests every item it sees and can be armed to
/// panic mid-pass after a fixed number of items — the injected-fault stand-
/// in for a buggy estimator instance.
struct PanicProbe {
    digest: u64,
    items: u64,
    panic_after: Option<u64>,
}

impl PanicProbe {
    fn new(seed: u64) -> Self {
        PanicProbe {
            digest: seed ^ 0xcbf2_9ce4_8422_2325,
            items: 0,
            panic_after: None,
        }
    }

    fn panicking_at(mut self, n: u64) -> Self {
        self.panic_after = Some(n);
        self
    }
}

impl SpaceUsage for PanicProbe {
    fn space_bytes(&self) -> usize {
        64
    }
}

impl MultiPassAlgorithm for PanicProbe {
    type Output = f64;
    fn passes(&self) -> usize {
        2
    }
    fn begin_pass(&mut self, _pass: usize) {}
    fn item(&mut self, src: VertexId, dst: VertexId) {
        self.items += 1;
        if self.panic_after == Some(self.items) {
            panic!("injected mid-pass panic");
        }
        let mixed = (u64::from(src.0) << 32) | u64::from(dst.0);
        self.digest = self.digest.wrapping_mul(0x0000_0100_0000_01b3) ^ mixed;
    }
    fn finish(self) -> f64 {
        (self.digest >> 11) as f64
    }
}

fn probes(reps: usize, panicking: &[usize]) -> Vec<PanicProbe> {
    (0..reps)
        .map(|i| {
            let p = PanicProbe::new(900 + i as u64);
            if panicking.contains(&i) {
                p.panicking_at(40)
            } else {
                p
            }
        })
        .collect()
}

#[test]
fn one_panic_in_fifteen_meets_the_quorum_at_both_thread_counts() {
    let g = er_graph(11);
    let orders = PassOrders::Same(StreamOrder::shuffled(g.vertex_count(), 5));
    let reps = 15;
    assert_eq!(quorum(reps), 9);
    let mut reference: Option<Vec<Option<f64>>> = None;
    for threads in [1usize, 4] {
        let out = quietly(|| {
            BatchRunner::try_run(
                &g,
                probes(reps, &[7]),
                &orders,
                &BatchConfig::with_threads(threads),
            )
            .expect("a panicking instance is quarantined, not fatal")
        });
        assert_eq!(out.report.survivors(), 14, "threads = {threads}");
        assert!(matches!(
            out.report.per_instance[7].outcome,
            InstanceOutcome::Panicked { .. }
        ));
        let report = median_of_survivors(&out.outputs, quorum(reps))
            .expect("14 survivors clear a quorum of 9");
        assert_eq!(report.dead_runs, 1);
        assert_eq!(report.runs.len(), 14);
        assert!(report.median.is_finite());
        // Both thread counts produce the identical survivor vector.
        match &reference {
            None => reference = Some(out.outputs.clone()),
            Some(want) => assert_eq!(&out.outputs, want, "threads = {threads}"),
        }
    }
}

#[test]
fn eight_panics_in_fifteen_is_a_typed_degraded_run() {
    let g = er_graph(13);
    let orders = PassOrders::Same(StreamOrder::shuffled(g.vertex_count(), 5));
    let reps = 15;
    let dead: Vec<usize> = (0..8).collect();
    for threads in [1usize, 4] {
        let out = quietly(|| {
            BatchRunner::try_run(
                &g,
                probes(reps, &dead),
                &orders,
                &BatchConfig::with_threads(threads),
            )
            .expect("panics quarantine instances, not the batch")
        });
        assert_eq!(out.report.survivors(), 7, "threads = {threads}");
        let err = median_of_survivors(&out.outputs, quorum(reps))
            .expect_err("7 survivors miss a quorum of 9");
        assert_eq!(
            err,
            DegradedRun {
                survivors: 7,
                required: 9,
                repetitions: 15,
            }
        );
        assert!(err.to_string().contains("only 7 of 15"));
    }
}

#[test]
fn killed_at_the_pass_boundary_resumes_bit_for_bit() {
    let g = er_graph(17);
    let orders = PassOrders::Same(StreamOrder::shuffled(g.vertex_count(), 3));
    let cfg = BatchConfig::default();
    // Uninterrupted reference run.
    let full = BatchRunner::try_run(&g, triangle_instances(6, 21, 64), &orders, &cfg).unwrap();
    assert!(full.outputs.iter().all(Option::is_some));
    // Checkpointed run: the boundary file it leaves behind is exactly what
    // a process killed after the pass-0/1 boundary write would leave.
    let path = std::env::temp_dir().join(format!(
        "adjstream-fault-tolerance-ckpt-{}.bin",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    let out =
        BatchRunner::try_run_checkpointed(&g, triangle_instances(6, 21, 64), &orders, &cfg, &path)
            .unwrap();
    assert_eq!(out.outputs, full.outputs, "checkpointing changes nothing");
    assert!(path.exists(), "the boundary checkpoint persists");
    // Resume the "killed" run at several thread counts: pass 1 replays and
    // the estimates come out bit-for-bit identical.
    for threads in [1usize, 4] {
        let resumed = BatchRunner::resume::<TwoPassTriangle>(
            &g,
            &orders,
            &BatchConfig::with_threads(threads),
            &path,
        )
        .unwrap();
        assert_eq!(resumed.outputs, full.outputs, "threads = {threads}");
        assert_eq!(resumed.report.resumed_from, Some(1));
        assert_eq!(resumed.report.passes, 2);
        assert_eq!(resumed.report.survivors(), 6);
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn budget_failures_are_typed_at_the_driver_level() {
    let g = er_graph(19);
    let order = StreamOrder::shuffled(g.vertex_count(), 9);
    let base = Accuracy {
        epsilon: 0.4,
        delta: 0.25,
        seed: 44,
        threads: 2,
        ..Accuracy::default()
    };
    for engine in [Engine::Sequential, Engine::Batched] {
        // An expired deadline is a whole-run error...
        let acc = Accuracy {
            engine,
            budget: Budget {
                deadline: Some(std::time::Duration::ZERO),
                ..Budget::default()
            },
            ..base
        };
        let err = try_estimate_triangles(&g, &order, 60, acc).unwrap_err();
        assert_eq!(
            err,
            EstimateError::Run(RunError::DeadlineExceeded { limit_ms: 0 }),
            "{engine}"
        );
        // ...while a starved per-instance budget degrades below quorum.
        let acc = Accuracy {
            engine,
            budget: Budget {
                max_bytes_per_instance: Some(1),
                ..Budget::default()
            },
            ..base
        };
        let err = try_estimate_triangles(&g, &order, 60, acc).unwrap_err();
        let EstimateError::Degraded(d) = err else {
            panic!("expected a degraded run under {engine}");
        };
        assert_eq!(d.survivors, 0);
        assert!(d.required >= 1);
    }
}

const ALL_FAULT_KINDS: [FaultKind; 7] = [
    FaultKind::DropDirection,
    FaultKind::DuplicateItem,
    FaultKind::SplitList,
    FaultKind::InjectSelfLoop,
    FaultKind::CorruptVertex,
    FaultKind::TruncateTail,
    FaultKind::ReorderPass,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For every fault kind and both thread counts, the batched engine's
    /// guarded Repair run must agree with the one-instance-at-a-time
    /// sequential reference on (a) which instances survive, (b) the guard's
    /// fault counters, and (c) the survivor median.
    #[test]
    fn fault_matrix_guard_stats_and_survivor_medians_are_engine_invariant(
        graph_seed in 0u64..200,
        fault_seed in 0u64..200,
        count in 1usize..3,
    ) {
        for kind in ALL_FAULT_KINDS {
            let mut rng = StdRng::seed_from_u64(graph_seed);
            let g = gen::gnm(36, 140, &mut rng);
            let items =
                AdjListStream::new(&g, StreamOrder::shuffled(36, graph_seed)).collect_items();
            let corrupted = FaultPlan::new(fault_seed).with(kind, count).apply(&items);
            let reps = 5;

            // Sequential reference: guarded instances one at a time.
            let mut want_runs: Vec<Option<f64>> = Vec::new();
            let mut want_stats = None;
            let mut want_err = None;
            for i in 0..reps {
                let algo = Guarded::new(
                    triangle_instances(1, 3 + i as u64, 32).pop().unwrap(),
                    GuardPolicy::Repair,
                );
                match run_item_passes(algo, |p| corrupted.items_for_pass(p).to_vec()) {
                    Ok((est, rep)) => {
                        want_runs.push(Some(est.estimate));
                        want_stats = rep.guard;
                    }
                    Err(e) => {
                        want_runs.push(None);
                        want_err = Some(e);
                    }
                }
            }

            for threads in [1usize, 4] {
                let instances: Vec<TwoPassTriangle> = (0..reps)
                    .map(|i| triangle_instances(1, 3 + i as u64, 32).pop().unwrap())
                    .collect();
                let batched = BatchRunner::try_run_items(
                    instances,
                    |p| corrupted.items_for_pass(p).to_vec(),
                    &BatchConfig {
                        threads,
                        guard: Some((GuardPolicy::Repair, ValidatorMode::Exact)),
                        ..BatchConfig::default()
                    },
                );
                match batched {
                    Ok(out) => {
                        prop_assert!(
                            want_err.is_none(),
                            "{kind}: sequential errored ({:?}) but batched ran",
                            want_err
                        );
                        let got_runs: Vec<Option<f64>> = out
                            .outputs
                            .iter()
                            .map(|o| o.as_ref().map(|e| e.estimate))
                            .collect();
                        prop_assert_eq!(
                            &got_runs, &want_runs,
                            "{} at {} threads: per-instance estimates", kind, threads
                        );
                        let got = out.report.guard.expect("shared guard publishes stats");
                        let want = want_stats.expect("guarded run publishes stats");
                        prop_assert_eq!(got.faults_detected, want.faults_detected);
                        prop_assert_eq!(got.items_repaired, want.items_repaired);
                        prop_assert_eq!(got.edges_quarantined, want.edges_quarantined);
                        if let Ok(want_med) = median_of_survivors(&want_runs, 1) {
                            let got_med = median_of_survivors(&got_runs, 1)
                                .expect("same survivor sets");
                            prop_assert_eq!(
                                got_med.median.to_bits(),
                                want_med.median.to_bits(),
                                "{} at {} threads: survivor median", kind, threads
                            );
                            prop_assert_eq!(got_med.dead_runs, want_med.dead_runs);
                        }
                    }
                    Err(e) => {
                        // A shared-stream abort must mirror a sequential
                        // abort of every instance (one stream, one verdict).
                        prop_assert!(
                            want_runs.iter().all(Option::is_none),
                            "{kind}: batched aborted ({e}) but some sequential runs survived"
                        );
                    }
                }
            }
        }
    }
}

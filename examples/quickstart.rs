//! Quickstart: estimate the triangle count of a streamed graph with the
//! paper's two-pass algorithm and compare against the exact count.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use adjstream::algo::amplify::median_of_runs;
use adjstream::algo::common::EdgeSampling;
use adjstream::algo::triangle::{TwoPassTriangle, TwoPassTriangleConfig};
use adjstream::graph::{exact, gen};
use adjstream::stream::{validate_stream, AdjListStream, PassOrders, Runner, StreamOrder};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. A workload: sparse random graph plus planted cliques.
    let mut rng = StdRng::seed_from_u64(2019);
    let background = gen::gnm(3_000, 15_000, &mut rng);
    let cliques = gen::disjoint_cliques(8, 20); // 20·C(8,3) = 1120 triangles
    let g = background.disjoint_union(&cliques);
    let n = g.vertex_count();
    let m = g.edge_count();
    let truth = exact::count_triangles(&g);
    println!("graph: n = {n}, m = {m}, exact T = {truth}");

    // 2. The stream: adjacency-list order with randomized layout. The
    //    validator certifies the model's promise before we trust it.
    let order = StreamOrder::shuffled(n, 7);
    let stream = AdjListStream::new(&g, order.clone());
    let edges = validate_stream(stream.items()).expect("promise holds");
    println!(
        "stream: {} items, {edges} edges, promise verified",
        stream.len()
    );

    // 3. The Theorem 3.7 two-pass algorithm at the paper budget
    //    m' = Θ(m / T^(2/3)), amplified by a median of 9 runs.
    let budget = ((6.0 * m as f64 / (truth as f64).powf(2.0 / 3.0)).ceil() as usize).max(16);
    println!(
        "budget: m' = {budget} sampled edges (m/T^(2/3) = {:.0})",
        m as f64 / (truth as f64).powf(2.0 / 3.0)
    );
    let report = median_of_runs(9, 1, 4, |seed| {
        let cfg = TwoPassTriangleConfig {
            seed,
            edge_sampling: EdgeSampling::BottomK { k: budget },
            pair_capacity: budget,
        };
        let (est, _) = Runner::run(
            &g,
            TwoPassTriangle::new(cfg),
            &PassOrders::Same(order.clone()),
        );
        est.estimate
    });

    let rel = (report.median - truth as f64).abs() / truth as f64;
    println!(
        "estimate: {:.0} (median of 9 runs; relative error {:.1}%)",
        report.median,
        100.0 * rel
    );
    assert!(rel < 0.5, "estimate should be in the right ballpark");
}

//! Space–accuracy tradeoff, live: sweep the sample budget of the two-pass
//! triangle algorithm and watch the error shrink while measured peak state
//! tracks the configured budget — the tradeoff Theorem 3.7 formalizes as
//! `m' = Θ(m / (ε² T^{2/3}))`.
//!
//! ```sh
//! cargo run --release --example space_accuracy
//! ```

use adjstream::algo::common::EdgeSampling;
use adjstream::algo::triangle::{TwoPassTriangle, TwoPassTriangleConfig};
use adjstream::graph::{exact, gen};
use adjstream::stream::{PassOrders, Runner, StreamOrder};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(8);
    let bg = gen::gnm(4_000, 20_000, &mut rng);
    let g = bg.disjoint_union(&gen::disjoint_cliques(7, 30)); // += 30·35 triangles
    let n = g.vertex_count();
    let m = g.edge_count();
    let truth = exact::count_triangles(&g) as f64;
    let bound = m as f64 / truth.powf(2.0 / 3.0);
    println!("graph: m = {m}, T = {truth}, paper budget m/T^(2/3) = {bound:.0}\n");
    println!(
        "{:>8}  {:>12}  {:>12}  {:>10}  {:>10}",
        "budget", "budget/bound", "peak state", "median est", "rel error"
    );

    let mut budget = (bound / 4.0).max(8.0) as usize;
    while budget <= m {
        let mut peak = 0usize;
        let order = StreamOrder::shuffled(n, 5);
        let runs: Vec<f64> = (0..9u64)
            .map(|seed| {
                let cfg = TwoPassTriangleConfig {
                    seed,
                    edge_sampling: EdgeSampling::BottomK { k: budget },
                    pair_capacity: budget,
                };
                let (est, rep) = Runner::run(
                    &g,
                    TwoPassTriangle::new(cfg),
                    &PassOrders::Same(order.clone()),
                );
                peak = peak.max(rep.peak_state_bytes);
                est.estimate
            })
            .collect();
        let med = adjstream::stream::estimator::median(&runs);
        println!(
            "{budget:>8}  {:>12.2}  {:>11}B  {med:>10.0}  {:>9.1}%",
            budget as f64 / bound,
            peak,
            100.0 * (med - truth).abs() / truth
        );
        budget *= 4;
    }
}

//! Lower bounds, constructively: encode an INDEX instance as the Figure 1c
//! gadget, run a streaming algorithm as the Alice→Bob protocol, and recover
//! Alice's bit from the cycle count — the reduction of Theorem 5.3 end to
//! end.
//!
//! ```sh
//! cargo run --release --example lower_bound_demo
//! ```

use adjstream::algo::exact_stream::{ExactKind, ExactStreamCounter};
use adjstream::algo::sampled_subgraph::SampledSubgraphCycles;
use adjstream::lowerbound::gadgets::{index_four_cycle_gadget, random_index_instance_for_plane};
use adjstream::lowerbound::protocol::run_protocol;
use adjstream::stream::order::WithinListOrder;

fn main() {
    let q = 5; // PG(2,5): 31 points, 186 incidences
    let k = 8; // planted cycle count T

    println!("Theorem 5.3 reduction: INDEX over the incidences of PG(2,{q})\n");
    for answer in [true, false] {
        let inst = random_index_instance_for_plane(q, answer, 42);
        let gadget = index_four_cycle_gadget(&inst, q, k);
        let m = gadget.graph.edge_count();
        println!(
            "instance: r = {} bits, s_x = {}; gadget: n = {}, m = {m}",
            inst.len(),
            answer as u8,
            gadget.graph.vertex_count()
        );

        // Bob decodes with an exact (linear-space) counter: always works,
        // but look at the message size — that's the Ω(m) the theorem says
        // you cannot avoid in one pass.
        let (count, report) = run_protocol(
            &gadget,
            ExactStreamCounter::new(ExactKind::FourCycles),
            WithinListOrder::Sorted,
        );
        let decoded = count > 0;
        println!(
            "  exact counter:    counted {count} 4-cycles → decodes s_x = {} ✓  (message {} bytes ≈ {:.1}·m)",
            decoded as u8,
            report.max_message,
            report.max_message as f64 / m as f64
        );
        assert_eq!(decoded, answer);

        // A sublinear one-pass sketch (10% of the edges) almost never sees
        // a planted cycle — the bit does not fit through a small message.
        let (est, report) = run_protocol(
            &gadget,
            SampledSubgraphCycles::new(7, 4, m / 10),
            WithinListOrder::Sorted,
        );
        println!(
            "  10%-edge sketch:  estimate {:.1} → cannot decode reliably   (message {} bytes)",
            est.estimate, report.max_message
        );
    }
    println!("\nOne pass, sublinear space, 4-cycles: impossible — exactly Theorem 5.3.");
}

//! 4-cycle census of a bipartite interaction graph.
//!
//! In bipartite networks (users × pages, authors × papers) the 4-cycle
//! count is the basic "butterfly" cohesion statistic — the bipartite
//! analogue of the triangle. This example streams a bipartite graph twice
//! (in *different* orders: the Section 4 algorithm does not need replay)
//! and compares the `O(1)`-approximation to the exact count, for both
//! estimator variants.
//!
//! ```sh
//! cargo run --release --example fourcycle_census
//! ```

use adjstream::algo::amplify::median_of_runs;
use adjstream::algo::fourcycle::{FourCycleEstimator, TwoPassFourCycle, TwoPassFourCycleConfig};
use adjstream::graph::{exact, gen};
use adjstream::stream::{PassOrders, Runner, StreamOrder};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(4);
    let side = 800;
    let g = gen::bipartite_gnm(side, side, 24_000, &mut rng);
    let n = g.vertex_count();
    let m = g.edge_count();
    let truth = exact::count_four_cycles(&g);
    println!("bipartite graph: {side}×{side}, m = {m}, exact 4-cycles = {truth}");

    let budget =
        ((8.0 * m as f64 / (truth.max(1) as f64).powf(3.0 / 8.0)).ceil() as usize).clamp(64, m);
    println!(
        "budget: m' = {budget} (paper bound m/T^(3/8) = {:.0})",
        m as f64 / (truth.max(1) as f64).powf(3.0 / 8.0)
    );

    for estimator in [
        FourCycleEstimator::DistinctCycles,
        FourCycleEstimator::WedgeMultiplicity,
    ] {
        let report = median_of_runs(9, 0, 4, |seed| {
            let cfg = TwoPassFourCycleConfig {
                seed,
                edge_sample_size: budget,
                estimator,
                max_wedges: None,
            };
            // Different order per pass — allowed for this algorithm.
            let orders = PassOrders::PerPass(vec![
                StreamOrder::shuffled(n, seed),
                StreamOrder::shuffled(n, seed ^ 0xFF),
            ]);
            let (est, _) = Runner::run(&g, TwoPassFourCycle::new(cfg), &orders);
            est.estimate
        });
        println!(
            "{estimator:?}: estimate ≈ {:.0} (ratio {:.2}× the truth)",
            report.median,
            report.median / truth as f64
        );
    }
}

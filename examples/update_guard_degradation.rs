//! Guarded-update degradation, live: inject the seeded dynamic fault
//! matrix into a churned insert/delete stream and watch the guard
//! policies react — `Strict` aborts at the first violation with its
//! typed position, `Repair` drops the invalid events and clamps
//! regressed timestamps, and the full-capacity TRIÈST-FD estimate
//! degrades gracefully with the fault rate instead of panicking or
//! silently drifting.
//!
//! ```sh
//! cargo run --release --example update_guard_degradation
//! ```

use adjstream::algo::dynamic::ExactDynamicTriangles;
use adjstream::algo::triangle::TriestFd;
use adjstream::graph::gen;
use adjstream::stream::update::{churn, ChurnConfig, UpdateAlgorithm};
use adjstream::stream::{
    run_guarded_updates, GuardPolicy, GuardedUpdate, UpdateFaultKind, UpdateFaultPlan,
};

fn main() {
    // 40 disjoint K12 put every edge in exactly 10 triangles, so the cost
    // of each lost or phantom edge is known; the churn tail keeps the
    // final graph a strict subset with real deletion history.
    let g = gen::disjoint_cliques(12, 40);
    let stream = churn(
        &g,
        &ChurnConfig {
            churn_events: 2000,
            delete_fraction: 0.4,
            seed: 11,
        },
    );
    let events = stream.len();
    let mut exact = ExactDynamicTriangles::new();
    for ev in stream.events() {
        exact.apply(ev);
    }
    let truth = exact.estimate();
    println!("stream: {events} events, final T = {truth}\n");

    // Strict: the first injected violation aborts with a typed position.
    let c = UpdateFaultPlan::new(1)
        .with(UpdateFaultKind::OrphanDelete, 1)
        .apply(&stream);
    let mut guard = GuardedUpdate::new(TriestFd::new(7, events.max(3)), GuardPolicy::Strict);
    let err = run_guarded_updates(c.events(), 200, &mut guard).expect_err("strict must reject");
    println!("strict under 1 orphan delete: {err}\n");

    // Repair: sweep the fault rate with an even mix of all seven kinds
    // and watch the full-capacity estimate degrade gracefully while the
    // guard accounts for every injected violation.
    println!(
        "{:>6}  {:>10}  {:>8}  {:>8}  {:>10}  {:>9}",
        "faults", "fault rate", "detected", "dropped", "estimate", "rel error"
    );
    for per_kind in [0usize, 1, 2, 4, 7] {
        let mut plan = UpdateFaultPlan::new(41);
        for kind in UpdateFaultKind::ALL {
            plan = plan.with(kind, per_kind);
        }
        let c = plan.apply(&stream);
        let mut guard = GuardedUpdate::new(TriestFd::new(7, events.max(3)), GuardPolicy::Repair);
        run_guarded_updates(c.events(), 200, &mut guard).expect("repair must survive");
        let stats = guard.stats();
        assert_eq!(stats.detections, c.expected_detections());
        let est = guard.estimate();
        println!(
            "{:>6}  {:>9.2}%  {:>8}  {:>8}  {:>10.0}  {:>8.2}%",
            c.injected().len(),
            100.0 * c.injected().len() as f64 / events as f64,
            stats.detections,
            stats.dropped,
            est,
            100.0 * (est - truth).abs() / truth.max(1.0),
        );
    }
    println!("\nevery injected violation detected; estimate drift stays linear in the fault rate");
}

//! A tour of all five Figure-1 lower-bound gadgets: build a yes- and a
//! no-instance of each, certify the 0-vs-T cycle gap with the exact
//! counters, and print the graph shapes.
//!
//! ```sh
//! cargo run --release --example gadget_zoo
//! ```

use adjstream::graph::exact;
use adjstream::lowerbound::gadgets::{
    disj3_triangle_gadget, disj_four_cycle_gadget, disj_long_cycle_gadget, index_four_cycle_gadget,
    pj3_triangle_gadget, random_disj_instance_for_plane, random_index_instance_for_plane,
};
use adjstream::lowerbound::problems::{Disj3Instance, DisjInstance, Pj3Instance};
use adjstream::lowerbound::Gadget;

fn show(name: &str, problem: &str, theorem: &str, yes: &Gadget, no: &Gadget) {
    let count = |g: &Gadget| match g.cycle_len {
        3 => exact::count_triangles(&g.graph),
        4 => exact::count_four_cycles(&g.graph),
        l => exact::count_cycles(&g.graph, l),
    };
    let (cy, cn) = (count(yes), count(no));
    println!(
        "{name} ({theorem}, from {problem})\n  n = {}, m = {}, {} players, {}-cycles: yes-instance {} / no-instance {}\n",
        yes.graph.vertex_count(),
        yes.graph.edge_count(),
        yes.players.len(),
        yes.cycle_len,
        cy,
        cn
    );
    assert_eq!(cy, yes.promised_cycles);
    assert_eq!(cn, 0);
}

fn main() {
    println!("Figure 1: the five lower-bound constructions\n");
    show(
        "Figure 1a — triangles",
        "3-PJ (NOF pointer jumping)",
        "Theorem 5.1",
        &pj3_triangle_gadget(&Pj3Instance::random_with_answer(32, true, 1), 6),
        &pj3_triangle_gadget(&Pj3Instance::random_with_answer(32, false, 1), 6),
    );
    show(
        "Figure 1b — triangles",
        "3-DISJ (NOF disjointness)",
        "Theorem 5.2",
        &disj3_triangle_gadget(&Disj3Instance::random_promise(32, 0.3, true, 2), 4),
        &disj3_triangle_gadget(&Disj3Instance::random_promise(32, 0.3, false, 2), 4),
    );
    show(
        "Figure 1c — 4-cycles",
        "INDEX over PG(2,5)",
        "Theorem 5.3",
        &index_four_cycle_gadget(&random_index_instance_for_plane(5, true, 3), 5, 8),
        &index_four_cycle_gadget(&random_index_instance_for_plane(5, false, 3), 5, 8),
    );
    show(
        "Figure 1d — 4-cycles",
        "DISJ over nested planes",
        "Theorem 5.4",
        &disj_four_cycle_gadget(&random_disj_instance_for_plane(3, 0.3, true, 4), 3, 2),
        &disj_four_cycle_gadget(&random_disj_instance_for_plane(3, 0.3, false, 4), 3, 2),
    );
    for ell in [5usize, 6, 7] {
        show(
            &format!("Figure 1e — {ell}-cycles"),
            "DISJ",
            "Theorem 5.5",
            &disj_long_cycle_gadget(&DisjInstance::random_promise(150, 0.3, true, 5), ell, 24),
            &disj_long_cycle_gadget(&DisjInstance::random_promise(150, 0.3, false, 5), ell, 24),
        );
    }
    println!("All gaps certified: each gadget has exactly its promised cycle count.");
}

//! Social-network analysis from a stream: estimate the triangle count,
//! transitivity, and clustering behaviour of a power-law graph — the
//! motivating application of the paper's introduction (community detection,
//! spam detection, thematic web analysis all reduce to triangle/transitivity
//! estimation).
//!
//! The global transitivity is `3T / P₂`; the wedge count `P₂` is exactly
//! countable in one pass, and `T` comes from the two-pass algorithm, so two
//! passes suffice for the whole pipeline in `Õ(m/T^{2/3})` space.
//!
//! ```sh
//! cargo run --release --example social_network
//! ```

use adjstream::algo::amplify::median_of_runs;
use adjstream::algo::common::EdgeSampling;
use adjstream::algo::triangle::{TwoPassTriangle, TwoPassTriangleConfig};
use adjstream::graph::analysis::DegreeStats;
use adjstream::graph::{exact, gen};
use adjstream::stream::{PassOrders, Runner, StreamOrder};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // Synthetic social network: Chung–Lu power law, exponent 2.3 (typical
    // for follower graphs), average degree 12.
    let n = 20_000;
    let mut rng = StdRng::seed_from_u64(77);
    let g = gen::chung_lu(n, 2.3, 12.0, &mut rng);
    let m = g.edge_count();
    let stats = DegreeStats::compute(&g);
    println!(
        "network: n = {n}, m = {m}, max degree {} (mean {:.1}) — heavy tail",
        stats.max, stats.mean
    );

    let truth = exact::count_triangles(&g);
    let wedges = g.wedge_count();
    let true_transitivity = 3.0 * truth as f64 / wedges as f64;
    println!("ground truth: T = {truth}, P2 = {wedges}, transitivity = {true_transitivity:.4}");

    // Streamed estimation at the paper budget.
    let budget =
        ((8.0 * m as f64 / (truth.max(1) as f64).powf(2.0 / 3.0)).ceil() as usize).clamp(64, m);
    let order = StreamOrder::shuffled(n, 3);
    let report = median_of_runs(9, 100, 4, |seed| {
        let cfg = TwoPassTriangleConfig {
            seed,
            edge_sampling: EdgeSampling::BottomK { k: budget },
            pair_capacity: budget,
        };
        let (est, _) = Runner::run(
            &g,
            TwoPassTriangle::new(cfg),
            &PassOrders::Same(order.clone()),
        );
        est.estimate
    });
    let est_transitivity = 3.0 * report.median / wedges as f64;
    println!(
        "streamed (budget {budget} of {m} edges): T ≈ {:.0}, transitivity ≈ {:.4}",
        report.median, est_transitivity
    );
    println!(
        "relative error: {:.1}% using {:.2}% of the edges",
        100.0 * (report.median - truth as f64).abs() / truth as f64,
        100.0 * budget as f64 / m as f64
    );
}

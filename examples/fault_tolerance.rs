//! Corruption tolerance, live: inject seeded faults into a two-pass triangle
//! run and watch the guard policies react — `Strict` aborts with a typed
//! error, `Repair` quarantines the damaged edges and keeps counting, and the
//! estimate degrades gracefully with the fault rate instead of panicking or
//! silently mis-counting.
//!
//! ```sh
//! cargo run --release --example fault_tolerance
//! ```

use adjstream::algo::common::EdgeSampling;
use adjstream::algo::triangle::{TwoPassTriangle, TwoPassTriangleConfig};
use adjstream::graph::{exact, gen};
use adjstream::stream::{AdjListStream, FaultKind, FaultPlan, GuardPolicy, Guarded, StreamOrder};

fn main() {
    // 40 disjoint K12: every edge sits in exactly 10 triangles, so the cost
    // of each quarantined edge is known and the degradation curve is clean.
    let g = gen::disjoint_cliques(12, 40);
    let m = g.edge_count();
    let truth = exact::count_triangles(&g) as f64;
    let items = AdjListStream::new(&g, StreamOrder::shuffled(g.vertex_count(), 3)).collect_items();
    println!("graph: m = {m}, T = {truth}\n");

    let cfg = TwoPassTriangleConfig {
        seed: 7,
        edge_sampling: EdgeSampling::Threshold { p: 1.0 },
        pair_capacity: usize::MAX,
    };

    // Strict: the first injected violation aborts the run with a typed error.
    let c = FaultPlan::new(1)
        .with(FaultKind::InjectSelfLoop, 1)
        .apply(&items);
    let err = c
        .try_run(Guarded::new(TwoPassTriangle::new(cfg), GuardPolicy::Strict))
        .expect_err("strict must reject");
    println!("strict under 1 self-loop: {err}\n");

    // Repair: sweep the edge-drop rate and watch the estimate degrade
    // gracefully while the report accounts for every injected fault.
    println!(
        "{:>6}  {:>10}  {:>8}  {:>11}  {:>10}  {:>9}",
        "drops", "fault rate", "detected", "quarantined", "estimate", "rel error"
    );
    for drops in [0usize, 2, 4, 8, 16, 32] {
        let c = FaultPlan::new(41)
            .with(FaultKind::DropDirection, drops)
            .apply(&items);
        let guarded = Guarded::new(TwoPassTriangle::new(cfg), GuardPolicy::Repair);
        let (est, report) = c.try_run(guarded).expect("repair must survive edge drops");
        let stats = report.guard.expect("guarded run reports stats");
        println!(
            "{drops:>6}  {:>9.2}%  {:>8}  {:>11}  {:>10.0}  {:>8.2}%",
            100.0 * drops as f64 / m as f64,
            stats.faults_detected,
            stats.edges_quarantined,
            est.estimate,
            100.0 * (est.estimate - truth).abs() / truth,
        );
    }
}

//! File-based workflow: generate a workload, save it as a SNAP-style edge
//! list, reload it, and estimate its triangle count without any prior bound
//! on `T` (the guess-and-verify driver).
//!
//! ```sh
//! cargo run --release --example file_workflow
//! ```

use adjstream::algo::estimate::{estimate_triangles_auto, Accuracy, Engine};
use adjstream::graph::io::{load_edge_list, save_edge_list};
use adjstream::graph::{exact, gen};
use adjstream::stream::StreamOrder;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. Generate and save.
    let mut rng = StdRng::seed_from_u64(6);
    let g = gen::gnm(2_000, 12_000, &mut rng).disjoint_union(&gen::disjoint_cliques(7, 15));
    let path = std::env::temp_dir().join("adjstream-example-graph.txt");
    save_edge_list(&g, &path).expect("writable temp dir");
    println!("saved {} edges to {}", g.edge_count(), path.display());

    // 2. Reload (ids densify; real files have sparse ids, comments, loops).
    let loaded = load_edge_list(&path).expect("file just written");
    println!(
        "loaded: n = {}, m = {} ({} comment lines skipped)",
        loaded.graph.vertex_count(),
        loaded.graph.edge_count(),
        loaded.lines_skipped
    );

    // 3. Estimate T with no prior bound: geometric guess-and-verify over
    //    the two-pass algorithm. The default batched engine folds every
    //    guess level into one shared two-pass execution.
    let order = StreamOrder::shuffled(loaded.graph.vertex_count(), 11);
    let est = estimate_triangles_auto(
        &loaded.graph,
        &order,
        Accuracy {
            epsilon: 0.25,
            delta: 0.1,
            seed: 99,
            threads: 4,
            engine: Engine::Batched,
            ..Accuracy::default()
        },
    );
    let truth = exact::count_triangles(&loaded.graph);
    println!(
        "estimate {:.0} vs exact {truth} (budget {} edges, {} repetitions, {} stream passes)",
        est.count, est.budget, est.repetitions, est.stream_passes
    );
    std::fs::remove_file(&path).ok();
}

//! # Paper-to-code map
//!
//! Where every part of *The Complexity of Counting Cycles in the Adjacency
//! List Streaming Model* (Kallaugher, McGregor, Price, Vorotnikova;
//! PODS 2019) lives in this repository.
//!
//! ## Section 1.2 — the model
//!
//! | Paper | Code |
//! |---|---|
//! | stream of ordered pairs `xy`, each edge twice | [`crate::stream::StreamItem`], [`crate::stream::AdjListStream`] |
//! | adjacency-list promise | [`crate::stream::validate_stream`] (rejects violations) |
//! | adversarial list / within-list order | [`crate::stream::StreamOrder`], [`crate::stream::adversarial`] |
//! | multi-pass, same order for P2 | [`crate::stream::Runner`], [`crate::stream::runner::MultiPassAlgorithm::requires_same_order`] |
//! | space complexity | [`crate::stream::SpaceUsage`], peak tracked by the runner |
//!
//! ## Section 2.1 / 3 — two-pass triangle counting (Theorem 3.7)
//!
//! | Paper | Code |
//! |---|---|
//! | sample size-`m′` edge set `S` (hash-based) | [`crate::algo::common::EdgeSampling`]: bottom-k (fixed size) or threshold |
//! | collect pairs `Q` across P1 and P2 | discovery logic in [`crate::algo::triangle::TwoPassTriangle`] |
//! | subsample `Q` to size `m′` | reservoir ([`crate::stream::sampling::Reservoir`]) |
//! | `H_{e,τ}` suffix counts | per-slot monitors with activation at `τ^{-f}`'s pass-2 list |
//! | `ρ(τ) = argmin H` lightest-edge rule | `PairRecord::rho_slot` (ties by edge key, a function of `τ` only) |
//! | estimator `k·(T′/m′)·\|{ρ(τ)=e}\|` | [`crate::algo::triangle::TriangleEstimate`] |
//! | naive no-rule estimator (the §2.1 strawman) | `TriangleEstimate::naive_estimate` (ablation A1) |
//! | three-pass exact-`T_e` variant (§2.1) | [`crate::algo::triangle::ThreePassTriangle`] |
//! | `Θ(log 1/δ)` median amplification | [`crate::algo::amplify::median_of_runs`], [`crate::algo::estimate`] |
//! | Lemma 3.2 heaviness diagnostics | [`crate::graph::exact::TriangleStats`] |
//!
//! ## Section 4 — two-pass 4-cycle counting (Theorem 4.6)
//!
//! | Paper | Code |
//! |---|---|
//! | edge sample `S`, wedge set `Q` | [`crate::algo::fourcycle::TwoPassFourCycle`] |
//! | count cycles containing a wedge of `Q` | leaf-pair flagging via [`crate::algo::common::PairWatcher`] |
//! | `k²(f_G+f_B)` distinct-cycle estimate | [`crate::algo::fourcycle::FourCycleEstimator::DistinctCycles`] |
//! | Definition 4.1 heavy/overused/good | [`crate::graph::exact::FourCycleStats`] (Lemma 4.2 checked in tests) |
//!
//! ## Section 5 — lower bounds
//!
//! | Paper | Code |
//! |---|---|
//! | INDEX, DISJ, 3-PJ, 3-DISJ | [`crate::lowerbound::problems`] |
//! | reduction protocol structure (§5.1) | [`crate::lowerbound::protocol::run_protocol`] |
//! | girth-6 field planes (§5.2) | [`crate::graph::gen::ProjectivePlane`] |
//! | Figure 1a (Thm 5.1) | [`crate::lowerbound::gadgets::pj3_triangle_gadget`] |
//! | Figure 1b (Thm 5.2) | [`crate::lowerbound::gadgets::disj3_triangle_gadget`] |
//! | Figure 1c (Thm 5.3) | [`crate::lowerbound::gadgets::index_four_cycle_gadget`] |
//! | Figure 1d (Thm 5.4) | [`crate::lowerbound::gadgets::disj_four_cycle_gadget`] |
//! | Figure 1e (Thm 5.5) | [`crate::lowerbound::gadgets::disj_long_cycle_gadget`] |
//!
//! ## Section 1.1 — prior work implemented as baselines
//!
//! | Paper reference | Code |
//! |---|---|
//! | \[27\] one-pass `Õ(m/√T)` | [`crate::algo::triangle::OnePassTriangle`] |
//! | \[27\] two-pass 0-vs-`T` distinguisher | [`crate::algo::triangle::TriangleDistinguisher`] |
//! | \[12\] `Õ(P₂/T)` wedge sampling | [`crate::algo::triangle::WedgeSamplerTriangle`] |
//! | \[17\] random-order sampling | [`crate::algo::triangle::RandomOrderTriangle`] |
//! | arbitrary-order model (context) | [`crate::stream::arbitrary`], [`crate::algo::triangle::TriestBase`] |
//! | trivial `O(m)` storage | [`crate::algo::exact_stream::ExactStreamCounter`] |
//!
//! ## Table 1 and Figure 1 — reproduction targets
//!
//! One binary per artifact; see DESIGN.md §4 for the full index and
//! EXPERIMENTS.md for paper-vs-measured results.

//! `adjstreamd` — the resident estimation daemon.
//!
//! Clients register traces — static `.adjb` item traces and dynamic
//! `.adjbu` update traces, each recorded with its kind and checksum —
//! and submit estimate/validate/update jobs over a Unix socket speaking
//! line-delimited JSON (see [`adjstream::service::protocol`]). The
//! daemon enforces bounded intake with typed backpressure (including
//! `kind_mismatch` and `trace_changed` rejections at admission),
//! schedules jobs onto a fixed worker pool with checkpoint-based
//! preemption, and survives both graceful SIGTERM (drain: checkpoint
//! every in-flight job, exit cleanly) and `kill -9` (on restart, the
//! state-directory scan resumes every interrupted job bit-for-bit).
//! Update jobs drive TRIÈST-FD in batches behind the update guard; every
//! batch boundary is a checkpoint, so a resumed update job's remaining
//! per-batch estimates are bit-identical to an uninterrupted run's.
//!
//! ```text
//! adjstreamd --state-dir DIR [--socket PATH] [--workers N]
//!            [--queue-depth N] [--max-jobs N] [--memory-budget BYTES]
//!            [--checkpoint-retention-secs S]
//! ```

use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use adjstream::service::job::stale_checkpoint_candidate;
use adjstream::service::{Server, ServiceConfig};
use adjstream::stream::checkpoint::gc_stale_checkpoints;

/// Set by the SIGTERM/SIGINT handler; the main loop polls it.
static TERMINATE: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    // Only async-signal-safe work here: one atomic store.
    TERMINATE.store(true, Ordering::SeqCst);
}

/// Install `on_signal` for SIGTERM (15) and SIGINT (2) via the raw libc
/// `signal(2)` symbol — the offline build has no `libc` crate, and the
/// simple old-school API is all a drain flag needs.
fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_signal as extern "C" fn(i32) as usize);
        signal(SIGINT, on_signal as extern "C" fn(i32) as usize);
    }
}

const USAGE: &str = "usage:
  adjstreamd --state-dir DIR [--socket PATH] [--workers N] [--queue-depth N]
             [--max-jobs N] [--memory-budget BYTES] [--checkpoint-retention-secs S]

The daemon listens on the Unix socket (default: DIR/adjstreamd.sock) for
line-delimited JSON requests: register, submit, status, cancel, metrics,
traces, ping, shutdown. Registered traces may be static .adjb item
traces or dynamic .adjbu update traces; update jobs (kind \"update\")
run batched TRIEST-FD behind the update guard. SIGTERM drains: every
in-flight job is checkpointed at its pass (or batch) boundary and
resumes bit-for-bit on restart.";

fn parse_args(args: &[String]) -> Result<(ServiceConfig, Option<u64>), String> {
    let mut flags: HashMap<String, String> = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("unexpected argument {:?}", args[i]))?;
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("flag --{key} needs a value"))?;
        flags.insert(key.to_string(), value.clone());
        i += 2;
    }
    let state_dir = flags
        .get("state-dir")
        .ok_or("missing required --state-dir")?;
    let mut cfg = ServiceConfig::at(&PathBuf::from(state_dir));
    if let Some(s) = flags.get("socket") {
        cfg.socket = PathBuf::from(s);
    }
    let parse = |key: &str, default: usize| -> Result<usize, String> {
        match flags.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("invalid --{key} {v:?}")),
        }
    };
    cfg.workers = parse("workers", cfg.workers)?.max(1);
    cfg.queue_depth = parse("queue-depth", cfg.queue_depth)?.max(1);
    cfg.max_jobs = parse("max-jobs", cfg.max_jobs)?.max(1);
    cfg.memory_budget = match flags.get("memory-budget") {
        None => None,
        Some(v) => Some(
            v.parse()
                .map_err(|_| format!("invalid --memory-budget {v:?}"))?,
        ),
    };
    let retention = match flags.get("checkpoint-retention-secs") {
        None => None,
        Some(v) => Some(
            v.parse()
                .map_err(|_| format!("invalid --checkpoint-retention-secs {v:?}"))?,
        ),
    };
    Ok((cfg, retention))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let (cfg, retention) = match parse_args(&args) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    install_signal_handlers();

    if let Err(e) = std::fs::create_dir_all(&cfg.state_dir) {
        eprintln!("error: cannot create state dir: {e}");
        return ExitCode::from(8);
    }
    // Stale-checkpoint GC: `.ckpt` files that no job will ever resume —
    // orphans and checkpoints of terminal (done/failed/degraded) jobs —
    // older than the retention window are deleted before recovery runs.
    // A checkpoint is live while a *non-terminal* manifest exists for the
    // same job stem; `stale_checkpoint_candidate` parses the manifest
    // state to decide, keeping anything it cannot parse.
    if let Some(secs) = retention {
        let removed = gc_stale_checkpoints(
            &cfg.state_dir,
            Duration::from_secs(secs),
            stale_checkpoint_candidate,
        );
        if removed > 0 {
            eprintln!("gc: removed {removed} stale checkpoint file(s)");
        }
    }

    let socket = cfg.socket.clone();
    let handle = match Server::start(cfg) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("error: failed to start: {e}");
            return ExitCode::from(8);
        }
    };
    // Machine-readable readiness line; tests and the CI smoke job wait on it.
    println!("{{\"ready\":true,\"socket\":\"{}\"}}", socket.display());

    loop {
        if TERMINATE.load(Ordering::SeqCst) || handle.shutdown_requested() {
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    let counters = handle.shutdown();
    println!(
        "{{\"drained\":true,\"completed\":{},\"suspended\":{}}}",
        counters.completed, counters.suspended
    );
    ExitCode::SUCCESS
}

//! `adjstream-cli` — command-line access to the library: generate
//! workloads, inspect graphs, count cycles exactly, estimate them in the
//! streaming model, dump and validate adjacency-list streams, and emit
//! lower-bound gadgets.
//!
//! ```text
//! adjstream-cli gen gnm --n 1000 --m 5000 --seed 1 -o g.txt
//! adjstream-cli info g.txt
//! adjstream-cli count g.txt --kind triangles
//! adjstream-cli estimate g.txt --kind triangles --epsilon 0.2 --delta 0.1
//! adjstream-cli stream g.txt --seed 3 -o items.txt
//! adjstream-cli validate-stream items.txt --mode online
//! adjstream-cli corrupt items.txt --seed 7 --faults drop-direction:2,self-loop -o bad.txt
//! adjstream-cli estimate-stream bad.txt --policy repair
//! adjstream-cli gadget fig-e --ell 6 --r 100 --t 16 --answer yes -o gadget.txt
//! ```

use std::collections::HashMap;
use std::io::Write;
use std::process::ExitCode;

use adjstream::algo::estimate::{
    estimate_four_cycles, estimate_triangles, estimate_triangles_auto, Accuracy, Engine,
};
use adjstream::graph::analysis::{connected_components, degeneracy, DegreeStats};
use adjstream::graph::io::{load_edge_list, save_edge_list};
use adjstream::graph::{exact, gen, Graph};
use adjstream::lowerbound::gadgets as gd;
use adjstream::lowerbound::problems::{Disj3Instance, DisjInstance, Pj3Instance};
use adjstream::stream::{validate_stream, AdjListStream, StreamItem, StreamOrder};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> ExitCode {
    // Exit quietly when stdout is closed early (`adjstream-cli ... | head`):
    // Rust panics on EPIPE by default, which would print a backtrace for a
    // completely normal shell pattern.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info.payload().downcast_ref::<String>().cloned();
        if msg.as_deref().is_some_and(|m| m.contains("Broken pipe")) {
            std::process::exit(0);
        }
        default_hook(info);
    }));
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  adjstream-cli gen <gnm|gnp|ba|chung-lu|cliques|bipartite|plane|planted-triangles|planted-c4> [--key value ...] -o FILE
  adjstream-cli info FILE
  adjstream-cli count FILE --kind <triangles|c4|cycles> [--len L]
  adjstream-cli estimate FILE --kind <triangles|c4> [--epsilon E] [--delta D] [--t-lower T] [--seed S] [--engine batched|sequential]
  adjstream-cli stream FILE [--seed S] [-o FILE]
  adjstream-cli validate-stream FILE [--mode offline|online|bounded] [--seed S] [--window W]
  adjstream-cli corrupt FILE --faults KIND[:N][,KIND[:N]...] [--seed S] [-o FILE] [--replay-o FILE]
  adjstream-cli estimate-stream FILE [--budget K] [--seed S] [--policy strict|repair|observe]
  adjstream-cli gadget <fig-a|fig-b|fig-c|fig-d|fig-e> [--key value ...] [--answer yes|no] [-o FILE]

fault kinds: drop-direction duplicate-item split-list self-loop corrupt-vertex truncate-tail reorder-pass";

/// Parse `--key value` flags (plus `-o`), returning the map.
fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .or_else(|| (args[i] == "-o").then_some("o"))
            .ok_or_else(|| format!("unexpected argument {:?}", args[i]))?;
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("flag --{key} needs a value"))?;
        flags.insert(key.to_string(), value.clone());
        i += 2;
    }
    Ok(flags)
}

fn get<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("invalid --{key} {v:?}")),
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let (cmd, rest) = args.split_first().ok_or("missing command")?;
    match cmd.as_str() {
        "gen" => cmd_gen(rest),
        "info" => cmd_info(rest),
        "count" => cmd_count(rest),
        "estimate" => cmd_estimate(rest),
        "stream" => cmd_stream(rest),
        "validate-stream" => cmd_validate_stream(rest),
        "corrupt" => cmd_corrupt(rest),
        "estimate-stream" => cmd_estimate_stream(rest),
        "gadget" => cmd_gadget(rest),
        other => Err(format!("unknown command {other:?}")),
    }
}

fn load(flags_file: Option<&String>) -> Result<Graph, String> {
    let path = flags_file.ok_or("missing input file")?;
    let loaded = load_edge_list(path).map_err(|e| e.to_string())?;
    if loaded.self_loops_dropped > 0 {
        eprintln!("note: dropped {} self-loops", loaded.self_loops_dropped);
    }
    Ok(loaded.graph)
}

fn cmd_gen(args: &[String]) -> Result<(), String> {
    let (family, rest) = args.split_first().ok_or("gen: missing family")?;
    let flags = parse_flags(rest)?;
    let seed: u64 = get(&flags, "seed", 1)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let g = match family.as_str() {
        "gnm" => gen::gnm(get(&flags, "n", 1000)?, get(&flags, "m", 5000)?, &mut rng),
        "gnp" => gen::gnp(get(&flags, "n", 1000)?, get(&flags, "p", 0.01)?, &mut rng),
        "ba" => gen::barabasi_albert(get(&flags, "n", 1000)?, get(&flags, "k", 3)?, &mut rng),
        "chung-lu" => gen::chung_lu(
            get(&flags, "n", 1000)?,
            get(&flags, "gamma", 2.5)?,
            get(&flags, "avg-degree", 8.0)?,
            &mut rng,
        ),
        "cliques" => gen::disjoint_cliques(get(&flags, "s", 5)?, get(&flags, "k", 10)?),
        "bipartite" => gen::bipartite_gnm(
            get(&flags, "a", 100)?,
            get(&flags, "b", 100)?,
            get(&flags, "m", 1000)?,
            &mut rng,
        ),
        "plane" => gen::projective_plane_incidence(get(&flags, "q", 5)?),
        "planted-triangles" => gen::planted_triangles_on_bipartite(
            get(&flags, "side", 100)?,
            get(&flags, "side", 100)?,
            get(&flags, "m-bg", 2000)?,
            get(&flags, "t", 64)?,
            &mut rng,
        ),
        "planted-c4" => gen::disjoint_triangles(get(&flags, "bg", 500)?)
            .disjoint_union(&gen::disjoint_four_cycles(get(&flags, "t", 64)?)),
        other => return Err(format!("unknown family {other:?}")),
    };
    emit(&g, flags.get("o"))?;
    eprintln!(
        "generated {family}: n = {}, m = {}",
        g.vertex_count(),
        g.edge_count()
    );
    Ok(())
}

fn emit(g: &Graph, out: Option<&String>) -> Result<(), String> {
    match out {
        Some(path) => save_edge_list(g, path).map_err(|e| e.to_string()),
        None => {
            let stdout = std::io::stdout();
            adjstream::graph::io::write_edge_list(g, stdout.lock()).map_err(|e| e.to_string())
        }
    }
}

fn cmd_info(args: &[String]) -> Result<(), String> {
    let g = load(args.first())?;
    let stats = DegreeStats::compute(&g);
    let (_, components) = connected_components(&g);
    let (degen, _) = degeneracy(&g);
    println!("vertices      {}", g.vertex_count());
    println!("edges         {}", g.edge_count());
    println!("wedges (P2)   {}", g.wedge_count());
    println!(
        "degree        min {} / median {} / mean {:.2} / max {}",
        stats.min, stats.median, stats.mean, stats.max
    );
    println!("isolated      {}", stats.isolated);
    println!("components    {components}");
    println!("degeneracy    {degen}");
    Ok(())
}

fn cmd_count(args: &[String]) -> Result<(), String> {
    let g = load(args.first())?;
    let flags = parse_flags(&args[1..])?;
    let kind = flags.get("kind").map(String::as_str).unwrap_or("triangles");
    let count = match kind {
        "triangles" => exact::count_triangles(&g),
        "c4" => exact::count_four_cycles(&g),
        "cycles" => exact::count_cycles(&g, get(&flags, "len", 5usize)?),
        other => return Err(format!("unknown kind {other:?}")),
    };
    println!("{count}");
    Ok(())
}

fn cmd_estimate(args: &[String]) -> Result<(), String> {
    let g = load(args.first())?;
    let flags = parse_flags(&args[1..])?;
    let engine = match flags.get("engine") {
        Some(s) => Engine::parse(s).ok_or_else(|| format!("unknown engine {s:?}"))?,
        None => Engine::Batched,
    };
    let acc = Accuracy {
        epsilon: get(&flags, "epsilon", 0.25)?,
        delta: get(&flags, "delta", 0.1)?,
        seed: get(&flags, "seed", 2019)?,
        threads: get(&flags, "threads", 4)?,
        engine,
    };
    let order = StreamOrder::shuffled(g.vertex_count(), acc.seed);
    let kind = flags.get("kind").map(String::as_str).unwrap_or("triangles");
    match kind {
        "triangles" => {
            let est = match flags.get("t-lower") {
                Some(t) => {
                    estimate_triangles(&g, &order, t.parse().map_err(|_| "invalid --t-lower")?, acc)
                }
                None => estimate_triangles_auto(&g, &order, acc),
            };
            println!("estimate      {:.1}", est.count);
            println!("edge budget   {} of {}", est.budget, g.edge_count());
            println!("repetitions   {}", est.repetitions);
            println!("run std-dev   {:.1}", est.report.variance.sqrt());
            println!("stream passes {} ({})", est.stream_passes, acc.engine);
        }
        "c4" => {
            let t_lower = get(&flags, "t-lower", 1u64)?;
            let o2 = StreamOrder::shuffled(g.vertex_count(), acc.seed ^ 0xC4);
            let est = estimate_four_cycles(&g, [&order, &o2], t_lower, acc);
            println!("estimate      {:.1} (O(1)-factor approximation)", est.count);
            println!("edge budget   {} of {}", est.budget, g.edge_count());
            println!("repetitions   {}", est.repetitions);
            println!("stream passes {} ({})", est.stream_passes, acc.engine);
        }
        other => return Err(format!("unknown kind {other:?}")),
    }
    Ok(())
}

fn cmd_stream(args: &[String]) -> Result<(), String> {
    let g = load(args.first())?;
    let flags = parse_flags(&args[1..])?;
    let seed: u64 = get(&flags, "seed", 1)?;
    let s = AdjListStream::new(&g, StreamOrder::shuffled(g.vertex_count(), seed));
    let write = |w: &mut dyn Write| -> std::io::Result<()> {
        let mut w = std::io::BufWriter::new(w);
        for item in s.items() {
            writeln!(w, "{} {}", item.src, item.dst)?;
        }
        w.flush()
    };
    match flags.get("o") {
        Some(path) => {
            let mut f = std::fs::File::create(path).map_err(|e| e.to_string())?;
            write(&mut f).map_err(|e| e.to_string())?;
        }
        None => {
            let stdout = std::io::stdout();
            write(&mut stdout.lock()).map_err(|e| e.to_string())?;
        }
    }
    eprintln!("wrote {} items", s.len());
    Ok(())
}

fn cmd_validate_stream(args: &[String]) -> Result<(), String> {
    use adjstream::stream::trace::ItemTrace;
    use adjstream::stream::{validate_online, OnlineValidator, SpaceUsage};
    let path = args.first().ok_or("missing stream file")?;
    let flags = parse_flags(&args[1..])?;
    let file = std::fs::File::open(path).map_err(|e| e.to_string())?;
    let trace = ItemTrace::read_unchecked(file).map_err(|e| e.to_string())?;
    let mode = flags.get("mode").map(String::as_str).unwrap_or("offline");
    let result = match mode {
        "offline" => validate_stream(trace.items().iter().copied()),
        "online" => {
            let mut v = OnlineValidator::exact();
            validate_online(&mut v, trace.items().iter().copied())
        }
        "bounded" => {
            let seed: u64 = get(&flags, "seed", 2019)?;
            let window: usize = get(&flags, "window", 64)?;
            let mut v = OnlineValidator::bounded(seed, window);
            let r = validate_online(&mut v, trace.items().iter().copied());
            eprintln!("validator state: {} bytes", v.space_bytes());
            r
        }
        other => {
            return Err(format!(
                "--mode must be offline|online|bounded, got {other:?}"
            ))
        }
    };
    match result {
        Ok(edges) => {
            println!("valid adjacency list stream: {edges} edges ({mode} check)");
            Ok(())
        }
        Err(e) => match e.position() {
            Some(p) => Err(format!("invalid stream at item {p}: {e}")),
            None => Err(format!("invalid stream: {e}")),
        },
    }
}

/// Corrupt a valid stream with a seeded, replayable fault plan.
fn cmd_corrupt(args: &[String]) -> Result<(), String> {
    use adjstream::stream::trace::ItemTrace;
    use adjstream::stream::{FaultKind, FaultPlan};
    let path = args.first().ok_or("missing stream file")?;
    let flags = parse_flags(&args[1..])?;
    let seed: u64 = get(&flags, "seed", 1)?;
    let spec = flags
        .get("faults")
        .ok_or("corrupt: missing --faults (e.g. drop-direction:2,self-loop)")?;
    let mut plan = FaultPlan::new(seed);
    for part in spec.split(',') {
        let (name, count) = match part.split_once(':') {
            Some((n, c)) => (
                n,
                c.parse::<usize>()
                    .map_err(|_| format!("invalid fault count in {part:?}"))?,
            ),
            None => (part, 1),
        };
        let kind = FaultKind::parse(name).ok_or_else(|| format!("unknown fault kind {name:?}"))?;
        plan = plan.with(kind, count);
    }
    if plan.count(FaultKind::ReorderPass) > 0 && !flags.contains_key("replay-o") {
        return Err("corrupt: reorder-pass only affects replays; pass --replay-o FILE".into());
    }
    let file = std::fs::File::open(path).map_err(|e| e.to_string())?;
    let trace = ItemTrace::read(file).map_err(|e| format!("input must be valid: {e}"))?;
    let corrupted = plan.apply(trace.items());
    write_items(corrupted.items(), flags.get("o"))?;
    if let Some(replay_path) = flags.get("replay-o") {
        write_items(corrupted.items_for_pass(1), Some(replay_path))?;
    }
    for f in corrupted.injected() {
        eprintln!(
            "injected {} ({} expected detections): {}",
            f.kind, f.expected_detections, f.description
        );
    }
    for k in corrupted.skipped() {
        eprintln!("skipped {k}: stream cannot host it");
    }
    eprintln!(
        "seed {seed}: {} faults injected, {} skipped, {} detections expected",
        corrupted.injected().len(),
        corrupted.skipped().len(),
        corrupted.expected_detections()
    );
    Ok(())
}

fn write_items(items: &[StreamItem], out: Option<&String>) -> Result<(), String> {
    let write = |w: &mut dyn Write| -> std::io::Result<()> {
        let mut w = std::io::BufWriter::new(w);
        for item in items {
            writeln!(w, "{} {}", item.src, item.dst)?;
        }
        w.flush()
    };
    match out {
        Some(path) => {
            let mut f = std::fs::File::create(path).map_err(|e| e.to_string())?;
            write(&mut f).map_err(|e| e.to_string())
        }
        None => {
            let stdout = std::io::stdout();
            write(&mut stdout.lock()).map_err(|e| e.to_string())
        }
    }
}

/// Estimate triangles directly from an item trace file: the trace is
/// validated (or guarded with an explicit `--policy`), then the Theorem 3.7
/// algorithm replays it twice.
fn cmd_estimate_stream(args: &[String]) -> Result<(), String> {
    use adjstream::algo::common::EdgeSampling;
    use adjstream::algo::triangle::{TwoPassTriangle, TwoPassTriangleConfig};
    use adjstream::stream::trace::ItemTrace;
    use adjstream::stream::{GuardPolicy, Guarded};
    let path = args.first().ok_or("missing stream file")?;
    let flags = parse_flags(&args[1..])?;
    let policy = flags
        .get("policy")
        .map(|p| {
            GuardPolicy::parse(p)
                .ok_or(format!("--policy must be strict|repair|observe, got {p:?}"))
        })
        .transpose()?;
    let file = std::fs::File::open(path).map_err(|e| e.to_string())?;
    // With an explicit policy the guard handles malformed input; without
    // one the trace must certify up front.
    let trace = match policy {
        Some(_) => ItemTrace::read_unchecked(file).map_err(|e| e.to_string())?,
        None => ItemTrace::read(file).map_err(|e| e.to_string())?,
    };
    let m = trace.edges();
    let budget: usize = get(&flags, "budget", (m / 10).max(16))?;
    let seed: u64 = get(&flags, "seed", 2019)?;
    let cfg = TwoPassTriangleConfig {
        seed,
        edge_sampling: EdgeSampling::BottomK { k: budget },
        pair_capacity: budget,
    };
    let algo = TwoPassTriangle::new(cfg);
    let (est, report) = match policy {
        None => {
            println!("stream        {} items, {m} edges (validated)", trace.len());
            trace.run(algo)
        }
        Some(policy) => {
            println!(
                "stream        {} items (guard policy: {policy})",
                trace.len()
            );
            trace
                .try_run(Guarded::new(algo, policy))
                .map_err(|e| e.to_string())?
        }
    };
    println!("estimate      {:.1}", est.estimate);
    println!("edge budget   {budget}");
    println!("peak state    {} bytes", report.peak_state_bytes);
    if let Some(stats) = report.guard {
        println!(
            "guard         {} faults detected, {} items repaired, {} edges quarantined",
            stats.faults_detected, stats.items_repaired, stats.edges_quarantined
        );
        println!("guard state   {} bytes peak", stats.validator_peak_bytes);
    }
    Ok(())
}

fn cmd_gadget(args: &[String]) -> Result<(), String> {
    let (fig, rest) = args.split_first().ok_or("gadget: missing figure")?;
    let flags = parse_flags(rest)?;
    let seed: u64 = get(&flags, "seed", 1)?;
    let answer = match flags.get("answer").map(String::as_str).unwrap_or("yes") {
        "yes" => true,
        "no" => false,
        other => return Err(format!("--answer must be yes|no, got {other:?}")),
    };
    let gadget = match fig.as_str() {
        "fig-a" => gd::pj3_triangle_gadget(
            &Pj3Instance::random_with_answer(get(&flags, "r", 32)?, answer, seed),
            get(&flags, "k", 6)?,
        ),
        "fig-b" => gd::disj3_triangle_gadget(
            &Disj3Instance::random_promise(get(&flags, "r", 32)?, 0.3, answer, seed),
            get(&flags, "k", 4)?,
        ),
        "fig-c" => {
            let q = get(&flags, "q", 3)?;
            gd::index_four_cycle_gadget(
                &gd::random_index_instance_for_plane(q, answer, seed),
                q,
                get(&flags, "t", 6)?,
            )
        }
        "fig-d" => {
            let q1 = get(&flags, "q1", 3)?;
            gd::disj_four_cycle_gadget(
                &gd::random_disj_instance_for_plane(q1, 0.3, answer, seed),
                q1,
                get(&flags, "q2", 2)?,
            )
        }
        "fig-e" => gd::disj_long_cycle_gadget(
            &DisjInstance::random_promise(get(&flags, "r", 100)?, 0.3, answer, seed),
            get(&flags, "ell", 5)?,
            get(&flags, "t", 16)?,
        ),
        other => return Err(format!("unknown gadget {other:?}")),
    };
    emit(&gadget.graph, flags.get("o"))?;
    eprintln!(
        "{fig}: n = {}, m = {}, {}-cycles = {} (answer {})",
        gadget.graph.vertex_count(),
        gadget.graph.edge_count(),
        gadget.cycle_len,
        gadget.expected_cycles(),
        answer
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_flags_handles_pairs_and_output() {
        let flags = parse_flags(&args(&["--n", "100", "-o", "file.txt", "--seed", "7"])).unwrap();
        assert_eq!(flags.get("n").unwrap(), "100");
        assert_eq!(flags.get("o").unwrap(), "file.txt");
        assert_eq!(flags.get("seed").unwrap(), "7");
    }

    #[test]
    fn parse_flags_rejects_bare_values_and_dangling_flags() {
        assert!(parse_flags(&args(&["100"])).is_err());
        assert!(parse_flags(&args(&["--n"])).is_err());
    }

    #[test]
    fn get_parses_with_defaults() {
        let flags = parse_flags(&args(&["--n", "42"])).unwrap();
        assert_eq!(get(&flags, "n", 0usize).unwrap(), 42);
        assert_eq!(get(&flags, "missing", 9usize).unwrap(), 9);
        assert!(get(&flags, "n", 0.5f64).is_ok());
        let bad = parse_flags(&args(&["--n", "xyz"])).unwrap();
        assert!(get(&bad, "n", 0usize).is_err());
    }

    #[test]
    fn unknown_command_is_an_error() {
        assert!(run(&args(&["frobnicate"])).is_err());
        assert!(run(&args(&[])).is_err());
    }

    #[test]
    fn gen_count_estimate_roundtrip_via_files() {
        let dir = std::env::temp_dir();
        let gpath = dir.join(format!("adjstream-cli-test-{}.txt", std::process::id()));
        let gs = gpath.to_string_lossy().to_string();
        run(&args(&[
            "gen", "cliques", "--s", "5", "--k", "4", "-o", &gs,
        ]))
        .unwrap();
        run(&args(&["count", &gs, "--kind", "triangles"])).unwrap();
        run(&args(&["info", &gs])).unwrap();
        let spath = dir.join(format!("adjstream-cli-stream-{}.txt", std::process::id()));
        let ss = spath.to_string_lossy().to_string();
        run(&args(&["stream", &gs, "--seed", "3", "-o", &ss])).unwrap();
        run(&args(&["validate-stream", &ss])).unwrap();
        run(&args(&["estimate-stream", &ss, "--budget", "40"])).unwrap();
        std::fs::remove_file(&gpath).ok();
        std::fs::remove_file(&spath).ok();
    }

    #[test]
    fn corrupt_validate_and_guarded_estimate_pipeline() {
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let gs = dir
            .join(format!("adjstream-cli-rob-g-{pid}.txt"))
            .to_string_lossy()
            .to_string();
        let ss = dir
            .join(format!("adjstream-cli-rob-s-{pid}.txt"))
            .to_string_lossy()
            .to_string();
        let bad = dir
            .join(format!("adjstream-cli-rob-bad-{pid}.txt"))
            .to_string_lossy()
            .to_string();
        run(&args(&[
            "gen", "cliques", "--s", "5", "--k", "6", "-o", &gs,
        ]))
        .unwrap();
        run(&args(&["stream", &gs, "--seed", "3", "-o", &ss])).unwrap();
        // Clean stream validates in every mode.
        for mode in ["offline", "online", "bounded"] {
            run(&args(&["validate-stream", &ss, "--mode", mode])).unwrap();
        }
        run(&args(&[
            "corrupt",
            &ss,
            "--seed",
            "7",
            "--faults",
            "drop-direction:2,self-loop",
            "-o",
            &bad,
        ]))
        .unwrap();
        // The corrupted stream fails validation — non-zero exit via Err —
        // with the fault position in the message when one exists.
        for mode in ["offline", "online"] {
            let err = run(&args(&["validate-stream", &bad, "--mode", mode])).unwrap_err();
            assert!(err.contains("invalid stream"), "{err}");
        }
        // Unguarded estimation refuses the corrupted stream...
        assert!(run(&args(&["estimate-stream", &bad, "--budget", "40"])).is_err());
        // ...strict guarding reports the violation as a typed failure...
        let err = run(&args(&[
            "estimate-stream",
            &bad,
            "--budget",
            "40",
            "--policy",
            "strict",
        ]))
        .unwrap_err();
        assert!(err.contains("invalid stream in pass"), "{err}");
        // ...and repair/observe degrade gracefully.
        for policy in ["repair", "observe"] {
            run(&args(&[
                "estimate-stream",
                &bad,
                "--budget",
                "40",
                "--policy",
                policy,
            ]))
            .unwrap();
        }
        // Bad flag values are rejected.
        assert!(run(&args(&["validate-stream", &ss, "--mode", "bogus"])).is_err());
        assert!(run(&args(&["corrupt", &ss, "--faults", "nonsense"])).is_err());
        assert!(run(&args(&["corrupt", &ss, "--faults", "reorder-pass"])).is_err());
        for f in [&gs, &ss, &bad] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn self_loop_position_is_reported() {
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let p = dir
            .join(format!("adjstream-cli-rob-pos-{pid}.txt"))
            .to_string_lossy()
            .to_string();
        std::fs::write(&p, "0 1\n0 0\n1 0\n").unwrap();
        let err = run(&args(&["validate-stream", &p, "--mode", "online"])).unwrap_err();
        assert!(err.contains("at item 1"), "{err}");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn gadget_command_builds_each_figure() {
        for fig in ["fig-a", "fig-b", "fig-c", "fig-d", "fig-e"] {
            let out = std::env::temp_dir().join(format!(
                "adjstream-cli-gadget-{fig}-{}.txt",
                std::process::id()
            ));
            let os = out.to_string_lossy().to_string();
            run(&args(&["gadget", fig, "-o", &os])).unwrap();
            std::fs::remove_file(&out).ok();
        }
    }
}

//! `adjstream-cli` — command-line access to the library: generate
//! workloads, inspect graphs, count cycles exactly, estimate them in the
//! streaming model, dump and validate adjacency-list streams, and emit
//! lower-bound gadgets.
//!
//! ```text
//! adjstream-cli gen gnm --n 1000 --m 5000 --seed 1 -o g.txt
//! adjstream-cli info g.txt
//! adjstream-cli count g.txt --kind triangles
//! adjstream-cli estimate g.txt --kind triangles --epsilon 0.2 --delta 0.1
//! adjstream-cli stream g.txt --seed 3 -o items.txt
//! adjstream-cli validate-stream items.txt --mode online
//! adjstream-cli corrupt items.txt --seed 7 --faults drop-direction:2,self-loop -o bad.txt
//! adjstream-cli estimate-stream bad.txt --policy repair
//! adjstream-cli gadget fig-e --ell 6 --r 100 --t 16 --answer yes -o gadget.txt
//! ```

use std::collections::HashMap;
use std::io::Write;
use std::process::ExitCode;

use adjstream::algo::estimate::{
    theoretical_space_budget, try_estimate_four_cycles, try_estimate_triangles,
    try_estimate_triangles_auto, try_estimate_triangles_checkpointed, Accuracy, CountEstimate,
    Engine, EstimateError,
};
use adjstream::graph::analysis::{connected_components, degeneracy, DegreeStats};
use adjstream::graph::io::{load_edge_list, save_edge_list};
use adjstream::graph::{exact, gen, Graph};
use adjstream::lowerbound::gadgets as gd;
use adjstream::lowerbound::problems::{Disj3Instance, DisjInstance, Pj3Instance};
use adjstream::service::json::{self as sjson, Json};
use adjstream::stream::batch::Budget;
use adjstream::stream::trace::{read_trace_file_with_retry, ItemTrace, RetryError, RetryPolicy};
use adjstream::stream::{validate_stream, AdjListStream, RunError, StreamItem, StreamOrder};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Exit code for malformed invocations (bad flags, unknown commands).
const EXIT_USAGE: u8 = 2;
/// Exit code for streams that violate the adjacency-list promise.
const EXIT_INVALID_STREAM: u8 = 3;
/// Exit code for degraded runs (survivors below the required quorum).
const EXIT_DEGRADED: u8 = 4;
/// Exit code for space-budget violations.
const EXIT_SPACE: u8 = 5;
/// Exit code for missed wall-clock deadlines.
const EXIT_DEADLINE: u8 = 6;
/// Exit code for checkpoint write/read/apply failures.
const EXIT_CHECKPOINT: u8 = 7;
/// Exit code for I/O failures (missing files, exhausted retries).
const EXIT_IO: u8 = 8;

/// A classified CLI failure: a stable exit code, a machine-readable kind,
/// and a human message. Printed to stderr both as `error: <message>` and as
/// a one-line JSON object so scripts can branch without parsing prose.
#[derive(Debug)]
struct CliFailure {
    exit: u8,
    kind: &'static str,
    message: String,
}

impl CliFailure {
    fn new(exit: u8, kind: &'static str, message: impl Into<String>) -> Self {
        CliFailure {
            exit,
            kind,
            message: message.into(),
        }
    }

    fn usage(message: impl Into<String>) -> Self {
        Self::new(EXIT_USAGE, "usage", message)
    }

    fn invalid_stream(message: impl Into<String>) -> Self {
        Self::new(EXIT_INVALID_STREAM, "invalid-stream", message)
    }

    fn io(message: impl Into<String>) -> Self {
        Self::new(EXIT_IO, "io", message)
    }

    /// The one-line machine-readable form.
    fn json(&self) -> String {
        format!(
            "{{\"error\":{{\"kind\":\"{}\",\"exit\":{},\"message\":\"{}\"}}}}",
            json_escape(self.kind),
            self.exit,
            json_escape(&self.message)
        )
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

impl From<String> for CliFailure {
    fn from(message: String) -> Self {
        CliFailure::usage(message)
    }
}

impl From<&str> for CliFailure {
    fn from(message: &str) -> Self {
        CliFailure::usage(message.to_string())
    }
}

impl From<EstimateError> for CliFailure {
    fn from(e: EstimateError) -> Self {
        let (exit, kind) = match &e {
            EstimateError::Degraded(_) => (EXIT_DEGRADED, "degraded"),
            EstimateError::Run(r) => match r {
                RunError::DeadlineExceeded { .. } => (EXIT_DEADLINE, "deadline"),
                RunError::SpaceBudgetExceeded { .. } => (EXIT_SPACE, "space-budget"),
                RunError::Checkpoint { .. } => (EXIT_CHECKPOINT, "checkpoint"),
                RunError::Invalid { .. } => (EXIT_INVALID_STREAM, "invalid-stream"),
                _ => (EXIT_USAGE, "usage"),
            },
        };
        CliFailure::new(exit, kind, e.to_string())
    }
}

impl From<RetryError> for CliFailure {
    fn from(e: RetryError) -> Self {
        match &e {
            RetryError::Permanent(inner) => match inner {
                adjstream::stream::trace::TraceError::Io(_) => CliFailure::io(e.to_string()),
                _ => CliFailure::invalid_stream(e.to_string()),
            },
            RetryError::GaveUp { .. } => CliFailure::io(e.to_string()),
        }
    }
}

fn main() -> ExitCode {
    // Exit quietly when stdout is closed early (`adjstream-cli ... | head`):
    // Rust panics on EPIPE by default, which would print a backtrace for a
    // completely normal shell pattern.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info.payload().downcast_ref::<String>().cloned();
        if msg.as_deref().is_some_and(|m| m.contains("Broken pipe")) {
            std::process::exit(0);
        }
        default_hook(info);
    }));
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(failure) => {
            eprintln!("error: {}", failure.message);
            eprintln!("{}", failure.json());
            if failure.exit == EXIT_USAGE {
                eprintln!();
                eprintln!("{USAGE}");
            }
            ExitCode::from(failure.exit)
        }
    }
}

const USAGE: &str = "usage:
  adjstream-cli gen <gnm|gnp|ba|chung-lu|cliques|bipartite|plane|planted-triangles|planted-c4> [--key value ...] -o FILE
  adjstream-cli info FILE
  adjstream-cli count FILE --kind <triangles|c4|cycles> [--len L]
  adjstream-cli estimate FILE --kind <triangles|c4> [--epsilon E] [--delta D] [--t-lower T] [--seed S]
                [--engine batched|sequential] [--max-bytes N|auto] [--max-total-bytes N]
                [--deadline-secs S] [--min-survivors Q] [--checkpoint-dir DIR] [--resume]
                [--job-id N] [--checkpoint-retention-secs S] [--metrics-out FILE]
  adjstream-cli stream FILE [--seed S] [-o FILE]
  adjstream-cli validate-stream FILE [--mode offline|online|bounded] [--seed S] [--window W] [--retries N]
  adjstream-cli corrupt FILE --faults KIND[:N][,KIND[:N]...] [--seed S] [-o FILE] [--replay-o FILE]
  adjstream-cli estimate-stream FILE [--budget K] [--seed S] [--policy strict|repair|observe] [--retries N]
                [--metrics-out FILE] [--shards N] [--shard-procs] [--mmap]
  adjstream-cli import-edges EDGES.txt -o FILE.adjb [--seed S] [--buckets B]
                [--dups drop|keep|error] [--self-loops drop|keep|error] [--json]
  adjstream-cli gen-updates FILE [--churn N] [--delete-fraction F] [--seed S] [-o FILE]
                [--format text|adjbu]
  adjstream-cli update-stream FILE [--batch B] [--capacity M] [--seed S] [--verify]
                [--window W] [--stride D] [--epsilon E] [--delta D] [--exact-windows]
  adjstream-cli convert-trace FILE -o FILE [--format adjb|text]
  adjstream-cli convert-updates FILE -o FILE [--format adjbu|text]
  adjstream-cli gadget <fig-a|fig-b|fig-c|fig-d|fig-e> [--key value ...] [--answer yes|no] [-o FILE]

daemon client (requires a running adjstreamd; all take --socket PATH):
  adjstream-cli register FILE --name NAME --socket SOCK
  adjstream-cli submit --socket SOCK --trace NAME [--kind triangles|c4|validate|update] [--t-lower T]
                [--epsilon E] [--delta D] [--seed S] [--priority P] [--min-survivors Q] [--shards N]
                [--deadline-ms MS] [--max-bytes N] [--max-total-bytes N] [--wait] [--poll-ms MS]
                [--batch-size B] [--capacity M] [--guard strict|repair|observe]  (update jobs)
  adjstream-cli status --socket SOCK [--id ID]
  adjstream-cli cancel --socket SOCK --id ID

fault kinds: drop-direction duplicate-item split-list self-loop corrupt-vertex truncate-tail reorder-pass
exit codes: 0 ok | 2 usage | 3 invalid-stream | 4 degraded | 5 space-budget | 6 deadline | 7 checkpoint | 8 io";

/// Flags that take no value.
const BOOLEAN_FLAGS: &[&str] = &[
    "resume",
    "wait",
    "verify",
    "exact-windows",
    "shard-procs",
    "mmap",
    "json",
];

/// Parse `--key value` flags (plus `-o` and valueless booleans).
fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .or_else(|| (args[i] == "-o").then_some("o"))
            .ok_or_else(|| format!("unexpected argument {:?}", args[i]))?;
        if BOOLEAN_FLAGS.contains(&key) {
            flags.insert(key.to_string(), "true".to_string());
            i += 1;
            continue;
        }
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("flag --{key} needs a value"))?;
        flags.insert(key.to_string(), value.clone());
        i += 2;
    }
    Ok(flags)
}

fn get<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("invalid --{key} {v:?}")),
    }
}

fn run(args: &[String]) -> Result<(), CliFailure> {
    let (cmd, rest) = args
        .split_first()
        .ok_or_else(|| CliFailure::usage("missing command"))?;
    match cmd.as_str() {
        "gen" => cmd_gen(rest),
        "info" => cmd_info(rest),
        "count" => cmd_count(rest),
        "estimate" => cmd_estimate(rest),
        "stream" => cmd_stream(rest),
        "validate-stream" => cmd_validate_stream(rest),
        "corrupt" => cmd_corrupt(rest),
        "estimate-stream" => cmd_estimate_stream(rest),
        "import-edges" => cmd_import_edges(rest),
        // Hidden: one shard x one pass, spawned by `estimate-stream
        // --shard-procs`. Not part of the public surface.
        "shard-worker" => cmd_shard_worker(rest),
        "gen-updates" => cmd_gen_updates(rest),
        "update-stream" => cmd_update_stream(rest),
        "convert-trace" => cmd_convert_trace(rest),
        "convert-updates" => cmd_convert_updates(rest),
        "gadget" => cmd_gadget(rest),
        "register" => cmd_register(rest),
        "submit" => cmd_submit(rest),
        "status" => cmd_status(rest),
        "cancel" => cmd_cancel(rest),
        other => Err(CliFailure::usage(format!("unknown command {other:?}"))),
    }
}

fn load(flags_file: Option<&String>) -> Result<Graph, CliFailure> {
    let path = flags_file.ok_or_else(|| CliFailure::usage("missing input file"))?;
    let loaded = load_edge_list(path).map_err(|e| CliFailure::io(e.to_string()))?;
    if loaded.self_loops_dropped > 0 {
        eprintln!("note: dropped {} self-loops", loaded.self_loops_dropped);
    }
    Ok(loaded.graph)
}

fn cmd_gen(args: &[String]) -> Result<(), CliFailure> {
    let (family, rest) = args.split_first().ok_or("gen: missing family")?;
    let flags = parse_flags(rest)?;
    let seed: u64 = get(&flags, "seed", 1)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let g = match family.as_str() {
        "gnm" => gen::gnm(get(&flags, "n", 1000)?, get(&flags, "m", 5000)?, &mut rng),
        "gnp" => gen::gnp(get(&flags, "n", 1000)?, get(&flags, "p", 0.01)?, &mut rng),
        "ba" => gen::barabasi_albert(get(&flags, "n", 1000)?, get(&flags, "k", 3)?, &mut rng),
        "chung-lu" => gen::chung_lu(
            get(&flags, "n", 1000)?,
            get(&flags, "gamma", 2.5)?,
            get(&flags, "avg-degree", 8.0)?,
            &mut rng,
        ),
        "cliques" => gen::disjoint_cliques(get(&flags, "s", 5)?, get(&flags, "k", 10)?),
        "bipartite" => gen::bipartite_gnm(
            get(&flags, "a", 100)?,
            get(&flags, "b", 100)?,
            get(&flags, "m", 1000)?,
            &mut rng,
        ),
        "plane" => gen::projective_plane_incidence(get(&flags, "q", 5)?),
        "planted-triangles" => gen::planted_triangles_on_bipartite(
            get(&flags, "side", 100)?,
            get(&flags, "side", 100)?,
            get(&flags, "m-bg", 2000)?,
            get(&flags, "t", 64)?,
            &mut rng,
        ),
        "planted-c4" => gen::disjoint_triangles(get(&flags, "bg", 500)?)
            .disjoint_union(&gen::disjoint_four_cycles(get(&flags, "t", 64)?)),
        other => return Err(CliFailure::usage(format!("unknown family {other:?}"))),
    };
    emit(&g, flags.get("o"))?;
    eprintln!(
        "generated {family}: n = {}, m = {}",
        g.vertex_count(),
        g.edge_count()
    );
    Ok(())
}

fn emit(g: &Graph, out: Option<&String>) -> Result<(), String> {
    match out {
        Some(path) => save_edge_list(g, path).map_err(|e| e.to_string()),
        None => {
            let stdout = std::io::stdout();
            adjstream::graph::io::write_edge_list(g, stdout.lock()).map_err(|e| e.to_string())
        }
    }
}

fn cmd_info(args: &[String]) -> Result<(), CliFailure> {
    let g = load(args.first())?;
    let stats = DegreeStats::compute(&g);
    let (_, components) = connected_components(&g);
    let (degen, _) = degeneracy(&g);
    println!("vertices      {}", g.vertex_count());
    println!("edges         {}", g.edge_count());
    println!("wedges (P2)   {}", g.wedge_count());
    println!(
        "degree        min {} / median {} / mean {:.2} / max {}",
        stats.min, stats.median, stats.mean, stats.max
    );
    println!("isolated      {}", stats.isolated);
    println!("components    {components}");
    println!("degeneracy    {degen}");
    Ok(())
}

fn cmd_count(args: &[String]) -> Result<(), CliFailure> {
    let g = load(args.first())?;
    let flags = parse_flags(&args[1..])?;
    let kind = flags.get("kind").map(String::as_str).unwrap_or("triangles");
    let count = match kind {
        "triangles" => exact::count_triangles(&g),
        "c4" => exact::count_four_cycles(&g),
        "cycles" => exact::count_cycles(&g, get(&flags, "len", 5usize)?),
        other => return Err(CliFailure::usage(format!("unknown kind {other:?}"))),
    };
    println!("{count}");
    Ok(())
}

/// Build the [`Budget`] for an estimate run from `--max-bytes` (a byte
/// count, or `auto` for 16× the Theorem 3.7 space bound — slack for
/// constant factors the Õ hides), `--max-total-bytes`, and
/// `--deadline-secs`.
fn parse_budget_flags(
    flags: &HashMap<String, String>,
    g: &Graph,
    t_lower: u64,
    epsilon: f64,
) -> Result<Budget, CliFailure> {
    let mut budget = Budget::default();
    if let Some(v) = flags.get("max-bytes") {
        budget.max_bytes_per_instance = Some(if v == "auto" {
            let bytes =
                theoretical_space_budget(g.edge_count(), g.vertex_count(), t_lower, epsilon);
            // 16× slack for the constant factors Õ hides, with a 1 MiB
            // floor: hash-map and allocator overhead dominates the
            // information-theoretic bound on small instances.
            bytes.saturating_mul(16).max(1 << 20)
        } else {
            v.parse()
                .map_err(|_| CliFailure::usage(format!("invalid --max-bytes {v:?}")))?
        });
    }
    if let Some(v) = flags.get("max-total-bytes") {
        budget.max_total_bytes = Some(
            v.parse()
                .map_err(|_| CliFailure::usage(format!("invalid --max-total-bytes {v:?}")))?,
        );
    }
    if let Some(v) = flags.get("deadline-secs") {
        let secs: f64 = v
            .parse()
            .map_err(|_| CliFailure::usage(format!("invalid --deadline-secs {v:?}")))?;
        if !(secs >= 0.0 && secs.is_finite()) {
            return Err(CliFailure::usage(format!(
                "--deadline-secs must be a finite non-negative number, got {v:?}"
            )));
        }
        budget.deadline = Some(std::time::Duration::from_secs_f64(secs));
    }
    Ok(budget)
}

/// Write a run's [`MetricsSnapshot`](adjstream::stream::MetricsSnapshot)
/// as one-line JSON to `path`. Collection is enabled whenever
/// `--metrics-out` is present, so a missing snapshot is an internal bug.
fn write_metrics(
    metrics: Option<&adjstream::stream::MetricsSnapshot>,
    path: &str,
) -> Result<(), CliFailure> {
    let snap = metrics
        .ok_or_else(|| CliFailure::io("run produced no metrics snapshot (internal error)"))?;
    std::fs::write(path, format!("{}\n", snap.to_json()))
        .map_err(|e| CliFailure::io(format!("cannot write metrics to {path}: {e}")))?;
    eprintln!("metrics       written to {path}");
    Ok(())
}

fn print_estimate(est: &CountEstimate, g: &Graph, acc: &Accuracy, suffix: &str) {
    println!("estimate      {:.1}{suffix}", est.count);
    println!("edge budget   {} of {}", est.budget, g.edge_count());
    println!("repetitions   {}", est.repetitions);
    println!("run std-dev   {:.1}", est.report.variance.sqrt());
    println!("stream passes {} ({})", est.stream_passes, acc.engine);
    if est.report.dead_runs > 0 {
        println!(
            "survivors     {} of {} repetitions (the rest exceeded their budget)",
            est.repetitions - est.report.dead_runs,
            est.repetitions
        );
    }
}

/// FNV-1a over raw bytes: the stable default job id for checkpoint
/// namespacing (`triangles-<id>.ckpt`), derived from the run identity.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn cmd_estimate(args: &[String]) -> Result<(), CliFailure> {
    let g = load(args.first())?;
    let flags = parse_flags(&args[1..])?;
    let engine = match flags.get("engine") {
        Some(s) => {
            Engine::parse(s).ok_or_else(|| CliFailure::usage(format!("unknown engine {s:?}")))?
        }
        None => Engine::Batched,
    };
    let t_lower_flag: Option<u64> = match flags.get("t-lower") {
        Some(t) => Some(t.parse().map_err(|_| "invalid --t-lower")?),
        None => None,
    };
    let epsilon: f64 = get(&flags, "epsilon", 0.25)?;
    let budget = parse_budget_flags(&flags, &g, t_lower_flag.unwrap_or(1), epsilon)?;
    let min_survivors: Option<usize> = match flags.get("min-survivors") {
        Some(v) => Some(
            v.parse()
                .map_err(|_| CliFailure::usage(format!("invalid --min-survivors {v:?}")))?,
        ),
        None => None,
    };
    let metrics_out = flags.get("metrics-out").cloned();
    let acc = Accuracy {
        epsilon,
        delta: get(&flags, "delta", 0.1)?,
        seed: get(&flags, "seed", 2019)?,
        threads: get(&flags, "threads", 4)?,
        engine,
        budget,
        min_survivors,
        collect_metrics: metrics_out.is_some(),
    };
    let order = StreamOrder::shuffled(g.vertex_count(), acc.seed);
    let kind = flags.get("kind").map(String::as_str).unwrap_or("triangles");
    let checkpoint_dir = flags.get("checkpoint-dir");
    let resume = flags.contains_key("resume");
    if resume && checkpoint_dir.is_none() {
        return Err(CliFailure::usage("--resume requires --checkpoint-dir"));
    }
    match kind {
        "triangles" => {
            let est = match checkpoint_dir {
                Some(dir) => {
                    let t_lower = t_lower_flag.ok_or_else(|| {
                        CliFailure::usage("--checkpoint-dir requires an explicit --t-lower")
                    })?;
                    std::fs::create_dir_all(dir).map_err(|e| {
                        CliFailure::io(format!("cannot create checkpoint dir {dir}: {e}"))
                    })?;
                    // Checkpoint files are namespaced by job id so runs
                    // sharing a checkpoint dir never clobber each other.
                    // The id defaults to a hash of the run identity
                    // (input, t-lower, seed, epsilon) so a bare re-run with
                    // --resume finds its own file; --job-id pins it.
                    let job_id: u64 = match flags.get("job-id") {
                        Some(v) => v
                            .parse()
                            .map_err(|_| CliFailure::usage(format!("invalid --job-id {v:?}")))?,
                        None => {
                            let input = args.first().map(String::as_str).unwrap_or("");
                            fnv1a(
                                format!("{input}|{t_lower}|{}|{}", acc.seed, acc.epsilon)
                                    .as_bytes(),
                            )
                        }
                    };
                    let path =
                        std::path::Path::new(dir).join(format!("triangles-{job_id:016x}.ckpt"));
                    if let Some(secs) = flags.get("checkpoint-retention-secs") {
                        let secs: u64 = secs.parse().map_err(|_| {
                            CliFailure::usage(format!(
                                "invalid --checkpoint-retention-secs {secs:?}"
                            ))
                        })?;
                        use adjstream::stream::checkpoint::gc_stale_checkpoints;
                        let keep = path.clone();
                        let removed = gc_stale_checkpoints(
                            std::path::Path::new(dir),
                            std::time::Duration::from_secs(secs),
                            move |p| p.extension().is_some_and(|e| e == "ckpt") && p != keep,
                        );
                        if removed > 0 {
                            eprintln!("gc: removed {removed} stale checkpoint file(s)");
                        }
                    }
                    try_estimate_triangles_checkpointed(&g, &order, t_lower, acc, &path, resume)?
                }
                None => match t_lower_flag {
                    Some(t) => try_estimate_triangles(&g, &order, t, acc)?,
                    None => try_estimate_triangles_auto(&g, &order, acc)?,
                },
            };
            print_estimate(&est, &g, &acc, "");
            if let Some(path) = &metrics_out {
                write_metrics(est.metrics.as_ref(), path)?;
            }
        }
        "c4" => {
            if checkpoint_dir.is_some() {
                return Err(CliFailure::usage(
                    "--checkpoint-dir supports --kind triangles only",
                ));
            }
            let t_lower = t_lower_flag.unwrap_or(1);
            let o2 = StreamOrder::shuffled(g.vertex_count(), acc.seed ^ 0xC4);
            let est = try_estimate_four_cycles(&g, [&order, &o2], t_lower, acc)?;
            print_estimate(&est, &g, &acc, " (O(1)-factor approximation)");
            if let Some(path) = &metrics_out {
                write_metrics(est.metrics.as_ref(), path)?;
            }
        }
        other => return Err(CliFailure::usage(format!("unknown kind {other:?}"))),
    }
    Ok(())
}

fn cmd_stream(args: &[String]) -> Result<(), CliFailure> {
    let g = load(args.first())?;
    let flags = parse_flags(&args[1..])?;
    let seed: u64 = get(&flags, "seed", 1)?;
    let s = AdjListStream::new(&g, StreamOrder::shuffled(g.vertex_count(), seed));
    let write = |w: &mut dyn Write| -> std::io::Result<()> {
        let mut w = std::io::BufWriter::new(w);
        for item in s.items() {
            writeln!(w, "{} {}", item.src, item.dst)?;
        }
        w.flush()
    };
    match flags.get("o") {
        Some(path) => {
            let mut f = std::fs::File::create(path).map_err(|e| e.to_string())?;
            write(&mut f).map_err(|e| e.to_string())?;
        }
        None => {
            let stdout = std::io::stdout();
            write(&mut stdout.lock()).map_err(|e| e.to_string())?;
        }
    }
    eprintln!("wrote {} items", s.len());
    Ok(())
}

fn cmd_validate_stream(args: &[String]) -> Result<(), CliFailure> {
    use adjstream::stream::{validate_online, OnlineValidator, SpaceUsage};
    let path = args.first().ok_or("missing stream file")?;
    let flags = parse_flags(&args[1..])?;
    let (trace, attempts) = read_trace_file_with_retry(
        std::path::Path::new(path),
        RetryPolicy::with_retries(get(&flags, "retries", 0usize)?),
        false,
    )?;
    if attempts > 1 {
        eprintln!("note: read succeeded after {attempts} attempts");
    }
    let mode = flags.get("mode").map(String::as_str).unwrap_or("offline");
    let result = match mode {
        "offline" => validate_stream(trace.items().iter().copied()),
        "online" => {
            let mut v = OnlineValidator::exact();
            validate_online(&mut v, trace.items().iter().copied())
        }
        "bounded" => {
            let seed: u64 = get(&flags, "seed", 2019)?;
            let window: usize = get(&flags, "window", 64)?;
            let mut v = OnlineValidator::bounded(seed, window);
            let r = validate_online(&mut v, trace.items().iter().copied());
            eprintln!("validator state: {} bytes", v.space_bytes());
            r
        }
        other => {
            return Err(CliFailure::usage(format!(
                "--mode must be offline|online|bounded, got {other:?}"
            )))
        }
    };
    match result {
        Ok(edges) => {
            println!("valid adjacency list stream: {edges} edges ({mode} check)");
            Ok(())
        }
        Err(e) => Err(CliFailure::invalid_stream(match e.position() {
            Some(p) => format!("invalid stream at item {p}: {e}"),
            None => format!("invalid stream: {e}"),
        })),
    }
}

/// Corrupt a valid stream with a seeded, replayable fault plan.
fn cmd_corrupt(args: &[String]) -> Result<(), CliFailure> {
    use adjstream::stream::{FaultKind, FaultPlan};
    let path = args.first().ok_or("missing stream file")?;
    let flags = parse_flags(&args[1..])?;
    let seed: u64 = get(&flags, "seed", 1)?;
    let spec = flags
        .get("faults")
        .ok_or("corrupt: missing --faults (e.g. drop-direction:2,self-loop)")?;
    let mut plan = FaultPlan::new(seed);
    for part in spec.split(',') {
        let (name, count) = match part.split_once(':') {
            Some((n, c)) => (
                n,
                c.parse::<usize>()
                    .map_err(|_| format!("invalid fault count in {part:?}"))?,
            ),
            None => (part, 1),
        };
        let kind = FaultKind::parse(name).ok_or_else(|| format!("unknown fault kind {name:?}"))?;
        plan = plan.with(kind, count);
    }
    if plan.count(FaultKind::ReorderPass) > 0 && !flags.contains_key("replay-o") {
        return Err("corrupt: reorder-pass only affects replays; pass --replay-o FILE".into());
    }
    let file = std::fs::File::open(path).map_err(|e| CliFailure::io(e.to_string()))?;
    let trace = ItemTrace::read(file)
        .map_err(|e| CliFailure::invalid_stream(format!("input must be valid: {e}")))?;
    let corrupted = plan.apply(trace.items());
    write_items(corrupted.items(), flags.get("o"))?;
    if let Some(replay_path) = flags.get("replay-o") {
        write_items(corrupted.items_for_pass(1), Some(replay_path))?;
    }
    for f in corrupted.injected() {
        eprintln!(
            "injected {} ({} expected detections): {}",
            f.kind, f.expected_detections, f.description
        );
    }
    for k in corrupted.skipped() {
        eprintln!("skipped {k}: stream cannot host it");
    }
    eprintln!(
        "seed {seed}: {} faults injected, {} skipped, {} detections expected",
        corrupted.injected().len(),
        corrupted.skipped().len(),
        corrupted.expected_detections()
    );
    Ok(())
}

/// Convert a trace between the text and binary (`.adjb`) on-disk formats.
/// The input format is sniffed, so either direction works; the stream is
/// not validated (corrupted fault-injection fixtures convert unchanged).
fn cmd_convert_trace(args: &[String]) -> Result<(), CliFailure> {
    let path = args.first().ok_or("missing stream file")?;
    let flags = parse_flags(&args[1..])?;
    let format = flags.get("format").map(String::as_str).unwrap_or("adjb");
    let bytes = std::fs::read(path).map_err(|e| CliFailure::io(e.to_string()))?;
    let trace = ItemTrace::from_bytes_unchecked(&bytes).map_err(|e| match e {
        adjstream::stream::trace::TraceError::Io(inner) => CliFailure::io(inner.to_string()),
        other => CliFailure::invalid_stream(other.to_string()),
    })?;
    let out = flags.get("o").ok_or("convert-trace: missing -o OUTPUT")?;
    let f = std::fs::File::create(out).map_err(|e| CliFailure::io(e.to_string()))?;
    let mut w = std::io::BufWriter::new(f);
    match format {
        "adjb" => trace
            .write_adjb(&mut w)
            .map_err(|e| CliFailure::io(e.to_string()))?,
        "text" => {
            for item in trace.items() {
                writeln!(w, "{} {}", item.src, item.dst)
                    .map_err(|e| CliFailure::io(e.to_string()))?;
            }
        }
        other => {
            return Err(CliFailure::usage(format!(
                "--format must be adjb|text, got {other:?}"
            )))
        }
    }
    w.flush().map_err(|e| CliFailure::io(e.to_string()))?;
    eprintln!("wrote {} items as {format} to {out}", trace.len());
    Ok(())
}

/// Convert an update trace between the text dialect and the checksummed
/// `.adjbu` binary container. Input format is sniffed from the bytes, so
/// both directions (and a re-encode of the same format) work.
fn cmd_convert_updates(args: &[String]) -> Result<(), CliFailure> {
    use adjstream::stream::update_trace::{parse_update_bytes, write_adjbu, UpdateTraceError};
    let path = args.first().ok_or("missing update trace file")?;
    let flags = parse_flags(&args[1..])?;
    let format = flags.get("format").map(String::as_str).unwrap_or("adjbu");
    let bytes = std::fs::read(path).map_err(|e| CliFailure::io(e.to_string()))?;
    let stream = parse_update_bytes(&bytes).map_err(|e| match e {
        UpdateTraceError::Io(inner) => CliFailure::io(inner.to_string()),
        other => CliFailure::invalid_stream(other.to_string()),
    })?;
    let out = flags.get("o").ok_or("convert-updates: missing -o OUTPUT")?;
    let f = std::fs::File::create(out).map_err(|e| CliFailure::io(e.to_string()))?;
    let mut w = std::io::BufWriter::new(f);
    match format {
        "adjbu" => write_adjbu(&stream, &mut w).map_err(|e| CliFailure::io(e.to_string()))?,
        "text" => stream
            .write_text(&mut w)
            .map_err(|e| CliFailure::io(e.to_string()))?,
        other => {
            return Err(CliFailure::usage(format!(
                "--format must be adjbu|text, got {other:?}"
            )))
        }
    }
    w.flush().map_err(|e| CliFailure::io(e.to_string()))?;
    eprintln!("wrote {} update events as {format} to {out}", stream.len());
    Ok(())
}

fn write_items(items: &[StreamItem], out: Option<&String>) -> Result<(), String> {
    let write = |w: &mut dyn Write| -> std::io::Result<()> {
        let mut w = std::io::BufWriter::new(w);
        for item in items {
            writeln!(w, "{} {}", item.src, item.dst)?;
        }
        w.flush()
    };
    match out {
        Some(path) => {
            let mut f = std::fs::File::create(path).map_err(|e| e.to_string())?;
            write(&mut f).map_err(|e| e.to_string())
        }
        None => {
            let stdout = std::io::stdout();
            write(&mut stdout.lock()).map_err(|e| e.to_string())
        }
    }
}

/// Estimate triangles directly from an item trace file: the trace is
/// validated (or guarded with an explicit `--policy`), then the Theorem 3.7
/// algorithm replays it twice.
fn cmd_estimate_stream(args: &[String]) -> Result<(), CliFailure> {
    use adjstream::algo::common::EdgeSampling;
    use adjstream::algo::triangle::{TwoPassTriangle, TwoPassTriangleConfig};
    use adjstream::stream::{run_slice_passes_observed, GuardPolicy, Guarded, Metrics};
    let path = args.first().ok_or("missing stream file")?;
    let flags = parse_flags(&args[1..])?;
    // Any scale-out flag routes to the graph-sharded path; the plain
    // invocation keeps the original two-pass estimator untouched.
    if flags.contains_key("shards")
        || flags.contains_key("shard-procs")
        || flags.contains_key("mmap")
    {
        return cmd_estimate_stream_sharded(path, &flags);
    }
    let metrics_out = flags.get("metrics-out").cloned();
    let sink = Metrics::from_flag(metrics_out.is_some());
    let policy = flags
        .get("policy")
        .map(|p| {
            GuardPolicy::parse(p)
                .ok_or(format!("--policy must be strict|repair|observe, got {p:?}"))
        })
        .transpose()?;
    // With an explicit policy the guard handles malformed input; without
    // one the trace must certify up front. Transient read failures retry.
    let (trace, attempts) = read_trace_file_with_retry(
        std::path::Path::new(path),
        RetryPolicy::with_retries(get(&flags, "retries", 0usize)?),
        policy.is_none(),
    )?;
    if attempts > 1 {
        eprintln!("note: read succeeded after {attempts} attempts");
    }
    sink.record_retries(attempts as u64);
    let m = trace.edges();
    let budget: usize = get(&flags, "budget", (m / 10).max(16))?;
    let seed: u64 = get(&flags, "seed", 2019)?;
    let cfg = TwoPassTriangleConfig {
        seed,
        edge_sampling: EdgeSampling::BottomK { k: budget },
        pair_capacity: budget,
    };
    let algo = TwoPassTriangle::new(cfg);
    let (est, report) = match policy {
        None => {
            println!("stream        {} items, {m} edges (validated)", trace.len());
            run_slice_passes_observed(algo, |_pass| trace.items(), &sink)
                .unwrap_or_else(|e| panic!("stream validation failed: {e}"))
        }
        Some(policy) => {
            println!(
                "stream        {} items (guard policy: {policy})",
                trace.len()
            );
            run_slice_passes_observed(Guarded::new(algo, policy), |_pass| trace.items(), &sink)
                .map_err(|e| CliFailure::from(EstimateError::Run(e)))?
        }
    };
    println!("estimate      {:.1}", est.estimate);
    println!("edge budget   {budget}");
    println!("peak state    {} bytes", report.peak_state_bytes);
    if let Some(stats) = report.guard {
        println!(
            "guard         {} faults detected, {} items repaired, {} edges quarantined",
            stats.faults_detected, stats.items_repaired, stats.edges_quarantined
        );
        println!("guard state   {} bytes peak", stats.validator_peak_bytes);
    }
    if let Some(path) = &metrics_out {
        write_metrics(report.metrics.as_ref(), path)?;
    }
    Ok(())
}

/// Window (bytes) for incremental checksum verification of mmapped traces.
const MMAP_VERIFY_WINDOW: usize = 1 << 20;

/// Map a trace open/verify error onto the CLI's exit-code taxonomy.
fn trace_failure(e: adjstream::stream::TraceError) -> CliFailure {
    match &e {
        adjstream::stream::TraceError::Io(_) => CliFailure::io(e.to_string()),
        _ => CliFailure::invalid_stream(e.to_string()),
    }
}

/// Map a checkpoint-container failure (the shard-merge wire format) onto
/// the checkpoint exit code.
fn checkpoint_failure(e: adjstream::stream::CheckpointError) -> CliFailure {
    CliFailure::new(EXIT_CHECKPOINT, "checkpoint", e.to_string())
}

/// Map a sharded-execution failure onto the CLI's exit-code taxonomy:
/// run errors keep their usual classification, boundary aborts (deferred
/// verification) are invalid-stream, everything else is I/O.
fn shard_failure(e: adjstream::stream::ShardError) -> CliFailure {
    use adjstream::stream::ShardError;
    match e {
        ShardError::Run(r) => CliFailure::from(EstimateError::Run(r)),
        boundary @ ShardError::Boundary { .. } => CliFailure::invalid_stream(boundary.to_string()),
        other => CliFailure::io(other.to_string()),
    }
}

/// Where sharded estimation replays items from: an owned in-memory trace
/// or an mmapped `.adjb` file served straight from the page cache.
enum ShardSource {
    Owned(ItemTrace),
    Mapped(adjstream::stream::MappedTrace),
}

impl ShardSource {
    fn items(&self) -> &[StreamItem] {
        match self {
            ShardSource::Owned(t) => t.items(),
            ShardSource::Mapped(m) => m.items(),
        }
    }
}

/// One-pass item collector. Run through [`adjstream::stream::Guarded`] it
/// materializes the *repaired* stream, so a guard policy is applied once,
/// upstream of the shard split, and every shard replays the same
/// promise-valid trace.
#[derive(Default)]
struct CollectItems {
    items: Vec<StreamItem>,
}

impl adjstream::stream::SpaceUsage for CollectItems {
    fn space_bytes(&self) -> usize {
        self.items.len() * std::mem::size_of::<StreamItem>()
    }
}

impl adjstream::stream::MultiPassAlgorithm for CollectItems {
    type Output = Vec<StreamItem>;

    fn passes(&self) -> usize {
        1
    }

    fn begin_pass(&mut self, _pass: usize) {}

    fn item(&mut self, src: adjstream::graph::VertexId, dst: adjstream::graph::VertexId) {
        self.items.push(StreamItem::new(src, dst));
    }

    fn finish(self) -> Vec<StreamItem> {
        self.items
    }
}

/// The scale-out variant of `estimate-stream`: partition the trace by
/// list-owner vertex (`--shards N`), run the shard-mergeable three-pass
/// estimator one worker per shard — threads by default, one process per
/// shard under `--shard-procs` — and, under `--mmap`, replay the `.adjb`
/// file zero-copy with checksum verification deferred to the first pass
/// boundary so first-item latency never pays for the whole file.
fn cmd_estimate_stream_sharded(
    path: &str,
    flags: &HashMap<String, String>,
) -> Result<(), CliFailure> {
    use adjstream::algo::common::EdgeSampling;
    use adjstream::algo::triangle::{ShardedTriangle, ShardedTriangleConfig};
    use adjstream::stream::{
        run_sharded_hooked, run_slice_passes, GuardPolicy, Guarded, MappedTrace, Metrics,
        ShardError, ShardPlan,
    };

    let shards: usize = get(flags, "shards", 1)?;
    if shards == 0 {
        return Err(CliFailure::usage("--shards must be >= 1"));
    }
    let procs = flags.contains_key("shard-procs");
    let use_mmap = flags.contains_key("mmap");
    let metrics_out = flags.get("metrics-out").cloned();
    let sink = Metrics::from_flag(metrics_out.is_some());
    let policy = flags
        .get("policy")
        .map(|p| {
            GuardPolicy::parse(p)
                .ok_or(format!("--policy must be strict|repair|observe, got {p:?}"))
        })
        .transpose()?;

    // Acquire the item stream. The mmapped path defers checksum and
    // promise validation to the first pass boundary (unless a guard
    // policy forces a whole-file repair pre-pass anyway); the owned path
    // validates at read exactly like the unsharded command.
    let source = if use_mmap {
        let mut mapped = MappedTrace::open(std::path::Path::new(path)).map_err(trace_failure)?;
        if policy.is_some() {
            mapped
                .verify_all(MMAP_VERIFY_WINDOW)
                .map_err(trace_failure)?;
        }
        ShardSource::Mapped(mapped)
    } else {
        let (trace, attempts) = read_trace_file_with_retry(
            std::path::Path::new(path),
            RetryPolicy::with_retries(get(flags, "retries", 0usize)?),
            policy.is_none(),
        )?;
        if attempts > 1 {
            eprintln!("note: read succeeded after {attempts} attempts");
        }
        sink.record_retries(attempts as u64);
        ShardSource::Owned(trace)
    };
    let raw_items = source.items();

    // With a guard policy the stream is repaired ONCE, upstream of the
    // shard split, so every shard replays the same promise-valid items.
    let mut guard_stats = None;
    let repaired: Option<Vec<StreamItem>> = match policy {
        Some(policy) => {
            let (fixed, rep) =
                run_slice_passes(Guarded::new(CollectItems::default(), policy), |_pass| {
                    raw_items
                })
                .map_err(|e| CliFailure::from(EstimateError::Run(e)))?;
            guard_stats = rep.guard;
            Some(fixed)
        }
        None => None,
    };
    let items: &[StreamItem] = repaired.as_deref().unwrap_or(raw_items);

    let m = items.len() / 2;
    let budget: usize = get(flags, "budget", (m / 10).max(16))?;
    let seed: u64 = get(flags, "seed", 2019)?;
    let cfg = ShardedTriangleConfig {
        seed,
        edge_sampling: EdgeSampling::BottomK { k: budget },
        pair_capacity: budget,
    };
    let plan = ShardPlan::build(items, shards);

    match policy {
        Some(policy) => println!(
            "stream        {} items (guard policy: {policy}, repaired upstream)",
            items.len()
        ),
        None => println!(
            "stream        {} items, {m} edges ({})",
            items.len(),
            if use_mmap {
                "mmap, verify deferred"
            } else {
                "validated"
            }
        ),
    }
    println!(
        "shards        {} lists over {shards} shard(s), {} mode{}",
        plan.total_runs(),
        if procs { "process" } else { "thread" },
        if use_mmap { ", mmap replay" } else { "" }
    );

    // Deferred mmap verification: pass 0 serves straight from the page
    // cache; at the first pass boundary the windowed checksum (and the
    // promise check, which the owned path did at read time) completes
    // over the now-resident pages. A mismatch aborts before pass 1 can
    // act on anything derived from corrupt bytes.
    let mut cursor = match &source {
        ShardSource::Mapped(mapped) if !mapped.is_verified() => Some(mapped.verify_cursor()),
        _ => None,
    };
    let deferred_promise = use_mmap && policy.is_none();
    let after_pass = |pass: usize| -> Result<(), ShardError> {
        if pass != 0 {
            return Ok(());
        }
        if let Some(cur) = cursor.take() {
            cur.finish(MMAP_VERIFY_WINDOW)
                .map_err(|e| ShardError::Boundary {
                    pass,
                    detail: e.to_string(),
                })?;
        }
        if deferred_promise {
            validate_stream(items.iter().copied()).map_err(|e| ShardError::Boundary {
                pass,
                detail: format!("adjacency-list promise violated: {e}"),
            })?;
        }
        Ok(())
    };

    let (est, peak, metrics) = if procs {
        run_shard_procs(
            path,
            &plan,
            cfg,
            use_mmap,
            repaired.as_deref(),
            &sink,
            after_pass,
        )?
    } else {
        let (est, report) =
            run_sharded_hooked(ShardedTriangle::new(cfg), &plan, items, &sink, after_pass)
                .map_err(shard_failure)?;
        (est, report.peak_state_bytes, report.metrics)
    };

    println!("estimate      {:.1}", est.estimate);
    println!("edge budget   {budget}");
    println!("peak state    {peak} bytes (max over shards)");
    if let Some(stats) = guard_stats {
        println!(
            "guard         {} faults detected, {} items repaired, {} edges quarantined",
            stats.faults_detected, stats.items_repaired, stats.edges_quarantined
        );
        println!("guard state   {} bytes peak", stats.validator_peak_bytes);
    }
    if let Some(out) = &metrics_out {
        let mut snap = metrics;
        if let Some(s) = snap.as_mut() {
            // The repair pre-pass ran outside the sharded driver; fold its
            // guard counters in so --metrics-out stays truthful.
            if s.guard.is_none() {
                s.guard = guard_stats;
            }
        }
        write_metrics(snap.as_ref(), out)?;
    }
    Ok(())
}

/// Process-per-shard execution: per pass, broadcast the boundary state as
/// a checkpoint file, spawn one `shard-worker` process per shard, and
/// merge the partial blobs the workers write back. Per-shard metrics are
/// folded with the concurrent-merge rule (residency max, throughput sums).
fn run_shard_procs<F>(
    trace_path: &str,
    plan: &adjstream::stream::ShardPlan,
    cfg: adjstream::algo::triangle::ShardedTriangleConfig,
    use_mmap: bool,
    repaired: Option<&[StreamItem]>,
    sink: &adjstream::stream::Metrics,
    mut after_pass: F,
) -> Result<
    (
        adjstream::algo::triangle::TriangleEstimate,
        usize,
        Option<adjstream::stream::MetricsSnapshot>,
    ),
    CliFailure,
>
where
    F: FnMut(usize) -> Result<(), adjstream::stream::ShardError>,
{
    use adjstream::algo::triangle::ShardedTriangle;
    use adjstream::stream::checkpoint::{read_checkpoint_file, write_checkpoint_file};
    use adjstream::stream::obs::PassMetrics;
    use adjstream::stream::shard::merge_shard_states;
    use adjstream::stream::{
        Checkpoint, MetricsSnapshot, MultiPassAlgorithm, METRICS_SCHEMA_VERSION,
    };

    let tmp = std::env::temp_dir().join(format!("adjstream-shards-{}", std::process::id()));
    std::fs::create_dir_all(&tmp).map_err(|e| CliFailure::io(e.to_string()))?;
    // A repaired stream exists only in this process; persist it so the
    // workers replay the same promise-valid trace the parent planned.
    let worker_trace = match repaired {
        Some(fixed) => {
            let p = tmp.join("repaired.adjb");
            let trace = ItemTrace::new_unchecked(fixed.to_vec());
            let mut f = std::fs::File::create(&p).map_err(|e| CliFailure::io(e.to_string()))?;
            trace
                .write_adjb(&mut f)
                .map_err(|e| CliFailure::io(e.to_string()))?;
            p
        }
        None => std::path::PathBuf::from(trace_path),
    };
    let shards = plan.shard_count();
    let exe = std::env::current_exe().map_err(|e| CliFailure::io(e.to_string()))?;
    let collect = sink.is_enabled();
    let mut algo = ShardedTriangle::new(cfg);
    let passes = MultiPassAlgorithm::passes(&algo);
    let mut pass_rows: Vec<PassMetrics> = Vec::new();
    let mut peak_overall = 0usize;
    let mut processed_total = 0u64;
    for pass in 0..passes {
        let mut base = Vec::new();
        algo.save(&mut base)
            .map_err(|e| CliFailure::io(e.to_string()))?;
        let base_path = tmp.join(format!("pass{pass}.base.ckpt"));
        write_checkpoint_file(&base_path, &base).map_err(checkpoint_failure)?;
        let t0 = std::time::Instant::now();
        let mut children = Vec::with_capacity(shards);
        for shard in 0..shards {
            let out = tmp.join(format!("pass{pass}.shard{shard}.ckpt"));
            let mut cmd = std::process::Command::new(&exe);
            cmd.arg("shard-worker")
                .arg(&worker_trace)
                .arg("--shard")
                .arg(shard.to_string())
                .arg("--shards")
                .arg(shards.to_string())
                .arg("--pass")
                .arg(pass.to_string())
                .arg("--state")
                .arg(&base_path)
                .arg("--out")
                .arg(&out);
            if use_mmap {
                cmd.arg("--mmap");
            }
            let child = cmd
                .spawn()
                .map_err(|e| CliFailure::io(format!("spawn shard {shard} worker: {e}")))?;
            children.push((shard, out, child));
        }
        let mut blobs: Vec<Vec<u8>> = Vec::with_capacity(shards);
        let mut acc: Option<MetricsSnapshot> = None;
        for (shard, out, mut child) in children {
            let status = child.wait().map_err(|e| CliFailure::io(e.to_string()))?;
            if !status.success() {
                let code = status.code().map(|c| c as u8).unwrap_or(EXIT_IO);
                let _ = std::fs::remove_dir_all(&tmp);
                return Err(CliFailure::new(
                    code,
                    "shard-worker",
                    format!("shard {shard} worker failed in pass {pass} (exit {code})"),
                ));
            }
            let payload = read_checkpoint_file(&out).map_err(checkpoint_failure)?;
            if payload.len() < 32 {
                let _ = std::fs::remove_dir_all(&tmp);
                return Err(CliFailure::io(format!(
                    "shard {shard} worker wrote a short payload"
                )));
            }
            let word = |i: usize| u64::from_le_bytes(payload[i * 8..i * 8 + 8].try_into().unwrap());
            let (w_peak, w_items, w_lists, w_slices) = (word(0), word(1), word(2), word(3));
            peak_overall = peak_overall.max(w_peak as usize);
            processed_total += w_items;
            if collect {
                let shard_snap = MetricsSnapshot {
                    passes: vec![PassMetrics {
                        pass: pass as u32,
                        items: w_items,
                        slices: w_slices,
                        lists: w_lists,
                        peak_bytes: w_peak,
                        ..PassMetrics::default()
                    }],
                    peak_state_bytes: w_peak,
                    items_processed: w_items,
                    ..MetricsSnapshot::default()
                };
                match acc.as_mut() {
                    Some(a) => a.merge_concurrent(&shard_snap),
                    None => acc = Some(shard_snap),
                }
            }
            blobs.push(payload[32..].to_vec());
        }
        algo = merge_shard_states::<ShardedTriangle>(&blobs, pass).map_err(|e| {
            let _ = std::fs::remove_dir_all(&tmp);
            shard_failure(e)
        })?;
        after_pass(pass).map_err(|e| {
            let _ = std::fs::remove_dir_all(&tmp);
            shard_failure(e)
        })?;
        if collect {
            let mut row = acc
                .and_then(|a| a.passes.into_iter().next())
                .unwrap_or_default();
            row.pass = pass as u32;
            // Individual worker walls aren't visible to the parent; the
            // batch wall bounds the max over the concurrent workers.
            row.wall_nanos = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            pass_rows.push(row);
        }
    }
    let _ = std::fs::remove_dir_all(&tmp);
    let counters = algo.obs_counters();
    let metrics = collect.then(|| MetricsSnapshot {
        schema: METRICS_SCHEMA_VERSION,
        runs: 1,
        passes: pass_rows,
        counters: counters.unwrap_or_default(),
        guard: None,
        checkpoint: Default::default(),
        retry: Default::default(),
        peak_state_bytes: peak_overall as u64,
        items_processed: processed_total,
    });
    if let Some(snap) = &metrics {
        sink.absorb(snap);
    }
    Ok((algo.finish(), peak_overall, metrics))
}

/// Hidden subcommand: one shard x one pass of a sharded `estimate-stream`,
/// spawned by the `--shard-procs` parent. Restores the pass-boundary state
/// blob, drives only this shard's adjacency lists (rebuilding the same
/// deterministic plan from the trace), and writes back
/// `[peak, items, lists, slices]` as little-endian u64s followed by the
/// re-serialized partial state — all through the checksummed checkpoint
/// container, which doubles as the shard-merge wire format.
fn cmd_shard_worker(args: &[String]) -> Result<(), CliFailure> {
    use adjstream::algo::triangle::ShardedTriangle;
    use adjstream::stream::checkpoint::{read_checkpoint_file, write_checkpoint_file};
    use adjstream::stream::shard::run_shard_pass_blob;
    use adjstream::stream::{MappedTrace, ShardPlan};

    let path = args.first().ok_or("shard-worker: missing trace file")?;
    let flags = parse_flags(&args[1..])?;
    let shard: usize = get(&flags, "shard", 0)?;
    let shards: usize = get(&flags, "shards", 1)?;
    let pass: usize = get(&flags, "pass", 0)?;
    let state = flags.get("state").ok_or("shard-worker: missing --state")?;
    let out = flags.get("out").ok_or("shard-worker: missing --out")?;
    if shards == 0 || shard >= shards {
        return Err(CliFailure::usage("shard-worker: --shard out of range"));
    }
    // The parent owns validation (deferred or upstream repair); workers
    // replay without re-validating the promise.
    let source = if flags.contains_key("mmap") {
        ShardSource::Mapped(
            MappedTrace::open(std::path::Path::new(path.as_str())).map_err(trace_failure)?,
        )
    } else {
        let (trace, _) = read_trace_file_with_retry(
            std::path::Path::new(path.as_str()),
            RetryPolicy::with_retries(0),
            false,
        )?;
        ShardSource::Owned(trace)
    };
    let items = source.items();
    let plan = ShardPlan::build(items, shards);
    let base = read_checkpoint_file(std::path::Path::new(state)).map_err(checkpoint_failure)?;
    let (blob, stats) =
        run_shard_pass_blob::<ShardedTriangle>(&base, pass, items, plan.runs_for(shard))
            .map_err(shard_failure)?;
    let mut payload = Vec::with_capacity(32 + blob.len());
    for v in [
        stats.peak_state_bytes as u64,
        stats.items_processed as u64,
        stats.lists,
        stats.slices,
    ] {
        payload.extend_from_slice(&v.to_le_bytes());
    }
    payload.extend_from_slice(&blob);
    write_checkpoint_file(std::path::Path::new(out), &payload).map_err(checkpoint_failure)?;
    Ok(())
}

/// Generate a timestamped insert/delete trace from a graph file: a load
/// phase inserting every edge in seeded random order, then `--churn`
/// events swinging over the edge set.
fn cmd_gen_updates(args: &[String]) -> Result<(), CliFailure> {
    use adjstream::stream::update::{churn, ChurnConfig};
    let (path, rest) = args
        .split_first()
        .ok_or("gen-updates: missing graph file")?;
    let flags = parse_flags(rest)?;
    let g = load(Some(path))?;
    let cfg = ChurnConfig {
        churn_events: get(&flags, "churn", g.edge_count())?,
        delete_fraction: get(&flags, "delete-fraction", 0.5)?,
        seed: get(&flags, "seed", 1)?,
    };
    let stream = churn(&g, &cfg);
    let format = flags.get("format").map(String::as_str).unwrap_or("text");
    let write = |w: &mut dyn Write| match format {
        "text" => stream.write_text(w),
        "adjbu" => adjstream::stream::update_trace::write_adjbu(&stream, w),
        _ => Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("--format must be text|adjbu, got {format:?}"),
        )),
    };
    match flags.get("o") {
        Some(out) => {
            let mut f = std::fs::File::create(out).map_err(|e| CliFailure::io(e.to_string()))?;
            write(&mut f).map_err(|e| CliFailure::io(e.to_string()))?;
        }
        None => {
            let stdout = std::io::stdout();
            write(&mut stdout.lock()).map_err(|e| CliFailure::io(e.to_string()))?;
        }
    }
    let (ins, del) = stream.op_counts();
    eprintln!(
        "gen-updates: {} events (+{ins}/-{del}), {} live at end",
        stream.len(),
        stream.final_edges().len()
    );
    Ok(())
}

/// Import a SNAP-style edge list into a checksummed `.adjb` trace,
/// streaming: the edge set never resides in memory (bucketed external
/// grouping by list-owner vertex). Output bytes are deterministic for a
/// given input + `--seed`, for every `--buckets` count.
fn cmd_import_edges(args: &[String]) -> Result<(), CliFailure> {
    use adjstream::graph::import::{DupPolicy, ImportConfig, ImportError, SelfLoopPolicy};
    use adjstream::stream::import::{import_edge_list_to_adjb, AdjbImportError};
    let (path, rest) = args
        .split_first()
        .ok_or("import-edges: missing edge list file")?;
    let flags = parse_flags(rest)?;
    let out = flags
        .get("o")
        .ok_or("import-edges: missing -o OUTPUT.adjb")?;
    let dups = match flags.get("dups").map(String::as_str) {
        None => DupPolicy::default(),
        Some(s) => DupPolicy::parse(s)
            .ok_or_else(|| CliFailure::usage(format!("bad --dups {s:?} (drop|keep|error)")))?,
    };
    let self_loops = match flags.get("self-loops").map(String::as_str) {
        None => SelfLoopPolicy::default(),
        Some(s) => SelfLoopPolicy::parse(s).ok_or_else(|| {
            CliFailure::usage(format!("bad --self-loops {s:?} (drop|keep|error)"))
        })?,
    };
    let cfg = ImportConfig {
        seed: get(&flags, "seed", 2019)?,
        buckets: get::<usize>(&flags, "buckets", 64)?.max(1),
        dups,
        self_loops,
        tmp_dir: None,
    };
    let input = std::fs::File::open(path).map_err(|e| CliFailure::io(e.to_string()))?;
    let report = import_edge_list_to_adjb(
        std::io::BufReader::new(input),
        std::path::Path::new(out),
        &cfg,
    )
    .map_err(|e| match e {
        AdjbImportError::Import(ImportError::Io(inner)) => CliFailure::io(inner.to_string()),
        AdjbImportError::Io(inner) => CliFailure::io(inner.to_string()),
        AdjbImportError::Import(inner) => CliFailure::invalid_stream(inner.to_string()),
    })?;
    let s = &report.stats;
    if flags.contains_key("json") {
        println!(
            "{{\"schema\":1,\"vertices\":{},\"edges_read\":{},\"items\":{},\"lists\":{},\
             \"duplicate_items_dropped\":{},\"self_loops_dropped\":{},\"lines_skipped\":{},\
             \"checksum\":\"{:#018x}\",\"bytes\":{},\"seed\":{},\"buckets\":{}}}",
            s.vertices,
            s.edges_read,
            s.items,
            s.lists,
            s.duplicate_items_dropped,
            s.self_loops_dropped,
            s.lines_skipped,
            report.checksum,
            report.bytes_written,
            cfg.seed,
            cfg.buckets
        );
    } else {
        println!("vertices      {}", s.vertices);
        println!("edges read    {}", s.edges_read);
        println!("items         {} in {} lists", s.items, s.lists);
        println!(
            "dropped       {} duplicate items, {} self-loops",
            s.duplicate_items_dropped, s.self_loops_dropped
        );
        println!("checksum      {:#018x}", report.checksum);
        println!("bytes         {}", report.bytes_written);
    }
    Ok(())
}

/// Maintain a triangle estimate over a dynamic update trace.
///
/// Default mode drives TRIÈST-FD in batches, printing the per-batch
/// estimate and its delta; `--verify` replays the trace through the exact
/// `O(m)`-space incremental counter and prints the per-batch recount next
/// to each estimate. `--window W` switches to sliding-window mode: each
/// `[start, start+W)` window of timestamps is re-fed to the two-pass
/// estimator (or counted exactly with `--exact-windows`).
fn cmd_update_stream(args: &[String]) -> Result<(), CliFailure> {
    use adjstream::algo::dynamic::{windowed_estimates, ExactDynamicTriangles, WindowConfig};
    use adjstream::algo::triangle::TriestFd;
    use adjstream::stream::update::{run_update_batches, UpdateAlgorithm};
    let (path, rest) = args
        .split_first()
        .ok_or("update-stream: missing update trace file")?;
    let flags = parse_flags(rest)?;
    // Sniffing reader: binary `.adjbu` (checksum-verified) and the text
    // dialect both load through the same path.
    let bytes = std::fs::read(path).map_err(|e| CliFailure::io(e.to_string()))?;
    let stream = adjstream::stream::update_trace::parse_update_bytes(&bytes)
        .map_err(|e| CliFailure::invalid_stream(e.to_string()))?;
    // An empty trace (e.g. a zero-length file) is a valid stream with no
    // events: the summary below reports 0 events and a 0.0 estimate
    // rather than failing — a daemon registering a just-created trace
    // file must not see a typed rejection.
    let seed: u64 = get(&flags, "seed", 2019)?;
    let (ins, del) = stream.op_counts();
    println!("updates       {} events (+{ins}/-{del})", stream.len());

    if flags.contains_key("window") {
        let width: u64 = get(&flags, "window", 0)?;
        let stride: u64 = get(&flags, "stride", width)?;
        let cfg = WindowConfig {
            width,
            stride,
            acc: Accuracy {
                epsilon: get(&flags, "epsilon", 0.2)?,
                delta: get(&flags, "delta", 0.1)?,
                seed,
                ..Accuracy::default()
            },
            exact: flags.contains_key("exact-windows"),
        };
        if cfg.width == 0 || cfg.stride == 0 {
            return Err(CliFailure::usage("--window/--stride must be positive"));
        }
        for w in windowed_estimates(&stream, &cfg) {
            match w.estimate {
                Ok(est) => println!(
                    "window {:<4} ts [{}, {})  events {:<6} edges {:<6} estimate {est:.1}",
                    w.window, w.ts_start, w.ts_end, w.events, w.edges
                ),
                Err(e) => println!(
                    "window {:<4} ts [{}, {})  events {:<6} edges {:<6} degraded: {e}",
                    w.window, w.ts_start, w.ts_end, w.events, w.edges
                ),
            }
        }
        return Ok(());
    }

    let batch: usize = get(&flags, "batch", 1000)?;
    let capacity: usize = get(&flags, "capacity", (stream.len() / 10).max(64))?;
    if capacity < 3 {
        return Err(CliFailure::usage("--capacity must be at least 3"));
    }
    let mut fd = TriestFd::new(seed, capacity);
    let report = run_update_batches(&stream, batch, &mut fd);
    // --verify: replay through the exact incremental counter, batch-aligned,
    // so every per-batch delta has a recount next to it.
    let exact_per_batch: Option<Vec<f64>> = flags.contains_key("verify").then(|| {
        let mut exact = ExactDynamicTriangles::new();
        stream
            .batches(batch)
            .map(|events| {
                events.iter().for_each(|ev| exact.apply(ev));
                exact.estimate()
            })
            .collect()
    });
    for b in &report.batches {
        let verify = match &exact_per_batch {
            Some(exact) => format!("  exact {:.1}", exact[b.batch]),
            None => String::new(),
        };
        println!(
            "batch {:<4} events {:<6} +{}/-{}  estimate {:.1}  delta {:+.1}{verify}",
            b.batch, b.events, b.inserts, b.deletes, b.estimate, b.delta
        );
    }
    let (d_in, d_out) = fd.deletion_debt();
    println!(
        "capacity      {capacity} edges (sample {})",
        fd.sample_size()
    );
    println!("debt          d_i {d_in}, d_o {d_out}");
    println!("peak state    {} bytes", report.peak_state_bytes);
    match exact_per_batch.as_deref().and_then(<[f64]>::last) {
        Some(exact) => println!(
            "final         estimate {:.1}  exact {exact:.1}",
            fd.estimate()
        ),
        None => println!("final         estimate {:.1}", fd.estimate()),
    }
    Ok(())
}

fn cmd_gadget(args: &[String]) -> Result<(), CliFailure> {
    let (fig, rest) = args.split_first().ok_or("gadget: missing figure")?;
    let flags = parse_flags(rest)?;
    let seed: u64 = get(&flags, "seed", 1)?;
    let answer = match flags.get("answer").map(String::as_str).unwrap_or("yes") {
        "yes" => true,
        "no" => false,
        other => {
            return Err(CliFailure::usage(format!(
                "--answer must be yes|no, got {other:?}"
            )))
        }
    };
    let gadget = match fig.as_str() {
        "fig-a" => gd::pj3_triangle_gadget(
            &Pj3Instance::random_with_answer(get(&flags, "r", 32)?, answer, seed),
            get(&flags, "k", 6)?,
        ),
        "fig-b" => gd::disj3_triangle_gadget(
            &Disj3Instance::random_promise(get(&flags, "r", 32)?, 0.3, answer, seed),
            get(&flags, "k", 4)?,
        ),
        "fig-c" => {
            let q = get(&flags, "q", 3)?;
            gd::index_four_cycle_gadget(
                &gd::random_index_instance_for_plane(q, answer, seed),
                q,
                get(&flags, "t", 6)?,
            )
        }
        "fig-d" => {
            let q1 = get(&flags, "q1", 3)?;
            gd::disj_four_cycle_gadget(
                &gd::random_disj_instance_for_plane(q1, 0.3, answer, seed),
                q1,
                get(&flags, "q2", 2)?,
            )
        }
        "fig-e" => gd::disj_long_cycle_gadget(
            &DisjInstance::random_promise(get(&flags, "r", 100)?, 0.3, answer, seed),
            get(&flags, "ell", 5)?,
            get(&flags, "t", 16)?,
        ),
        other => return Err(CliFailure::usage(format!("unknown gadget {other:?}"))),
    };
    emit(&gadget.graph, flags.get("o"))?;
    eprintln!(
        "{fig}: n = {}, m = {}, {}-cycles = {} (answer {})",
        gadget.graph.vertex_count(),
        gadget.graph.edge_count(),
        gadget.cycle_len,
        gadget.expected_cycles(),
        answer
    );
    Ok(())
}

// ---------------------------------------------------------------------------
// Daemon client (`register`/`submit`/`status`/`cancel`): each subcommand
// writes one JSON request line over the adjstreamd Unix socket and reads
// one response line back (see `adjstream::service::protocol`).
// ---------------------------------------------------------------------------

fn daemon_socket(flags: &HashMap<String, String>) -> Result<String, CliFailure> {
    flags
        .get("socket")
        .cloned()
        .ok_or_else(|| CliFailure::usage("missing required --socket (path to adjstreamd.sock)"))
}

/// Send one request line to the daemon, read the one-line response, and
/// classify non-`ok` responses (typed rejections vs. daemon errors).
fn daemon_request(socket: &str, request: &Json) -> Result<Json, CliFailure> {
    use std::io::{BufRead, BufReader};
    use std::os::unix::net::UnixStream;
    let stream = UnixStream::connect(socket)
        .map_err(|e| CliFailure::io(format!("cannot connect to daemon at {socket}: {e}")))?;
    let mut writer = stream
        .try_clone()
        .map_err(|e| CliFailure::io(format!("socket clone failed: {e}")))?;
    writeln!(writer, "{request}")
        .and_then(|()| writer.flush())
        .map_err(|e| CliFailure::io(format!("socket write failed: {e}")))?;
    let mut line = String::new();
    BufReader::new(stream)
        .read_line(&mut line)
        .map_err(|e| CliFailure::io(format!("socket read failed: {e}")))?;
    if line.trim().is_empty() {
        return Err(CliFailure::io(
            "daemon closed the connection without replying",
        ));
    }
    let response = sjson::parse(line.trim())
        .map_err(|e| CliFailure::io(format!("unparseable daemon response: {e}")))?;
    if response.get("ok").and_then(Json::as_bool) == Some(true) {
        return Ok(response);
    }
    Err(daemon_failure(&response))
}

/// Map a non-`ok` daemon response onto a classified CLI failure. Typed
/// backpressure rejections keep their reason slug as the message.
fn daemon_failure(response: &Json) -> CliFailure {
    let error = response.str_field("error").unwrap_or("unknown");
    if error == "rejected" {
        let reason = response.str_field("reason").unwrap_or("unspecified");
        return CliFailure::new(
            EXIT_IO,
            "rejected",
            format!("daemon rejected request: {reason}"),
        );
    }
    let detail = response.str_field("detail").unwrap_or("");
    CliFailure::new(EXIT_IO, "daemon", format!("daemon error {error}: {detail}"))
}

fn cmd_register(args: &[String]) -> Result<(), CliFailure> {
    let (file, rest) = args
        .split_first()
        .ok_or_else(|| CliFailure::usage("register: missing trace file"))?;
    let flags = parse_flags(rest)?;
    let socket = daemon_socket(&flags)?;
    let name = flags
        .get("name")
        .cloned()
        .ok_or_else(|| CliFailure::usage("register: missing required --name"))?;
    // The daemon opens the file itself, and its working directory may
    // differ from ours — always send an absolute path.
    let path = std::fs::canonicalize(file)
        .map_err(|e| CliFailure::io(format!("cannot resolve {file}: {e}")))?;
    let request = sjson::obj(vec![
        ("op", Json::Str("register".into())),
        ("name", Json::Str(name)),
        ("path", Json::Str(path.display().to_string())),
    ]);
    println!("{}", daemon_request(&socket, &request)?);
    Ok(())
}

fn cmd_submit(args: &[String]) -> Result<(), CliFailure> {
    let flags = parse_flags(args)?;
    let socket = daemon_socket(&flags)?;
    let trace = flags
        .get("trace")
        .cloned()
        .ok_or_else(|| CliFailure::usage("submit: missing required --trace"))?;
    let kind = match flags.get("kind").map(String::as_str).unwrap_or("triangles") {
        "c4" => "four-cycles", // local `estimate` spells it c4; the daemon says four-cycles
        other => other,        // the daemon rejects unknown kinds
    };
    let mut fields = vec![
        ("op", Json::Str("submit".into())),
        ("trace", Json::Str(trace)),
        ("kind", Json::Str(kind.into())),
    ];
    if let Some(guard) = flags.get("guard") {
        if !matches!(guard.as_str(), "strict" | "repair" | "observe") {
            return Err(CliFailure::usage(format!(
                "--guard must be strict|repair|observe, got {guard:?}"
            )));
        }
        fields.push(("guard", Json::Str(guard.clone())));
    }
    for (flag, field) in [
        ("t-lower", "t_lower"),
        ("seed", "seed"),
        ("priority", "priority"),
        ("min-survivors", "min_survivors"),
        ("deadline-ms", "deadline_ms"),
        ("max-bytes", "max_instance_bytes"),
        ("max-total-bytes", "max_total_bytes"),
        ("batch-size", "batch_size"),
        ("capacity", "capacity"),
        ("shards", "shards"),
    ] {
        if let Some(v) = flags.get(flag) {
            let n: u64 = v
                .parse()
                .map_err(|_| CliFailure::usage(format!("invalid --{flag} {v:?}")))?;
            fields.push((field, Json::Num(n as f64)));
        }
    }
    for flag in ["epsilon", "delta"] {
        if let Some(v) = flags.get(flag) {
            let n: f64 = v
                .parse()
                .map_err(|_| CliFailure::usage(format!("invalid --{flag} {v:?}")))?;
            fields.push((flag, Json::Num(n)));
        }
    }
    let response = daemon_request(&socket, &sjson::obj(fields))?;
    if !flags.contains_key("wait") {
        println!("{response}");
        return Ok(());
    }
    let id = response
        .str_field("id")
        .map(str::to_string)
        .ok_or_else(|| CliFailure::io("daemon response missing job id"))?;
    let poll = std::time::Duration::from_millis(get(&flags, "poll-ms", 50u64)?);
    wait_for_terminal(&socket, &id, poll)
}

/// Poll `status` until the job reaches a terminal state; print the final
/// status line and map failure states onto the usual exit codes.
fn wait_for_terminal(socket: &str, id: &str, poll: std::time::Duration) -> Result<(), CliFailure> {
    let request = sjson::obj(vec![
        ("op", Json::Str("status".into())),
        ("id", Json::Str(id.to_string())),
    ]);
    loop {
        let response = daemon_request(socket, &request)?;
        match response.str_field("state").unwrap_or("unknown") {
            "done" => {
                println!("{response}");
                return Ok(());
            }
            "degraded" => {
                println!("{response}");
                return Err(CliFailure::new(
                    EXIT_DEGRADED,
                    "degraded",
                    format!("job {id} degraded: too few surviving repetitions"),
                ));
            }
            "failed" => {
                println!("{response}");
                let reason = response
                    .str_field("reason")
                    .unwrap_or("unknown")
                    .to_string();
                let (exit, kind) = match reason.as_str() {
                    "deadline" => (EXIT_DEADLINE, "deadline"),
                    "space_budget" => (EXIT_SPACE, "space-budget"),
                    "checkpoint" => (EXIT_CHECKPOINT, "checkpoint"),
                    "invalid_stream" => (EXIT_INVALID_STREAM, "invalid-stream"),
                    _ => (EXIT_IO, "failed"),
                };
                return Err(CliFailure::new(
                    exit,
                    kind,
                    format!("job {id} failed: {reason}"),
                ));
            }
            _ => std::thread::sleep(poll),
        }
    }
}

fn cmd_status(args: &[String]) -> Result<(), CliFailure> {
    let flags = parse_flags(args)?;
    let socket = daemon_socket(&flags)?;
    let mut fields = vec![("op", Json::Str("status".into()))];
    if let Some(id) = flags.get("id") {
        fields.push(("id", Json::Str(id.clone())));
    }
    println!("{}", daemon_request(&socket, &sjson::obj(fields))?);
    Ok(())
}

fn cmd_cancel(args: &[String]) -> Result<(), CliFailure> {
    let flags = parse_flags(args)?;
    let socket = daemon_socket(&flags)?;
    let id = flags
        .get("id")
        .cloned()
        .ok_or_else(|| CliFailure::usage("cancel: missing required --id"))?;
    let request = sjson::obj(vec![
        ("op", Json::Str("cancel".into())),
        ("id", Json::Str(id)),
    ]);
    println!("{}", daemon_request(&socket, &request)?);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_flags_handles_pairs_and_output() {
        let flags = parse_flags(&args(&["--n", "100", "-o", "file.txt", "--seed", "7"])).unwrap();
        assert_eq!(flags.get("n").unwrap(), "100");
        assert_eq!(flags.get("o").unwrap(), "file.txt");
        assert_eq!(flags.get("seed").unwrap(), "7");
    }

    #[test]
    fn parse_flags_rejects_bare_values_and_dangling_flags() {
        assert!(parse_flags(&args(&["100"])).is_err());
        assert!(parse_flags(&args(&["--n"])).is_err());
    }

    #[test]
    fn get_parses_with_defaults() {
        let flags = parse_flags(&args(&["--n", "42"])).unwrap();
        assert_eq!(get(&flags, "n", 0usize).unwrap(), 42);
        assert_eq!(get(&flags, "missing", 9usize).unwrap(), 9);
        assert!(get(&flags, "n", 0.5f64).is_ok());
        let bad = parse_flags(&args(&["--n", "xyz"])).unwrap();
        assert!(get(&bad, "n", 0usize).is_err());
    }

    #[test]
    fn unknown_command_is_an_error() {
        assert!(run(&args(&["frobnicate"])).is_err());
        assert!(run(&args(&[])).is_err());
    }

    #[test]
    fn gen_count_estimate_roundtrip_via_files() {
        let dir = std::env::temp_dir();
        let gpath = dir.join(format!("adjstream-cli-test-{}.txt", std::process::id()));
        let gs = gpath.to_string_lossy().to_string();
        run(&args(&[
            "gen", "cliques", "--s", "5", "--k", "4", "-o", &gs,
        ]))
        .unwrap();
        run(&args(&["count", &gs, "--kind", "triangles"])).unwrap();
        run(&args(&["info", &gs])).unwrap();
        let spath = dir.join(format!("adjstream-cli-stream-{}.txt", std::process::id()));
        let ss = spath.to_string_lossy().to_string();
        run(&args(&["stream", &gs, "--seed", "3", "-o", &ss])).unwrap();
        run(&args(&["validate-stream", &ss])).unwrap();
        run(&args(&["estimate-stream", &ss, "--budget", "40"])).unwrap();
        std::fs::remove_file(&gpath).ok();
        std::fs::remove_file(&spath).ok();
    }

    #[test]
    fn sharded_estimate_stream_runs_all_in_process_modes() {
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let gs = dir
            .join(format!("adjstream-cli-shard-g-{pid}.txt"))
            .to_string_lossy()
            .to_string();
        let ss = dir
            .join(format!("adjstream-cli-shard-s-{pid}.txt"))
            .to_string_lossy()
            .to_string();
        let bs = dir
            .join(format!("adjstream-cli-shard-{pid}.adjb"))
            .to_string_lossy()
            .to_string();
        let ms = dir
            .join(format!("adjstream-cli-shard-{pid}.metrics.json"))
            .to_string_lossy()
            .to_string();
        run(&args(&[
            "gen", "gnm", "--n", "60", "--m", "240", "--seed", "5", "-o", &gs,
        ]))
        .unwrap();
        run(&args(&["stream", &gs, "--seed", "3", "-o", &ss])).unwrap();
        run(&args(&[
            "convert-trace",
            &ss,
            "-o",
            &bs,
            "--format",
            "adjb",
        ]))
        .unwrap();
        // Thread mode over the owned text trace and the binary trace.
        run(&args(&[
            "estimate-stream",
            &ss,
            "--shards",
            "2",
            "--budget",
            "40",
        ]))
        .unwrap();
        run(&args(&[
            "estimate-stream",
            &bs,
            "--shards",
            "4",
            "--budget",
            "40",
        ]))
        .unwrap();
        // Zero-copy mmap replay with deferred verification, plus metrics.
        run(&args(&[
            "estimate-stream",
            &bs,
            "--shards",
            "4",
            "--mmap",
            "--budget",
            "40",
            "--metrics-out",
            &ms,
        ]))
        .unwrap();
        let metrics = std::fs::read_to_string(&ms).unwrap();
        assert!(metrics.contains("\"passes\""));
        // Guard policy repairs upstream of the shard split.
        run(&args(&[
            "estimate-stream",
            &bs,
            "--shards",
            "2",
            "--policy",
            "repair",
        ]))
        .unwrap();
        // --shards 0 is a usage error; mmap needs a binary trace.
        assert!(run(&args(&["estimate-stream", &bs, "--shards", "0"])).is_err());
        assert!(run(&args(&["estimate-stream", &ss, "--mmap"])).is_err());
        for p in [&gs, &ss, &bs, &ms] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn update_stream_accepts_a_zero_length_trace() {
        // Regression: a zero-length file is the empty update trace — a
        // successful run with 0 events, not exit 3.
        let path = std::env::temp_dir()
            .join(format!("adjstream-cli-empty-{}.txt", std::process::id()))
            .to_string_lossy()
            .to_string();
        std::fs::write(&path, b"").unwrap();
        run(&args(&["update-stream", &path])).unwrap();
        run(&args(&["update-stream", &path, "--verify"])).unwrap();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn import_edges_round_trips_and_is_deterministic() {
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let edges = dir.join(format!("adjstream-cli-imp-{pid}.txt"));
        // A triangle on raw SNAP-style ids plus a duplicate and a loop.
        std::fs::write(
            &edges,
            "# comment\n100 200\n200 300\n300 100\n100 200\n7 7\n",
        )
        .unwrap();
        let edges = edges.to_string_lossy().to_string();
        let out_a = dir
            .join(format!("adjstream-cli-imp-a-{pid}.adjb"))
            .to_string_lossy()
            .to_string();
        let out_b = dir
            .join(format!("adjstream-cli-imp-b-{pid}.adjb"))
            .to_string_lossy()
            .to_string();
        run(&args(&["import-edges", &edges, "-o", &out_a, "--json"])).unwrap();
        // Different bucket count, same seed: identical bytes.
        run(&args(&[
            "import-edges",
            &edges,
            "-o",
            &out_b,
            "--buckets",
            "3",
        ]))
        .unwrap();
        assert_eq!(
            std::fs::read(&out_a).unwrap(),
            std::fs::read(&out_b).unwrap()
        );
        // The import feeds straight into the estimation pipeline.
        run(&args(&["estimate-stream", &out_a, "--budget", "64"])).unwrap();
        // Policy errors surface as invalid-stream.
        assert!(run(&args(&[
            "import-edges",
            &edges,
            "-o",
            &out_b,
            "--dups",
            "error"
        ]))
        .is_err());
        for f in [&edges, &out_a, &out_b] {
            let _ = std::fs::remove_file(f);
        }
    }

    #[test]
    fn gen_updates_and_update_stream_pipeline() {
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let gs = dir
            .join(format!("adjstream-cli-upd-g-{pid}.txt"))
            .to_string_lossy()
            .to_string();
        let us = dir
            .join(format!("adjstream-cli-upd-u-{pid}.txt"))
            .to_string_lossy()
            .to_string();
        run(&args(&[
            "gen", "cliques", "--s", "5", "--k", "6", "-o", &gs,
        ]))
        .unwrap();
        run(&args(&[
            "gen-updates",
            &gs,
            "--churn",
            "100",
            "--delete-fraction",
            "0.4",
            "--seed",
            "3",
            "-o",
            &us,
        ]))
        .unwrap();
        // Batched mode, with and without the exact cross-check.
        run(&args(&["update-stream", &us, "--batch", "40"])).unwrap();
        run(&args(&[
            "update-stream",
            &us,
            "--batch",
            "40",
            "--capacity",
            "1000",
            "--verify",
        ]))
        .unwrap();
        // Sliding-window mode, exact and estimated.
        run(&args(&[
            "update-stream",
            &us,
            "--window",
            "60",
            "--exact-windows",
        ]))
        .unwrap();
        run(&args(&[
            "update-stream",
            &us,
            "--window",
            "120",
            "--stride",
            "60",
            "--epsilon",
            "0.3",
        ]))
        .unwrap();
        // Bad flags and malformed traces are typed failures.
        let err = run(&args(&["update-stream", &us, "--capacity", "2"])).unwrap_err();
        assert_eq!(err.exit, EXIT_USAGE);
        let err = run(&args(&["update-stream", &us, "--window", "0"])).unwrap_err();
        assert_eq!(err.exit, EXIT_USAGE);
        let bad = dir
            .join(format!("adjstream-cli-upd-bad-{pid}.txt"))
            .to_string_lossy()
            .to_string();
        std::fs::write(&bad, "+ 1 1 0\n").unwrap();
        let err = run(&args(&["update-stream", &bad])).unwrap_err();
        assert_eq!(err.exit, EXIT_INVALID_STREAM);
        assert_eq!(err.kind, "invalid-stream");
        std::fs::remove_file(&gs).ok();
        std::fs::remove_file(&us).ok();
        std::fs::remove_file(&bad).ok();
    }

    #[test]
    fn corrupt_validate_and_guarded_estimate_pipeline() {
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let gs = dir
            .join(format!("adjstream-cli-rob-g-{pid}.txt"))
            .to_string_lossy()
            .to_string();
        let ss = dir
            .join(format!("adjstream-cli-rob-s-{pid}.txt"))
            .to_string_lossy()
            .to_string();
        let bad = dir
            .join(format!("adjstream-cli-rob-bad-{pid}.txt"))
            .to_string_lossy()
            .to_string();
        run(&args(&[
            "gen", "cliques", "--s", "5", "--k", "6", "-o", &gs,
        ]))
        .unwrap();
        run(&args(&["stream", &gs, "--seed", "3", "-o", &ss])).unwrap();
        // Clean stream validates in every mode.
        for mode in ["offline", "online", "bounded"] {
            run(&args(&["validate-stream", &ss, "--mode", mode])).unwrap();
        }
        run(&args(&[
            "corrupt",
            &ss,
            "--seed",
            "7",
            "--faults",
            "drop-direction:2,self-loop",
            "-o",
            &bad,
        ]))
        .unwrap();
        // The corrupted stream fails validation — non-zero exit via Err —
        // with the fault position in the message when one exists.
        for mode in ["offline", "online"] {
            let err = run(&args(&["validate-stream", &bad, "--mode", mode])).unwrap_err();
            assert!(err.message.contains("invalid stream"), "{}", err.message);
            assert_eq!(err.exit, EXIT_INVALID_STREAM);
            assert_eq!(err.kind, "invalid-stream");
        }
        // Unguarded estimation refuses the corrupted stream...
        assert!(run(&args(&["estimate-stream", &bad, "--budget", "40"])).is_err());
        // ...strict guarding reports the violation as a typed failure...
        let err = run(&args(&[
            "estimate-stream",
            &bad,
            "--budget",
            "40",
            "--policy",
            "strict",
        ]))
        .unwrap_err();
        assert!(
            err.message.contains("invalid stream in pass"),
            "{}",
            err.message
        );
        assert_eq!(err.exit, EXIT_INVALID_STREAM);
        // ...and repair/observe degrade gracefully.
        for policy in ["repair", "observe"] {
            run(&args(&[
                "estimate-stream",
                &bad,
                "--budget",
                "40",
                "--policy",
                policy,
            ]))
            .unwrap();
        }
        // Bad flag values are rejected.
        assert!(run(&args(&["validate-stream", &ss, "--mode", "bogus"])).is_err());
        assert!(run(&args(&["corrupt", &ss, "--faults", "nonsense"])).is_err());
        assert!(run(&args(&["corrupt", &ss, "--faults", "reorder-pass"])).is_err());
        for f in [&gs, &ss, &bad] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn self_loop_position_is_reported() {
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let p = dir
            .join(format!("adjstream-cli-rob-pos-{pid}.txt"))
            .to_string_lossy()
            .to_string();
        std::fs::write(&p, "0 1\n0 0\n1 0\n").unwrap();
        let err = run(&args(&["validate-stream", &p, "--mode", "online"])).unwrap_err();
        assert!(err.message.contains("at item 1"), "{}", err.message);
        std::fs::remove_file(&p).ok();
    }

    fn temp_graph(tag: &str) -> String {
        let p =
            std::env::temp_dir().join(format!("adjstream-cli-{tag}-{}.txt", std::process::id()));
        let s = p.to_string_lossy().to_string();
        run(&args(&["gen", "cliques", "--s", "5", "--k", "5", "-o", &s])).unwrap();
        s
    }

    #[test]
    fn failure_classes_map_to_stable_exit_codes() {
        // Usage failures.
        let err = run(&args(&["frobnicate"])).unwrap_err();
        assert_eq!((err.exit, err.kind), (EXIT_USAGE, "usage"));
        // I/O failures.
        let err = run(&args(&["info", "/no/such/file.txt"])).unwrap_err();
        assert_eq!((err.exit, err.kind), (EXIT_IO, "io"));
        let gs = temp_graph("exit");
        // Deadline failures.
        let err = run(&args(&[
            "estimate",
            &gs,
            "--t-lower",
            "50",
            "--deadline-secs",
            "0",
        ]))
        .unwrap_err();
        assert_eq!((err.exit, err.kind), (EXIT_DEADLINE, "deadline"));
        // Degraded runs: a 1-byte instance budget kills every repetition.
        let err = run(&args(&[
            "estimate",
            &gs,
            "--t-lower",
            "50",
            "--max-bytes",
            "1",
        ]))
        .unwrap_err();
        assert_eq!((err.exit, err.kind), (EXIT_DEGRADED, "degraded"));
        assert!(err.message.contains("degraded run"), "{}", err.message);
        // Aggregate space budget failures.
        let err = run(&args(&[
            "estimate",
            &gs,
            "--t-lower",
            "50",
            "--max-total-bytes",
            "1",
        ]))
        .unwrap_err();
        assert_eq!((err.exit, err.kind), (EXIT_SPACE, "space-budget"));
        // Checkpoint failures (sequential engine cannot checkpoint).
        let dir = std::env::temp_dir().to_string_lossy().to_string();
        let err = run(&args(&[
            "estimate",
            &gs,
            "--t-lower",
            "50",
            "--engine",
            "sequential",
            "--checkpoint-dir",
            &dir,
        ]))
        .unwrap_err();
        assert_eq!((err.exit, err.kind), (EXIT_CHECKPOINT, "checkpoint"));
        std::fs::remove_file(&gs).ok();
    }

    #[test]
    fn failure_json_is_machine_readable() {
        let f = CliFailure::new(EXIT_DEADLINE, "deadline", "ran \"out\"\nof time");
        assert_eq!(
            f.json(),
            "{\"error\":{\"kind\":\"deadline\",\"exit\":6,\"message\":\"ran \\\"out\\\"\\nof time\"}}"
        );
    }

    #[test]
    fn generous_budget_flags_succeed_including_auto() {
        let gs = temp_graph("budget");
        run(&args(&[
            "estimate",
            &gs,
            "--t-lower",
            "50",
            "--max-bytes",
            "auto",
            "--deadline-secs",
            "60",
            "--min-survivors",
            "1",
        ]))
        .unwrap();
        assert!(run(&args(&["estimate", &gs, "--max-bytes", "junk"])).is_err());
        assert!(run(&args(&["estimate", &gs, "--deadline-secs", "nan"])).is_err());
        std::fs::remove_file(&gs).ok();
    }

    #[test]
    fn checkpoint_flags_are_validated_and_run() {
        let gs = temp_graph("ckpt");
        let dir =
            std::env::temp_dir().join(format!("adjstream-cli-ckpt-dir-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let ds = dir.to_string_lossy().to_string();
        // --resume without --checkpoint-dir is a usage error.
        let err = run(&args(&["estimate", &gs, "--resume"])).unwrap_err();
        assert_eq!(err.exit, EXIT_USAGE);
        // --checkpoint-dir without --t-lower is a usage error.
        let err = run(&args(&["estimate", &gs, "--checkpoint-dir", &ds])).unwrap_err();
        assert!(err.message.contains("--t-lower"), "{}", err.message);
        // A full checkpointed run succeeds and cleans up its file — the
        // checkpoint name is namespaced by the (pinned) job id.
        run(&args(&[
            "estimate",
            &gs,
            "--t-lower",
            "50",
            "--checkpoint-dir",
            &ds,
            "--job-id",
            "7",
        ]))
        .unwrap();
        assert!(!dir.join(format!("triangles-{:016x}.ckpt", 7)).exists());
        let leftover: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "ckpt"))
            .collect();
        assert!(leftover.is_empty(), "stray checkpoints: {leftover:?}");
        // Resuming with no checkpoint on disk is a checkpoint failure.
        let err = run(&args(&[
            "estimate",
            &gs,
            "--t-lower",
            "50",
            "--checkpoint-dir",
            &ds,
            "--resume",
        ]))
        .unwrap_err();
        assert_eq!((err.exit, err.kind), (EXIT_CHECKPOINT, "checkpoint"));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_file(&gs).ok();
    }

    #[test]
    fn retries_flag_is_accepted_and_missing_files_exhaust_it() {
        let err = run(&args(&[
            "validate-stream",
            "/no/such/stream.txt",
            "--retries",
            "1",
        ]))
        .unwrap_err();
        assert_eq!((err.exit, err.kind), (EXIT_IO, "io"));
        assert!(err.message.contains("gave up after 2"), "{}", err.message);
    }

    #[test]
    fn metrics_out_writes_schema_versioned_json() {
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let gs = temp_graph("metrics");
        let ss = dir
            .join(format!("adjstream-cli-metrics-s-{pid}.txt"))
            .to_string_lossy()
            .to_string();
        let m1 = dir
            .join(format!("adjstream-cli-metrics-1-{pid}.json"))
            .to_string_lossy()
            .to_string();
        let m2 = dir
            .join(format!("adjstream-cli-metrics-2-{pid}.json"))
            .to_string_lossy()
            .to_string();
        run(&args(&[
            "estimate",
            &gs,
            "--t-lower",
            "50",
            "--metrics-out",
            &m1,
        ]))
        .unwrap();
        let body = std::fs::read_to_string(&m1).unwrap();
        assert!(body.starts_with("{\"schema\": 1,"), "{body}");
        assert!(body.contains("\"peak_state_bytes\":"), "{body}");
        assert!(body.contains("\"sampler\":"), "{body}");
        // Sequential engine reports through the same sink.
        run(&args(&[
            "estimate",
            &gs,
            "--t-lower",
            "50",
            "--engine",
            "sequential",
            "--metrics-out",
            &m1,
        ]))
        .unwrap();
        assert!(std::fs::read_to_string(&m1)
            .unwrap()
            .starts_with("{\"schema\": 1,"));
        run(&args(&["stream", &gs, "--seed", "3", "-o", &ss])).unwrap();
        run(&args(&[
            "estimate-stream",
            &ss,
            "--budget",
            "40",
            "--metrics-out",
            &m2,
        ]))
        .unwrap();
        let body = std::fs::read_to_string(&m2).unwrap();
        assert!(body.starts_with("{\"schema\": 1,"), "{body}");
        assert!(body.contains("\"retry\":"), "{body}");
        for f in [&gs, &ss, &m1, &m2] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn gadget_command_builds_each_figure() {
        for fig in ["fig-a", "fig-b", "fig-c", "fig-d", "fig-e"] {
            let out = std::env::temp_dir().join(format!(
                "adjstream-cli-gadget-{fig}-{}.txt",
                std::process::id()
            ));
            let os = out.to_string_lossy().to_string();
            run(&args(&["gadget", fig, "-o", &os])).unwrap();
            std::fs::remove_file(&out).ok();
        }
    }
}

//! # adjstream
//!
//! A production-quality reproduction of *The Complexity of Counting Cycles
//! in the Adjacency List Streaming Model* (Kallaugher, McGregor, Price,
//! Vorotnikova; PODS 2019).
//!
//! This facade re-exports the workspace's public API:
//!
//! * [`graph`] — CSR graphs, generators, exact counters
//!   ([`adjstream_graph`]),
//! * [`stream`] — the adjacency-list streaming model: orders, validation,
//!   samplers, space metering, the multi-pass runner
//!   ([`adjstream_stream`]),
//! * [`algo`] — the paper's algorithms and the baselines
//!   ([`adjstream_core`]),
//! * [`lowerbound`] — Section 5 gadgets and protocol simulation
//!   ([`adjstream_lowerbound`]),
//! * [`service`] — the `adjstreamd` resident estimation service: trace
//!   catalog, job scheduler, crash recovery ([`adjstream_service`]).
//!
//! ## Quickstart
//!
//! ```
//! use adjstream::algo::common::EdgeSampling;
//! use adjstream::algo::triangle::{TwoPassTriangle, TwoPassTriangleConfig};
//! use adjstream::graph::gen;
//! use adjstream::stream::{PassOrders, Runner, StreamOrder};
//!
//! // A graph with exactly 50 triangles, streamed in random list order.
//! let g = gen::disjoint_cliques(5, 5); // 5 disjoint K5s: 5 * 10 = 50
//! let cfg = TwoPassTriangleConfig {
//!     seed: 7,
//!     edge_sampling: EdgeSampling::Threshold { p: 1.0 },
//!     pair_capacity: usize::MAX,
//! };
//! let order = PassOrders::Same(StreamOrder::shuffled(g.vertex_count(), 1));
//! let (estimate, report) = Runner::run(&g, TwoPassTriangle::new(cfg), &order);
//! assert_eq!(estimate.estimate, 50.0); // exhaustive sampling is exact
//! assert_eq!(report.passes, 2);
//! ```

#![warn(missing_docs)]

pub mod paper;

pub use adjstream_core as algo;
pub use adjstream_graph as graph;
pub use adjstream_lowerbound as lowerbound;
pub use adjstream_service as service;
pub use adjstream_stream as stream;

/// Crate version, for examples that print provenance.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
